"""Per-query trace spans: where one statement's wall time actually went.

A :class:`QueryTrace` is created when a statement enters the stack (the
server's request handler, ``service query --trace``, or internally by
:class:`~repro.service.executor.CatalogQueryService` for its always-on
latency accounting) and carried through parse → plan → prune → fan-out →
per-series load/compute → serialize.  Stage timings are recorded as
*contiguous, non-overlapping* top-level spans, so their sum approximates
the query's wall time (the acceptance tests pin the gap under 10%);
per-series load/compute spans are children of the fan-out stage and are
reported separately — they overlap each other under parallel backends and
must not be summed with the stages.

Worker-side spans cross backend boundaries as three plain numbers on each
:class:`~repro.service.backends.ResultEnvelope` (``load_s``,
``compute_s``, ``cache_hit``) — picklable under any multiprocessing start
method — and are merged into the parent trace by the executor, so a trace
looks the same whether the work ran inline, on pool threads, or in
spawn-started worker processes.

The rendered block (``trace.as_dict()``, attached to wire results when
the request asked for it)::

    {
      "backend": "thread",
      "transport": "inline",
      "wall_ms": 12.41,
      "stages": [{"name": "parse", "ms": 0.05}, ...],
      "series": [{"series": "room-1", "load_ms": 3.1,
                  "compute_ms": 0.6, "cache_hit": false}, ...],
      "series_truncated": 0,
      "cache": {"hits": 5, "misses": 1}
    }

``series`` is capped at the :data:`MAX_SERIES_SPANS` slowest entries —
a 10k-series fan-out must not ship a 10k-row trace — with the number
dropped recorded in ``series_truncated``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any

__all__ = ["MAX_SERIES_SPANS", "NULL_TRACE", "QueryTrace", "Span"]

#: Per-series spans kept in a rendered trace (the slowest ones win).
MAX_SERIES_SPANS = 32


class Span:
    """One named, timed region: offset and duration in seconds."""

    __slots__ = ("name", "start_s", "duration_s")

    def __init__(self, name: str, start_s: float, duration_s: float) -> None:
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, +{self.start_s * 1e3:.2f}ms, "
            f"{self.duration_s * 1e3:.2f}ms)"
        )


class QueryTrace:
    """Mutable trace context for one statement's execution.

    Stages are recorded by the single thread driving the statement, so no
    lock is needed; per-series entries are merged in by that same thread
    after the backend gather returns.  ``enabled`` distinguishes a real
    trace from :data:`NULL_TRACE` without isinstance checks on hot paths.
    """

    enabled = True

    __slots__ = (
        "statement",
        "backend",
        "transport",
        "stages",
        "series",
        "cache_hits",
        "cache_misses",
        "_t0",
        "_wall_s",
    )

    def __init__(self, statement: str | None = None) -> None:
        self.statement = statement
        self.backend: str | None = None
        self.transport: str | None = None
        self.stages: list[Span] = []
        self.series: list[tuple[str, float, float, bool]] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self._t0 = time.perf_counter()
        self._wall_s: float | None = None

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str):
        """Time one top-level stage; appends its span on exit."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            end = time.perf_counter()
            self.stages.append(Span(name, start - self._t0, end - start))

    def add_stage(self, name: str, start_s: float, duration_s: float) -> None:
        """Append an externally timed stage (offsets relative to t0)."""
        self.stages.append(Span(name, start_s, duration_s))

    def offset(self) -> float:
        """Seconds since the trace started (for add_stage bookkeeping)."""
        return time.perf_counter() - self._t0

    def add_series(
        self,
        series_id: str,
        load_s: float,
        compute_s: float,
        cache_hit: bool,
    ) -> None:
        """Merge one worker-side per-series span into this trace."""
        self.series.append((series_id, load_s, compute_s, cache_hit))
        if cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def finish(self) -> float:
        """Freeze the wall clock (idempotent); returns wall seconds."""
        if self._wall_s is None:
            self._wall_s = time.perf_counter() - self._t0
        return self._wall_s

    def elapsed(self) -> float:
        """Seconds since the trace started (wall once finished)."""
        if self._wall_s is not None:
            return self._wall_s
        return time.perf_counter() - self._t0

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def stage_ms(self) -> dict[str, float]:
        """Stage name -> milliseconds (stages with the same name sum)."""
        out: dict[str, float] = {}
        for span in self.stages:
            out[span.name] = out.get(span.name, 0.0) + span.duration_s * 1e3
        return out

    def as_dict(self) -> dict[str, Any]:
        """The JSON-ready trace block (see module docs for the schema)."""
        ranked = sorted(
            self.series, key=lambda entry: (-(entry[1] + entry[2]), entry[0])
        )
        kept = ranked[:MAX_SERIES_SPANS]
        payload: dict[str, Any] = {
            "wall_ms": round(self.elapsed() * 1e3, 4),
            "stages": [
                {
                    "name": span.name,
                    "start_ms": round(span.start_s * 1e3, 4),
                    "ms": round(span.duration_s * 1e3, 4),
                }
                for span in self.stages
            ],
            "series": [
                {
                    "series": series_id,
                    "load_ms": round(load_s * 1e3, 4),
                    "compute_ms": round(compute_s * 1e3, 4),
                    "cache_hit": bool(cache_hit),
                }
                for series_id, load_s, compute_s, cache_hit in kept
            ],
            "series_truncated": max(0, len(ranked) - MAX_SERIES_SPANS),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }
        if self.backend is not None:
            payload["backend"] = self.backend
        if self.transport is not None:
            payload["transport"] = self.transport
        if self.statement is not None:
            payload["statement"] = self.statement
        return payload

    def __repr__(self) -> str:
        return (
            f"QueryTrace(stages={[span.name for span in self.stages]}, "
            f"series={len(self.series)}, wall={self.elapsed() * 1e3:.2f}ms)"
        )


class _NullTrace:
    """The no-op trace: every hook exists, nothing is recorded.

    Hot paths call ``trace.stage(...)`` unconditionally; when tracing is
    off they get this singleton and pay one attribute lookup plus an
    empty context manager.
    """

    enabled = False
    statement = None
    backend = None
    transport = None
    stages: list = []
    series: list = []
    cache_hits = 0
    cache_misses = 0

    @contextmanager
    def stage(self, name: str):
        yield self

    def add_stage(self, name: str, start_s: float, duration_s: float) -> None:
        pass

    def offset(self) -> float:
        return 0.0

    def add_series(
        self,
        series_id: str,
        load_s: float,
        compute_s: float,
        cache_hit: bool,
    ) -> None:
        pass

    def finish(self) -> float:
        return 0.0

    def elapsed(self) -> float:
        return 0.0

    def stage_ms(self) -> dict[str, float]:
        return {}

    def as_dict(self) -> dict[str, Any]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid.
        return "NULL_TRACE"


#: Shared no-op instance (stateless, safe to reuse everywhere).
NULL_TRACE = _NullTrace()
