"""Ring-buffer slow-query log: the last N statements over the threshold.

Lifetime histograms answer "what is p99 right now?"; the slow-query log
answers the next question — "*which* statements are the p99, and where
did their time go?".  Every executed statement is offered to the log with
its finished :class:`~repro.obs.trace.QueryTrace`; those at or over the
threshold are kept in a bounded ring (oldest evicted first), each entry
carrying the statement text, total duration, per-stage breakdown, cache
hit/miss counts, and the pruning counters of that query — enough to
re-run and attack the slow statement without enabling anything first.

The log is always on (an under-threshold query costs one float compare);
the threshold is just a knob: ``CatalogQueryService(slow_query_ms=...)``,
``server serve --slow-query-ms``, or ``log.threshold_ms = ...`` at
runtime.  Entries come back newest-first over the wire via
``{"op": "slowlog"}``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from repro.obs.trace import QueryTrace

__all__ = ["DEFAULT_SLOW_QUERY_MS", "SlowQueryLog"]

#: Default threshold: sub-half-second statements are routine for a warm
#: catalog; anything slower deserves a record.
DEFAULT_SLOW_QUERY_MS = 500.0

#: Default ring capacity — bounded memory no matter how bad the day is.
DEFAULT_CAPACITY = 128


class SlowQueryLog:
    """Bounded, thread-safe ring of slow-statement records.

    Parameters
    ----------
    threshold_ms:
        Statements with wall time >= this are recorded.  ``0`` records
        everything (useful in tests and short diagnostics sessions);
        ``float("inf")`` disables recording without removing the log.
    capacity:
        Ring size; the oldest record is evicted when full.
    """

    def __init__(
        self,
        threshold_ms: float = DEFAULT_SLOW_QUERY_MS,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(
                f"slow-query threshold must be >= 0 ms, got {threshold_ms}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_ms = float(threshold_ms)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._observed = 0
        self._recorded = 0

    def observe(
        self,
        trace: QueryTrace,
        *,
        statement: str | None = None,
        extra: dict[str, Any] | None = None,
    ) -> bool:
        """Offer one finished trace; True when it was slow enough to keep.

        ``extra`` lands verbatim in the record (the executor passes the
        pruning counters and cache totals of the query).
        """
        wall_ms = trace.elapsed() * 1e3
        with self._lock:
            self._observed += 1
            if wall_ms < self.threshold_ms:
                return False
            entry: dict[str, Any] = {
                "statement": statement or trace.statement or "<unknown>",
                "wall_ms": round(wall_ms, 4),
                "stages": {
                    name: round(ms, 4)
                    for name, ms in trace.stage_ms().items()
                },
                "cache_hits": trace.cache_hits,
                "cache_misses": trace.cache_misses,
                "recorded_at": time.time(),
            }
            if trace.backend is not None:
                entry["backend"] = trace.backend
            if extra:
                entry.update(extra)
            self._entries.append(entry)
            self._recorded += 1
            return True

    def entries(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Records newest-first (copies: safe to mutate / serialize)."""
        with self._lock:
            records = [dict(entry) for entry in reversed(self._entries)]
        return records[:limit] if limit is not None else records

    def counts(self) -> tuple[int, int]:
        """``(observed, recorded)`` lifetime totals."""
        with self._lock:
            return self._observed, self._recorded

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        observed, recorded = self.counts()
        return (
            f"SlowQueryLog(threshold_ms={self.threshold_ms:g}, "
            f"{len(self)}/{self.capacity} held, "
            f"{recorded}/{observed} recorded)"
        )
