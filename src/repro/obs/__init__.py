"""repro.obs — observability for the whole store/service/server stack.

Three small, dependency-free pieces every other layer threads through:

* :mod:`repro.obs.metrics` — a process-wide metrics registry (counters,
  gauges, histograms with streaming p50/p95/p99) with JSON snapshots and
  Prometheus text exposition.  The store counts segment reads into it,
  the cache exports its occupancy, the executor records per-aggregate
  latency histograms and pruning counters, the server its request
  counters — one scrape sees the stack.
* :mod:`repro.obs.trace` — per-query trace spans (parse → plan → prune →
  fan-out → per-series load/compute → serialize) carried on a
  :class:`~repro.obs.trace.QueryTrace` context object, with worker-side
  spans from thread/process backends merged into the parent trace.
* :mod:`repro.obs.slowlog` — a ring-buffer slow-query log keyed off the
  trace wall time, with a configurable threshold.

Instrumentation is always on and cheap: ``benchmarks/bench_obs.py``
proves the warm-cache query path pays <= 2% versus
:class:`~repro.obs.metrics.NullRegistry` (instrumentation ripped out),
and CI gates that bound.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
)
from repro.obs.slowlog import DEFAULT_SLOW_QUERY_MS, SlowQueryLog
from repro.obs.trace import MAX_SERIES_SPANS, NULL_TRACE, QueryTrace, Span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOW_QUERY_MS",
    "Gauge",
    "Histogram",
    "MAX_SERIES_SPANS",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullRegistry",
    "QueryTrace",
    "SlowQueryLog",
    "Span",
    "default_registry",
]
