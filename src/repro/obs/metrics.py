"""Zero-dependency metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` is the process-wide ledger every layer of the
stack writes into — the store counts segment reads, the cache exports its
hit/miss/byte gauges, the planner and executor record pruning counters and
per-aggregate latency histograms, the backends count fanned-out tasks, and
the server layers its request counters on top.  Reads come out two ways:

* :meth:`MetricsRegistry.snapshot` — a plain nested dict (JSON-ready),
  with streaming p50/p95/p99 estimates per histogram;
* :meth:`MetricsRegistry.exposition` — the Prometheus text exposition
  format (``# TYPE``/``# HELP`` headers, cumulative ``_bucket{le=...}``
  lines), what ``{"op": "metrics"}`` serves so any Prometheus-compatible
  scraper can consume a running server without an adapter.

Design constraints, in order:

1. **Cheap.**  Instrumentation is always on; a counter increment is one
   lock acquisition and one float add, a histogram observation adds one
   bisect over ~16 bucket edges.  The ≤2% warm-path overhead bound is
   benchmarked (``benchmarks/bench_obs.py``) and gated in CI.
2. **Exact under concurrency.**  Every metric family carries its own
   lock; N threads hammering one counter lose no increments (pinned by
   ``tests/test_obs.py``).
3. **Zero dependencies.**  Stdlib only — the registry must be importable
   from the store layer and inside spawn-started worker processes.

Quantiles are estimated from the histogram buckets Prometheus-style
(linear interpolation inside the bucket containing the target rank), so
they are streaming, mergeable, and O(buckets) to read — never a stored
sample list.

:class:`NullRegistry` is the "instrumentation ripped out" variant every
factory returns no-op metrics from; the overhead benchmark measures the
default registry against it.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "default_registry",
]

#: Histogram bucket upper bounds (seconds) used when none are given:
#: log-spaced from 100µs to 60s, the range catalog queries actually span.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Canonical, hashable form of a label set: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey, extra: str = "") -> str:
    """Render one label set as Prometheus ``{k="v",...}`` (or ``""``)."""
    parts = [
        f'{name}="{_escape_label(value)}"' for name, value in key
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """A float as Prometheus text: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    integral = int(value)
    return str(integral) if value == integral else repr(value)


class _Metric:
    """Shared plumbing: name/help validation, per-family lock, children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    @staticmethod
    def _check_labels(labels: dict[str, str]) -> dict[str, str]:
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        return labels


class Counter(_Metric):
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """The sum across every label combination."""
        with self._lock:
            return sum(self._values.values())

    def _snapshot(self) -> dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "type": self.kind,
            "help": self.help,
            "total": sum(values.values()),
            "values": {
                _format_labels(key) or "": value
                for key, value in sorted(values.items())
            },
        }

    def _exposition(self) -> list[str]:
        with self._lock:
            values = dict(self._values)
        lines = _headers(self)
        if not values:
            values = {(): 0.0}
        for key, value in sorted(values.items()):
            lines.append(
                f"{self.name}{_format_labels(key)} {_format_value(value)}"
            )
        return lines


class Gauge(_Metric):
    """A point-in-time value that can move both ways (bytes, entries...)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _snapshot(self) -> dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "type": self.kind,
            "help": self.help,
            "values": {
                _format_labels(key) or "": value
                for key, value in sorted(values.items())
            },
        }

    def _exposition(self) -> list[str]:
        with self._lock:
            values = dict(self._values)
        lines = _headers(self)
        if not values:
            values = {(): 0.0}
        for key, value in sorted(values.items()):
            lines.append(
                f"{self.name}{_format_labels(key)} {_format_value(value)}"
            )
        return lines


class _HistogramChild:
    """Bucket counts + sum for one label combination (lock held by parent)."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # Last slot is +Inf.
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket streaming histogram with quantile estimates.

    Buckets are cumulative in the exposition (Prometheus semantics) but
    stored per-bucket internally.  ``quantile(q)`` interpolates linearly
    inside the bucket containing the target rank — the standard
    ``histogram_quantile`` estimate, computed server-side so the CLI can
    print p50/p95/p99 without a PromQL engine.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing buckets"
            )
        self.buckets = edges
        self._children: dict[LabelKey, _HistogramChild] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self._check_labels(labels))
        index = bisect_left(self.buckets, value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(
                    len(self.buckets)
                )
            child.counts[index] += 1
            child.total += value
            child.count += 1

    def count(self, **labels: str) -> int:
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child else 0

    def total_count(self) -> int:
        with self._lock:
            return sum(child.count for child in self._children.values())

    def quantile(self, q: float, **labels: str) -> float:
        """Estimated q-quantile (0 <= q <= 1) for one label combination.

        NaN when nothing was observed.  Values in the overflow (+Inf)
        bucket clamp to the largest finite edge — the estimate never
        invents a number beyond what the buckets can resolve.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None or child.count == 0:
                return math.nan
            counts = list(child.counts)
            count = child.count
        return _estimate_quantile(self.buckets, counts, count, q)

    def _merged(self) -> tuple[list[int], int, float]:
        """Bucket counts summed across every label combination."""
        counts = [0] * (len(self.buckets) + 1)
        count = 0
        total = 0.0
        for child in self._children.values():
            for index, value in enumerate(child.counts):
                counts[index] += value
            count += child.count
            total += child.total
        return counts, count, total

    def _snapshot(self) -> dict[str, Any]:
        with self._lock:
            children = {
                key: (list(child.counts), child.count, child.total)
                for key, child in self._children.items()
            }
        values: dict[str, Any] = {}
        for key, (counts, count, total) in sorted(children.items()):
            quantiles = {
                label: _estimate_quantile(self.buckets, counts, count, q)
                for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
            }
            values[_format_labels(key) or ""] = {
                "count": count,
                "sum": total,
                # NaN (nothing observed) becomes None: snapshots feed the
                # wire protocol, whose canonical JSON forbids non-finite
                # numbers.
                **{
                    label: (None if math.isnan(value) else value)
                    for label, value in quantiles.items()
                },
            }
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": values,
        }

    def _exposition(self) -> list[str]:
        with self._lock:
            children = {
                key: (list(child.counts), child.count, child.total)
                for key, child in self._children.items()
            }
        lines = _headers(self)
        if not children:
            children = {(): ([0] * (len(self.buckets) + 1), 0, 0.0)}
        for key, (counts, count, total) in sorted(children.items()):
            cumulative = 0
            for edge, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = _format_labels(
                    key, f'le="{_format_value(edge)}"'
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {count}")
            lines.append(
                f"{self.name}_sum{_format_labels(key)} "
                f"{_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_format_labels(key)} {count}")
        return lines


def _estimate_quantile(
    edges: tuple[float, ...], counts: list[int], count: int, q: float
) -> float:
    if count == 0:
        return math.nan
    rank = q * count
    cumulative = 0
    for index, bucket_count in enumerate(counts[:-1]):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank and bucket_count:
            upper = edges[index]
            lower = edges[index - 1] if index else 0.0
            fraction = (rank - previous) / bucket_count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return edges[-1]  # Overflow bucket: clamp to the largest edge.


def _headers(metric: _Metric) -> list[str]:
    lines = []
    if metric.help:
        lines.append(f"# HELP {metric.name} {metric.help}")
    lines.append(f"# TYPE {metric.name} {metric.kind}")
    return lines


class MetricsRegistry:
    """Named metric families plus scrape-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family (so modules can register
    independently), asking for the same name with a different *type*
    raises — a silent type morph would corrupt the exposition.

    ``register_collector(fn)`` adds a callback invoked at the top of every
    :meth:`snapshot`/:meth:`exposition`, for values that are snapshots of
    external state rather than event streams (cache bytes, pool sizes).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Any] = []

    # ------------------------------------------------------------------
    # Factories.
    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not histogram"
                    )
                return existing
            metric = Histogram(name, help_text, buckets)
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, cls: type, name: str, help_text: str) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help_text)
            self._metrics[name] = metric
            return metric

    def register_collector(self, collector: Any) -> None:
        """Add a zero-argument callable run before every scrape."""
        with self._lock:
            self._collectors.append(collector)

    def unregister_collector(self, collector: Any) -> None:
        """Remove a collector (no-op when absent) — call on shutdown so a
        closed server's cache does not keep being scraped via the shared
        default registry."""
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    def _collect(self) -> list[_Metric]:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict[str, Any]:
        """Every metric as a JSON-ready dict (collectors run first)."""
        return {
            metric.name: metric._snapshot() for metric in self._collect()
        }

    def exposition(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric in self._collect():
            lines.extend(metric._exposition())
        return "\n".join(lines) + "\n" if lines else ""

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry({len(self._metrics)} metrics, "
                f"{len(self._collectors)} collectors)"
            )


class _NullMetric:
    """Accepts every write and stores nothing; reads come back empty."""

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: str) -> int:
        return 0

    def total_count(self) -> int:
        return 0

    def quantile(self, q: float, **labels: str) -> float:
        return math.nan


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """The instrumentation-ripped-out registry: every write is a no-op.

    What the overhead benchmark compares the real registry against, and
    the opt-out for embedders who want the absolute minimum per-query
    cost (``CatalogQueryService(registry=NullRegistry())``).
    """

    enabled = False

    def counter(self, name: str, help_text: str = "") -> Any:
        return _NULL_METRIC

    def gauge(self, name: str, help_text: str = "") -> Any:
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Any:
        return _NULL_METRIC

    def register_collector(self, collector: Any) -> None:
        pass

    def unregister_collector(self, collector: Any) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}

    def exposition(self) -> str:
        return ""


#: The process-wide default registry.  The store layer's module-level
#: counters always land here; services and servers default to it too, so
#: one ``{"op": "metrics"}`` scrape sees the whole stack.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The shared process-wide registry (see module docs)."""
    return _DEFAULT
