"""Fig. 10 — density distance of the four metrics vs window size H.

Paper protocol: run UT, VT, ARMA-GARCH and Kalman-GARCH over both datasets
for H in {30, 60, 90, 120, 150, 180}; score each with the density distance
of eq. (1).  Expected shape: the GARCH metrics beat the naive ones by a
large factor (up to 20x campus / 12.3x car), ARMA-GARCH best overall, and
Kalman-GARCH degrading with H on car-data.
"""

from __future__ import annotations

from repro.data.synthetic import CAMPUS_ACCURACY, CAR_ACCURACY, make_dataset
from repro.evaluation.density_distance import density_distance
from repro.experiments.common import ExperimentTable, get_scale, steps_for
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.base import DynamicDensityMetric
from repro.metrics.kalman_garch import KalmanGARCHMetric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.timeseries.series import TimeSeries

__all__ = ["run_fig10", "DEFAULT_WINDOW_SIZES"]

DEFAULT_WINDOW_SIZES = (30, 60, 90, 120, 150, 180)


def _metrics_for(dataset: str) -> list[tuple[str, DynamicDensityMetric, float]]:
    """(label, metric, inference-budget multiplier) per metric.

    The UT threshold is the dataset's sensor accuracy — the natural
    "user-defined" uncertainty a practitioner would configure.  The
    Kalman-GARCH budget multiplier keeps its EM cost comparable to the
    others' in wall-clock terms.
    """
    threshold = CAMPUS_ACCURACY if dataset == "campus" else CAR_ACCURACY
    return [
        ("UT", UniformThresholdingMetric(threshold=threshold), 1.0),
        ("VT", VariableThresholdingMetric(), 1.0),
        ("ARMA-GARCH", ARMAGARCHMetric(), 1.0),
        ("Kalman-GARCH", KalmanGARCHMetric(em_max_iter=15), 0.25),
    ]


def run_fig10(
    scale: float | None = None,
    window_sizes: tuple[int, ...] = DEFAULT_WINDOW_SIZES,
    datasets: tuple[str, ...] = ("campus", "car"),
    rng_seed: int = 0,
) -> ExperimentTable:
    """Density distance per (dataset, H, metric)."""
    scale = get_scale(scale)
    base_budget = max(60, int(1500 * scale))
    table = ExperimentTable(
        experiment_id="Fig. 10",
        title="Quality of the dynamic density metrics (density distance, lower=better)",
        headers=["dataset", "H", "UT", "VT", "ARMA-GARCH", "Kalman-GARCH"],
        notes=(
            f"scale={scale:g}; ~{base_budget} rolling inferences per cell "
            "(Kalman-GARCH subsampled 4x harder for cost)"
        ),
    )
    for index, dataset in enumerate(datasets):
        series = make_dataset(dataset, scale=scale, rng=rng_seed + index)
        for H in window_sizes:
            cells = []
            for _label, metric, budget_multiplier in _metrics_for(dataset):
                cells.append(
                    _density_distance_cell(
                        metric, series, H,
                        int(base_budget * budget_multiplier),
                    )
                )
            table.add_row(series.name, H, *cells)
    return table


def _density_distance_cell(
    metric: DynamicDensityMetric,
    series: TimeSeries,
    H: int,
    budget: int,
) -> float:
    available = len(series) - H
    step = steps_for(available, max(budget, 30))
    forecasts = metric.run(series, H, step=step)
    return round(density_distance(forecasts, series), 4)
