"""Shared infrastructure for the experiment modules."""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import InvalidParameterError
from repro.util.tables import format_table

__all__ = ["ExperimentTable", "get_scale", "steps_for", "time_per_call"]

#: Default fraction of the paper-sized workload; chosen so the whole
#: benchmark suite finishes in minutes on one laptop core.
DEFAULT_SCALE = 0.08

#: Environment variable overriding the default scale.
SCALE_ENV_VAR = "REPRO_SCALE"


@dataclass
class ExperimentTable:
    """A reproduced table/figure: headers, rows and free-form notes.

    ``rows`` are plain lists matching ``headers``; :meth:`render` prints
    the aligned ASCII table the benchmarks emit.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise InvalidParameterError(
                f"row has {len(values)} cells for {len(self.headers)} headers"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        text = format_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def column(self, header: str) -> list[Any]:
        """Extract one column by header name (used by assertions in tests)."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise InvalidParameterError(
                f"no column {header!r}; headers are {list(self.headers)}"
            ) from None
        return [row[index] for row in self.rows]


def get_scale(scale: float | None = None) -> float:
    """Resolve the experiment scale.

    Priority: explicit argument > ``REPRO_SCALE`` env var > default
    (:data:`DEFAULT_SCALE`).  Must land in ``(0, 1]``.
    """
    if scale is None:
        raw = os.environ.get(SCALE_ENV_VAR)
        scale = float(raw) if raw else DEFAULT_SCALE
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    return scale


def steps_for(n_available: int, target_inferences: int) -> int:
    """Subsampling stride giving about ``target_inferences`` rolling steps."""
    if target_inferences < 1:
        raise InvalidParameterError(
            f"target_inferences must be >= 1, got {target_inferences}"
        )
    return max(1, n_available // target_inferences)


def time_per_call(fn: Callable[[], Any], *, repeats: int = 1) -> tuple[float, Any]:
    """Wall-clock seconds per call of ``fn`` (best of ``repeats``) + result."""
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result
