"""Experiment harness reproducing every table and figure of the paper.

One module per experiment; each exposes a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentTable` whose rows mirror the
series the paper plots.  The benchmarks under ``benchmarks/`` are thin
wrappers that time these functions and print the tables; EXPERIMENTS.md
records paper-vs-measured values.

Scaling: every experiment accepts a ``scale`` in ``(0, 1]`` (default from
the ``REPRO_SCALE`` environment variable, see
:func:`~repro.experiments.common.get_scale`) that shrinks dataset sizes and
rolling-inference counts so the suite finishes on a laptop.  ``scale=1``
reproduces the paper-sized workloads.
"""

from repro.experiments.common import ExperimentTable, get_scale
from repro.experiments.fig04 import run_fig04
from repro.experiments.fig05 import run_fig05
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.fig14 import run_fig14a, run_fig14b
from repro.experiments.fig15 import run_fig15
from repro.experiments.table02 import run_table02

__all__ = [
    "ExperimentTable",
    "get_scale",
    "run_fig04",
    "run_fig05",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14a",
    "run_fig14b",
    "run_fig15",
    "run_table02",
]
