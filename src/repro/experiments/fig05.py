"""Fig. 5 — GARCH blow-up on erroneous values vs C-GARCH correction.

The paper's Fig. 5(a) shows plain ARMA-GARCH inferring an absurdly wide
bound (1800 deg C on a temperature trace) after erroneous values enter the
training window; Fig. 5(b) shows C-GARCH (kappa=3, oc_max=7) replacing the
spikes and tracking a genuine trend change.  We reproduce both behaviours
on the same corrupted series and report the worst inferred bound width and
the cleaning diagnostics side by side.
"""

from __future__ import annotations

import numpy as np

from repro.data.errors import inject_errors
from repro.data.synthetic import campus_temperature
from repro.experiments.common import ExperimentTable, get_scale
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.cgarch import CGARCHMetric

__all__ = ["run_fig05"]


def run_fig05(
    scale: float | None = None,
    H: int = 40,
    oc_max: int = 7,
    rng_seed: int = 0,
) -> ExperimentTable:
    """Compare worst-case inferred bounds of GARCH vs C-GARCH under spikes."""
    scale = get_scale(scale)
    n = max(400, int(3000 * scale))
    clean = campus_temperature(n, rng=rng_seed)
    injection = inject_errors(
        clean, count=max(3, n // 150), magnitude=12.0, rng=rng_seed + 1,
        protect_prefix=H + 1,
    )
    series = injection.series

    plain = ARMAGARCHMetric(kappa=3.0)
    plain_forecasts = plain.run(series, H)
    plain_widths = np.array([f.upper - f.lower for f in plain_forecasts])

    cgarch = CGARCHMetric(kappa=3.0, oc_max=oc_max)
    cg_forecasts, report = cgarch.run_with_report(series, H)
    cg_widths = np.array([f.upper - f.lower for f in cg_forecasts])

    clean_width = 6.0 * float(np.std(np.diff(clean.values)))  # Reference scale.
    table = ExperimentTable(
        experiment_id="Fig. 5",
        title="GARCH failure vs C-GARCH correction on erroneous values",
        headers=[
            "model", "max bound width", "median bound width",
            "width blow-up vs clean", "errors flagged", "trend changes",
        ],
        notes=(
            f"n={n}, {len(injection.error_indices)} injected spikes, "
            f"kappa=3, oc_max={oc_max}; the paper's Fig. 5(a) blow-up shows "
            "as a max width orders of magnitude above the median"
        ),
    )
    table.add_row(
        "ARMA-GARCH",
        float(np.max(plain_widths)),
        float(np.median(plain_widths)),
        float(np.max(plain_widths) / max(clean_width, 1e-9)),
        0,
        0,
    )
    table.add_row(
        "C-GARCH",
        float(np.max(cg_widths)),
        float(np.median(cg_widths)),
        float(np.max(cg_widths) / max(clean_width, 1e-9)),
        report.n_flagged,
        len(report.trend_changes),
    )
    return table
