"""Table II — summary of the (synthetic stand-in) datasets."""

from __future__ import annotations

from repro.data.loaders import dataset_summary
from repro.experiments.common import ExperimentTable, get_scale

__all__ = ["run_table02"]


def run_table02(scale: float | None = None, rng_seed: int = 0) -> ExperimentTable:
    """Reproduce Table II: dataset name, parameter, size, accuracy, interval."""
    scale = get_scale(scale)
    table = ExperimentTable(
        experiment_id="Table II",
        title="Summary of datasets (synthetic substitutes, see DESIGN.md)",
        headers=[
            "dataset", "monitored", "samples", "accuracy",
            "median interval (s)", "mean", "std",
        ],
        notes=(
            f"scale={scale:g}; paper sizes are campus=18031, car=10473 "
            "(reached at scale=1)"
        ),
    )
    for row in dataset_summary(scale=scale, rng_seed=rng_seed):
        table.add_row(
            row["dataset"], row["monitored"], row["samples"], row["accuracy"],
            row["median_interval_s"], row["mean"], row["std"],
        )
    return table
