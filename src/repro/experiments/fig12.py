"""Fig. 12 — effect of ARMA model order on density distance (campus-data).

Paper protocol: density distance of UT, VT and ARMA-GARCH with an
ARMA(p, 0) mean model as p grows through {2, 4, 6, 8}.  Expected shape:
ARMA-GARCH's distance *increases* with model order (overfitting the short
window hurts the one-step density), justifying the paper's low default
order.
"""

from __future__ import annotations

from repro.data.synthetic import CAMPUS_ACCURACY, make_dataset
from repro.evaluation.density_distance import density_distance
from repro.experiments.common import ExperimentTable, get_scale, steps_for
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric

__all__ = ["run_fig12"]

DEFAULT_ORDERS = (2, 4, 6, 8)


def run_fig12(
    scale: float | None = None,
    orders: tuple[int, ...] = DEFAULT_ORDERS,
    H: int = 60,
    rng_seed: int = 0,
) -> ExperimentTable:
    """Density distance per (model order p, metric) on campus-data."""
    scale = get_scale(scale)
    series = make_dataset("campus", scale=scale, rng=rng_seed)
    budget = max(60, int(1500 * scale))
    step = steps_for(len(series) - H, budget)
    table = ExperimentTable(
        experiment_id="Fig. 12",
        title="Effect of ARMA(p,0) model order on density distance (campus-data)",
        headers=["p", "UT", "VT", "ARMA-GARCH"],
        notes=f"H={H}, scale={scale:g}; paper shape: ARMA-GARCH worsens as p grows",
    )
    for p in orders:
        metrics = [
            UniformThresholdingMetric(threshold=CAMPUS_ACCURACY, p=p, q=0),
            VariableThresholdingMetric(p=p, q=0),
            ARMAGARCHMetric(p=p, q=0),
        ]
        cells = [
            round(density_distance(metric.run(series, H, step=step), series), 4)
            for metric in metrics
        ]
        table.add_row(p, *cells)
    return table
