"""Fig. 11 — average time per density inference vs window size H.

Paper protocol: the average wall-clock time of one inference iteration for
each metric, on both datasets, H in {30 .. 180} (log-scale y axis).
Expected shape: Kalman-GARCH slowest by 5-19x (EM estimation), UT/VT
cheapest, ARMA-GARCH close behind the naive metrics.  Absolute times are
hardware-specific; the *ratios* are what the reproduction checks.
"""

from __future__ import annotations

import time

from repro.data.synthetic import CAMPUS_ACCURACY, CAR_ACCURACY, make_dataset
from repro.experiments.common import ExperimentTable, get_scale
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.base import DynamicDensityMetric
from repro.metrics.kalman_garch import KalmanGARCHMetric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.timeseries.series import TimeSeries

__all__ = ["run_fig11"]

DEFAULT_WINDOW_SIZES = (30, 60, 90, 120, 150, 180)


def run_fig11(
    scale: float | None = None,
    window_sizes: tuple[int, ...] = DEFAULT_WINDOW_SIZES,
    datasets: tuple[str, ...] = ("campus", "car"),
    rng_seed: int = 0,
) -> ExperimentTable:
    """Milliseconds per inference per (dataset, H, metric)."""
    scale = get_scale(scale)
    repeats = max(5, int(60 * scale))
    table = ExperimentTable(
        experiment_id="Fig. 11",
        title="Efficiency of the dynamic density metrics (ms per inference)",
        headers=[
            "dataset", "H", "UT", "VT", "ARMA-GARCH", "Kalman-GARCH",
            "KG/AG slowdown",
        ],
        notes=(
            f"scale={scale:g}; each cell averages {repeats} inferences; the "
            "paper reports a 5.1-18.6x Kalman-GARCH slowdown over ARMA-GARCH"
        ),
    )
    for index, dataset in enumerate(datasets):
        series = make_dataset(dataset, scale=scale, rng=rng_seed + index)
        threshold = CAMPUS_ACCURACY if dataset == "campus" else CAR_ACCURACY
        metrics: list[DynamicDensityMetric] = [
            UniformThresholdingMetric(threshold=threshold),
            VariableThresholdingMetric(),
            ARMAGARCHMetric(),
            KalmanGARCHMetric(em_max_iter=15),
        ]
        for H in window_sizes:
            cells = [
                round(_ms_per_inference(metric, series, H, repeats), 4)
                for metric in metrics
            ]
            slowdown = round(cells[3] / max(cells[2], 1e-9), 2)
            table.add_row(series.name, H, *cells, slowdown)
    return table


def _ms_per_inference(
    metric: DynamicDensityMetric,
    series: TimeSeries,
    H: int,
    repeats: int,
) -> float:
    available = len(series) - H
    count = min(repeats, available)
    step = max(1, available // count)
    start = time.perf_counter()
    forecasts = metric.run(series, H, step=step, stop=H + step * count)
    elapsed = time.perf_counter() - start
    return 1000.0 * elapsed / max(len(forecasts), 1)
