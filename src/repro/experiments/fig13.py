"""Fig. 13 — C-GARCH vs plain GARCH on synthetically injected errors.

Paper protocol (Section VII-B): insert a pre-specified number of very
high/low spikes uniformly at random into campus-data, learn ``SVmax`` from
clean data, run C-GARCH with ``oc_max = 8`` and compare against plain
ARMA-GARCH on (a) the percentage of injected errors detected and (b) the
average processing time per value.  Expected shape: C-GARCH captures about
twice as many errors at comparable cost — the plain model's variance
explodes after the first spike, hiding later spikes inside its inflated
bounds.

The paper injects {5, 25, 125, 625} errors into 18 031 samples; at reduced
``scale`` the counts shrink proportionally so the corruption *rate* matches
the paper's.
"""

from __future__ import annotations

import time


from repro.data.errors import inject_errors
from repro.data.synthetic import CAMPUS_SAMPLES, campus_temperature
from repro.experiments.common import ExperimentTable, get_scale
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.cgarch import CGARCHMetric
from repro.timeseries.series import TimeSeries

__all__ = ["run_fig13", "plain_garch_detection"]

PAPER_ERROR_COUNTS = (5, 25, 125, 625)


def plain_garch_detection(
    series: TimeSeries, H: int, kappa: float = 3.0
) -> tuple[set[int], float]:
    """Detection-only baseline: flag values outside plain ARMA-GARCH bounds.

    No replacement happens — erroneous values stay in the window, so the
    inferred volatility blows up exactly as in the paper's Fig. 5(a) and
    later spikes escape detection.  Returns the flagged indices and the
    average seconds per processed value.
    """
    metric = ARMAGARCHMetric(kappa=kappa)
    flagged: set[int] = set()
    values = series.values
    start = time.perf_counter()
    for t in range(H, len(series)):
        forecast = metric.infer(values[t - H : t], t)
        if not forecast.lower <= values[t] <= forecast.upper:
            flagged.add(t)
    elapsed = time.perf_counter() - start
    return flagged, elapsed / max(len(series) - H, 1)


def run_fig13(
    scale: float | None = None,
    H: int = 40,
    oc_max: int = 8,
    rng_seed: int = 0,
) -> ExperimentTable:
    """Percent of injected errors captured + time per value, both models."""
    scale = get_scale(scale)
    n = max(1200, int(CAMPUS_SAMPLES * scale))
    clean = campus_temperature(n, rng=rng_seed)
    sv_max = CGARCHMetric.learn_sv_max(clean.values[: max(H, 200)], oc_max)
    table = ExperimentTable(
        experiment_id="Fig. 13",
        title="C-GARCH vs GARCH: error detection rate and per-value cost",
        headers=[
            "errors (paper)", "errors (injected)",
            "C-GARCH % captured", "GARCH % captured",
            "C-GARCH ms/value", "GARCH ms/value",
        ],
        notes=(
            f"n={n} samples (scale={scale:g}), H={H}, oc_max={oc_max}, "
            "kappa=3, error bursts of 1-4 values (oc_max = 2x max burst, "
            "the paper's guideline); error counts scaled to preserve the "
            "paper's corruption rates"
        ),
    )
    for paper_count in PAPER_ERROR_COUNTS:
        count = max(2, round(paper_count * n / CAMPUS_SAMPLES))
        injection = inject_errors(
            clean, count, magnitude=8.0, max_burst=4,
            rng=rng_seed + paper_count, protect_prefix=H + 1,
        )
        series = injection.series
        truth = injection.error_indices

        cgarch = CGARCHMetric(oc_max=oc_max, sv_max=sv_max)
        start = time.perf_counter()
        _forecasts, report = cgarch.run_with_report(series, H)
        cg_seconds = (time.perf_counter() - start) / max(len(series) - H, 1)
        cg_captured = 100.0 * report.capture_rate(truth)

        plain_flagged, plain_seconds = plain_garch_detection(series, H)
        plain_captured = (
            100.0 * len(plain_flagged & set(truth.tolist())) / len(truth)
        )

        table.add_row(
            paper_count,
            count,
            round(cg_captured, 1),
            round(plain_captured, 1),
            round(1000.0 * cg_seconds, 3),
            round(1000.0 * plain_seconds, 3),
        )
    return table
