"""Fig. 14 — sigma-cache efficiency and scaling.

(a) Time to evaluate the probabilistic view generation query with and
    without the sigma-cache as the database grows through
    {6 000, 10 000, 14 000, 18 000} tuples, with the paper's view
    parameters Delta = 0.05, n = 300 and distance constraint H' = 0.01.
    Expected shape: the cache wins by roughly an order of magnitude at 18k
    tuples (paper: 9.6x).

(b) Cache memory versus the maximum ratio threshold
    Ds in {2 000, 4 000, 8 000, 16 000} (log-x in the paper): the stored
    distribution count — and hence the size — grows logarithmically in Ds.

The query operates on *stored* densities (the framework persists
``p_t(R_t)`` as it streams, Section II-A), so the workload generator
synthesises a realistic mean/volatility sequence directly rather than
re-running a metric over 18k windows; the timed code path is exactly the
builder's naive-vs-cached row generation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.distributions.gaussian import Gaussian
from repro.experiments.common import ExperimentTable, get_scale
from repro.metrics.base import DensityForecast, DensitySeries
from repro.util.rng import ensure_rng
from repro.view.builder import ViewBuilder
from repro.view.omega import OmegaGrid
from repro.view.sigma_cache import SigmaCache

__all__ = ["run_fig14a", "run_fig14b", "synthetic_density_series"]

DATABASE_SIZES = (6000, 10000, 14000, 18000)
RATIO_THRESHOLDS = (2000.0, 4000.0, 8000.0, 16000.0)

#: The paper's Fig. 14 view parameters.
PAPER_DELTA = 0.05
PAPER_N = 300
PAPER_DISTANCE = 0.01


def synthetic_density_series(
    n: int, rng: int | np.random.Generator | None = None
) -> DensitySeries:
    """Stored-density workload: smooth means, log-random-walk volatilities.

    Mimics what the framework persists after running a GARCH metric over a
    long temperature stream: slowly varying means and volatilities spanning
    roughly two orders of magnitude with strong temporal correlation (the
    property the sigma-cache exploits).
    """
    generator = ensure_rng(rng)
    t = np.arange(n)
    means = 14.0 + 6.0 * np.sin(2.0 * np.pi * t / 720.0)
    log_sigma = np.cumsum(generator.normal(0.0, 0.03, size=n))
    log_sigma = log_sigma - log_sigma.mean()
    scale = 2.0 / max(float(np.max(np.abs(log_sigma))), 1e-9)
    sigmas = np.exp(log_sigma * min(scale, 1.0)) * 0.3
    forecasts = [
        DensityForecast(
            t=int(i),
            mean=float(means[i]),
            distribution=Gaussian(float(means[i]), float(sigmas[i]) ** 2),
            lower=float(means[i] - 3.0 * sigmas[i]),
            upper=float(means[i] + 3.0 * sigmas[i]),
            volatility=float(sigmas[i]),
        )
        for i in range(n)
    ]
    return DensitySeries(forecasts)


def run_fig14a(
    scale: float | None = None,
    sizes: tuple[int, ...] = DATABASE_SIZES,
    rng_seed: int = 0,
) -> ExperimentTable:
    """Naive vs cached view-generation time as the database grows."""
    get_scale(scale)  # Validated for interface consistency; sizes are cheap
    # enough to run unscaled, matching the paper exactly.
    grid = OmegaGrid(delta=PAPER_DELTA, n=PAPER_N)
    table = ExperimentTable(
        experiment_id="Fig. 14a",
        title="Impact of the sigma-cache on view generation time",
        headers=[
            "tuples", "naive (ms)", "sigma-cache (ms)", "speedup",
            "cached distributions",
        ],
        notes=(
            f"Delta={PAPER_DELTA}, n={PAPER_N}, distance H'={PAPER_DISTANCE}; "
            "paper reports 9.6x at 18k tuples"
        ),
    )
    for size in sizes:
        forecasts = synthetic_density_series(size, rng=rng_seed)
        naive_builder = ViewBuilder(grid)
        start = time.perf_counter()
        naive_rows = naive_builder.build_rows(forecasts)
        naive_ms = 1000.0 * (time.perf_counter() - start)

        cached_builder = naive_builder.with_cache_for(
            forecasts, distance_constraint=PAPER_DISTANCE
        )
        start = time.perf_counter()
        cached_rows = cached_builder.build_rows(forecasts)
        cached_ms = 1000.0 * (time.perf_counter() - start)

        assert len(naive_rows) == len(cached_rows)
        assert cached_builder.cache is not None
        table.add_row(
            size,
            round(naive_ms, 2),
            round(cached_ms, 2),
            round(naive_ms / max(cached_ms, 1e-9), 2),
            len(cached_builder.cache),
        )
    return table


def run_fig14b(
    scale: float | None = None,
    ratios: tuple[float, ...] = RATIO_THRESHOLDS,
) -> ExperimentTable:
    """Cache size vs the maximum ratio threshold Ds (log growth expected)."""
    get_scale(scale)
    grid = OmegaGrid(delta=PAPER_DELTA, n=PAPER_N)
    table = ExperimentTable(
        experiment_id="Fig. 14b",
        title="Scaling behaviour of the sigma-cache",
        headers=["max ratio Ds", "distributions", "cache size (kB)"],
        notes=(
            "distance H'=0.01; doubling Ds adds a constant number of "
            "distributions (logarithmic growth)"
        ),
    )
    for ratio in ratios:
        cache = SigmaCache(
            grid,
            min_sigma=0.01,
            max_sigma=0.01 * ratio,
            distance_constraint=PAPER_DISTANCE,
        )
        table.add_row(
            ratio, len(cache), round(cache.size_bytes() / 1024.0, 1)
        )
    return table
