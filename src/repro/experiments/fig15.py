"""Fig. 15 — verifying time-varying volatility (Engle ARCH test).

Paper protocol: compute the average Phi(m) statistic (eq. 16) for
m = 1..8 over 1800 windows of H = 180 samples on both datasets; reject the
i.i.d.-errors null when the average exceeds the chi-square critical value
at alpha = 0.05.  Expected shape: campus-data rejects decisively for every
m (strong volatility clustering); car-data also rejects but with Phi(m)
much closer to the critical value.
"""

from __future__ import annotations

from repro.data.synthetic import make_dataset
from repro.evaluation.volatility_test import rolling_arch_test
from repro.experiments.common import ExperimentTable, get_scale

__all__ = ["run_fig15"]

DEFAULT_LAGS = tuple(range(1, 9))


def run_fig15(
    scale: float | None = None,
    lags: tuple[int, ...] = DEFAULT_LAGS,
    H: int = 180,
    alpha: float = 0.05,
    rng_seed: int = 0,
) -> ExperimentTable:
    """Average Phi(m) vs chi^2_m(alpha) per (dataset, m)."""
    scale = get_scale(scale)
    n_windows = max(60, int(1800 * scale))
    table = ExperimentTable(
        experiment_id="Fig. 15",
        title="Verifying time-varying volatility (ARCH test)",
        headers=[
            "dataset", "m", "Phi(m)", "chi2_m(alpha)", "reject iid",
            "margin Phi/critical",
        ],
        notes=(
            f"H={H}, alpha={alpha}, {n_windows} windows (scale={scale:g}); "
            "paper: both datasets reject, car-data much closer to critical"
        ),
    )
    for index, dataset in enumerate(("campus", "car")):
        series = make_dataset(dataset, scale=max(scale, 0.05), rng=rng_seed + index)
        for m in lags:
            result = rolling_arch_test(
                series, m, H=H, n_windows=n_windows, alpha=alpha
            )
            table.add_row(
                series.name,
                m,
                round(result.statistic, 3),
                round(result.critical_value, 3),
                result.reject_iid,
                round(result.statistic / result.critical_value, 2),
            )
    return table
