"""Fig. 4 — regions of changing volatility in both datasets.

The paper plots raw traces with visually distinct high-volatility (Region A)
and low-volatility (Region B) segments.  Numerically we reproduce the claim
behind the figure: the rolling variance of each series spans a wide range,
with the volatile decile orders of magnitude above the quiet decile.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import CAMPUS_SAMPLES, campus_humidity, make_dataset
from repro.experiments.common import ExperimentTable, get_scale
from repro.timeseries.stats import rolling_variance

__all__ = ["run_fig04"]


def run_fig04(
    scale: float | None = None,
    window: int = 30,
    rng_seed: int = 0,
) -> ExperimentTable:
    """Rolling-variance regime statistics.

    The paper's Fig. 4 shows (a) ambient temperature and (b) relative
    humidity; car-data is included as a third row because the later
    experiments rely on its regimes too.
    """
    scale = get_scale(scale)
    table = ExperimentTable(
        experiment_id="Fig. 4",
        title="Regions of changing volatility (rolling variance regimes)",
        headers=[
            "dataset", "window", "var p10 (quiet)", "var p90 (volatile)",
            "volatile/quiet ratio", "regimes present",
        ],
        notes=(
            "the paper's Region A / Region B claim holds when the ratio is "
            "large (>> 1)"
        ),
    )
    humidity = campus_humidity(max(int(CAMPUS_SAMPLES * scale), 400),
                               rng=rng_seed + 7)
    series_list = [
        make_dataset("campus", scale=scale, rng=rng_seed),
        humidity,
        make_dataset("car", scale=scale, rng=rng_seed + 1),
    ]
    for series in series_list:
        variances = rolling_variance(series.values, window)
        quiet = float(np.percentile(variances, 10))
        volatile = float(np.percentile(variances, 90))
        ratio = volatile / max(quiet, 1e-12)
        table.add_row(
            series.name, window, quiet, volatile, ratio, ratio > 3.0
        )
    return table
