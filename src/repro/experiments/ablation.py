"""Ablations of the design decisions called out in DESIGN.md.

Four micro-studies, each isolating one implementation choice:

1. **GARCH warm-start** — seeding each rolling GARCH fit with the previous
   window's optimum vs cold multi-start: time per inference and density
   distance must show the speedup is quality-neutral.
2. **Analytic gradient** — the closed-form GARCH(1,1) gradient vs scipy's
   finite differences inside L-BFGS-B.
3. **Cache payload** — storing ready probability rows (CDF diffs) vs
   recomputing the Gaussian CDF at lookup time from the matched key.
4. **Cache index** — B-tree floor-lookup vs a sorted numpy array with
   ``searchsorted`` (both satisfy the paper's "sorted container").
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize

from repro.data.synthetic import make_dataset
from repro.distributions.gaussian import Gaussian
from repro.evaluation.density_distance import density_distance
from repro.experiments.common import ExperimentTable, get_scale, steps_for
from repro.experiments.fig14 import synthetic_density_series
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.timeseries.garch import GARCHModel
from repro.util.btree import BTreeMap
from repro.view.omega import OmegaGrid
from repro.view.sigma_cache import SigmaCache

__all__ = ["run_ablation"]


def run_ablation(scale: float | None = None, rng_seed: int = 0) -> ExperimentTable:
    """Run all four ablations; one row per variant."""
    scale = get_scale(scale)
    table = ExperimentTable(
        experiment_id="Ablation",
        title="Design-decision ablations (DESIGN.md Section 6)",
        headers=["study", "variant", "time (ms)", "quality"],
        notes=(
            "quality column: density distance for metric studies, max "
            "probability-row error for cache studies, '-' when untimed "
            "quality is identical by construction"
        ),
    )
    _ablate_warm_start(table, scale, rng_seed)
    _ablate_gradient(table, rng_seed)
    _ablate_cache_payload(table, rng_seed)
    _ablate_cache_index(table, rng_seed)
    return table


def _ablate_warm_start(table: ExperimentTable, scale: float, rng_seed: int) -> None:
    series = make_dataset("campus", scale=max(scale, 0.03), rng=rng_seed)
    H = 60
    budget = max(40, int(400 * scale))
    step = steps_for(len(series) - H, budget)
    for label, warm in (("warm-start", True), ("cold multi-start", False)):
        metric = ARMAGARCHMetric(warm_start=warm)
        start = time.perf_counter()
        forecasts = metric.run(series, H, step=step)
        elapsed = time.perf_counter() - start
        table.add_row(
            "garch estimation",
            label,
            round(1000.0 * elapsed / len(forecasts), 3),
            round(density_distance(forecasts, series), 4),
        )


def _ablate_gradient(table: ExperimentTable, rng_seed: int) -> None:
    rng = np.random.default_rng(rng_seed)
    windows = [rng.standard_normal(120) * (1.0 + 0.5 * i) for i in range(20)]

    def fit_analytic() -> None:
        for window in windows:
            GARCHModel().fit(window)

    def fit_numeric() -> None:
        model = GARCHModel()
        for window in windows:
            # Same objective through scipy's finite-difference gradient.
            base_variance = float(np.var(window))
            bounds = [(1e-10, None), (0.0, 0.9995), (0.0, 0.9995)]

            def objective(theta):
                return -model._log_likelihood(window, model._unpack(theta))

            for start in model._starting_points(base_variance):
                optimize.minimize(
                    objective, start, method="L-BFGS-B", bounds=bounds,
                    options={"maxiter": 200},
                )

    for label, fn in (("analytic gradient", fit_analytic),
                      ("finite differences", fit_numeric)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        table.add_row(
            "garch(1,1) mle", label,
            round(1000.0 * elapsed / len(windows), 3), "-",
        )


def _ablate_cache_payload(table: ExperimentTable, rng_seed: int) -> None:
    grid = OmegaGrid(delta=0.05, n=300)
    forecasts = synthetic_density_series(4000, rng=rng_seed)
    sigmas = forecasts.volatilities
    cache = SigmaCache(
        grid, float(sigmas.min()), float(sigmas.max()), distance_constraint=0.01
    )
    edges = grid.edges_around(0.0)
    keys = cache.keys()

    def rows_from_cache() -> float:
        worst = 0.0
        for sigma in sigmas:
            row = cache.probability_row(float(sigma))
            worst = max(worst, float(row[0]))
        return worst

    def rows_recomputed() -> float:
        worst = 0.0
        for sigma in sigmas:
            index = int(np.searchsorted(keys, sigma, side="right")) - 1
            key = keys[max(index, 0)]
            row = np.diff(Gaussian(0.0, key**2).cdf(edges))
            worst = max(worst, float(row[0]))
        return worst

    for label, fn in (("stored rho rows", rows_from_cache),
                      ("recompute CDF per hit", rows_recomputed)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        table.add_row(
            "sigma-cache payload", label,
            round(1000.0 * elapsed, 2), "-",
        )


def _ablate_cache_index(table: ExperimentTable, rng_seed: int) -> None:
    rng = np.random.default_rng(rng_seed)
    keys = np.sort(rng.uniform(0.01, 10.0, size=400))
    probes = rng.uniform(0.01, 10.0, size=50000)
    tree = BTreeMap()
    for key in keys:
        tree[float(key)] = key

    def btree_lookups() -> None:
        for probe in probes:
            tree.floor_item(float(probe))

    def array_lookups() -> None:
        indices = np.searchsorted(keys, probes, side="right") - 1
        _ = keys[np.maximum(indices, 0)]

    for label, fn in (("B-tree floor lookup", btree_lookups),
                      ("sorted-array searchsorted", array_lookups)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        table.add_row(
            "sigma-cache index", label,
            round(1000.0 * elapsed, 2), "-",
        )
