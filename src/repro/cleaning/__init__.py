"""Data-cleaning substrate: the Successive Variance Reduction filter.

Section V-B of the paper introduces this filter to strip significant
anomalies from a short window before the ARMA-GARCH metric re-adjusts to a
new trend.
"""

from repro.cleaning.svr_filter import (
    SVRResult,
    learn_sv_max,
    successive_variance_reduction,
)

__all__ = ["SVRResult", "learn_sv_max", "successive_variance_reduction"]
