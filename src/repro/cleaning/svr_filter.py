"""Successive Variance Reduction filter (paper Section V-B, Algorithm 2).

Given a short value window ``V = [v_1 .. v_K]`` possibly containing
erroneous spikes and a dispersion threshold ``SVmax``, the filter repeatedly
finds the point whose removal reduces the sample variance the most, deletes
it, and reconstructs it by interpolating its neighbours — stopping once the
sample variance drops to ``SVmax`` or below.

The published pseudocode contains three transcription slips (inverted stop
condition, a dropped sum-of-squares term in the leave-one-out variance, and
a ``cVar`` initialisation that can never update); DESIGN.md documents them.
This implementation follows the surrounding text and Fig. 6: *continue
while* ``SV(V) > SVmax`` and delete the point giving the *maximum variance
reduction*, i.e. the minimum leave-one-out variance, computed in O(1) per
candidate from the running sums so each iteration stays linear and the whole
filter quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.timeseries.stats import rolling_variance
from repro.util.validation import require_finite_array

__all__ = ["SVRResult", "successive_variance_reduction", "learn_sv_max"]


@dataclass(frozen=True)
class SVRResult:
    """Outcome of one filter run.

    Attributes
    ----------
    cleaned:
        The window with every removed point replaced by interpolation; same
        length as the input.
    removed_indices:
        Positions (into the original window) that were deleted, in removal
        order.
    iterations:
        Number of delete-and-interpolate passes performed.
    final_variance:
        Sample variance of ``cleaned``.
    """

    cleaned: np.ndarray
    removed_indices: tuple[int, ...]
    iterations: int
    final_variance: float

    @property
    def n_removed(self) -> int:
        return len(self.removed_indices)


def successive_variance_reduction(
    values: np.ndarray,
    sv_max: float,
    *,
    max_removals: int | None = None,
) -> SVRResult:
    """Run Algorithm 2 on ``values`` with threshold ``sv_max``.

    Parameters
    ----------
    values:
        The window ``V`` (length >= 3) to clean.
    sv_max:
        Dispersion threshold ``SVmax``; the loop stops once the sample
        variance is at or below it.
    max_removals:
        Safety cap on deletions (default ``K - 3``, leaving at least three
        genuine points); prevents livelock when ``sv_max`` is unachievably
        small, e.g. zero on noisy data.

    >>> window = np.array([1.0, 1.1, 0.9, 50.0, 1.0, 1.05])
    >>> result = successive_variance_reduction(window, sv_max=0.5)
    >>> result.removed_indices
    (3,)
    >>> abs(result.cleaned[3] - 0.95) < 1e-9  # midpoint of neighbours
    True
    """
    window = require_finite_array("values", values, min_len=3).copy()
    if sv_max < 0:
        raise InvalidParameterError(f"sv_max must be >= 0, got {sv_max}")
    size = window.size
    cap = size - 3 if max_removals is None else min(max_removals, size - 1)
    removed: list[int] = []
    iterations = 0
    while iterations < max(cap, 0):
        variance = _sample_variance(window)
        if variance <= sv_max:
            break
        k_best = _max_reduction_index(window)
        if k_best < 0:
            break  # No single removal reduces the variance (flat window).
        removed.append(k_best)
        window[k_best] = _reconstruct(window, k_best)
        iterations += 1
    return SVRResult(
        cleaned=window,
        removed_indices=tuple(removed),
        iterations=iterations,
        final_variance=_sample_variance(window),
    )


def learn_sv_max(clean_values: np.ndarray, window: int) -> float:
    """Learn ``SVmax`` from a clean sample (paper Section V-B).

    Returns the maximum sample variance observed over all sliding windows of
    size ``window`` (the paper uses ``window = oc_max``), i.e. the largest
    dispersion a genuine trend change produces; anything above it is treated
    as erroneous.
    """
    data = require_finite_array("clean_values", clean_values, min_len=window)
    return float(np.max(rolling_variance(data, window)))


def _sample_variance(window: np.ndarray) -> float:
    if window.size < 2:
        return 0.0
    return float(np.var(window, ddof=1))


def _max_reduction_index(window: np.ndarray) -> int:
    """Index whose deletion minimises the leave-one-out sample variance.

    Uses the running sums ``S = sum(v)`` and ``S2 = sum(v^2)`` so each
    candidate is O(1):

        SV(V \\ v_k) = (S2 - v_k^2 - (S - v_k)^2 / (K-1)) / (K - 2)

    Returns -1 when no removal strictly reduces the variance.
    """
    size = window.size
    if size < 3:
        return -1
    total = float(np.sum(window))
    total2 = float(np.sum(window * window))
    current = (total2 - total * total / size) / (size - 1)
    best_variance = np.inf
    best_index = -1
    for k in range(size):
        vk = float(window[k])
        reduced = (total2 - vk * vk - (total - vk) ** 2 / (size - 1)) / (size - 2)
        if reduced < best_variance:
            best_variance = reduced
            best_index = k
    if best_variance >= current:
        return -1
    return best_index


def _reconstruct(window: np.ndarray, k: int) -> float:
    """Replace the deleted point: interpolate interiors, extrapolate edges.

    Edge extrapolations are clamped to the range of the surviving points so
    a steep local slope can never synthesise a replacement more extreme
    than the data it came from (which would re-raise the variance the
    deletion just removed).
    """
    size = window.size
    if 0 < k < size - 1:
        return 0.5 * (float(window[k - 1]) + float(window[k + 1]))
    if k == 0:
        if size >= 3:
            # Linear extrapolation from the two nearest points.
            value = 2.0 * float(window[1]) - float(window[2])
        else:
            value = float(window[1])
        remaining = window[1:]
    else:
        if size >= 3:
            value = 2.0 * float(window[size - 2]) - float(window[size - 3])
        else:
            value = float(window[size - 2])
        remaining = window[:-1]
    return float(np.clip(value, np.min(remaining), np.max(remaining)))
