"""Uniform thresholding metric (paper Section III, Fig. 3a).

Extends the Cheng et al. fixed-uncertainty-range idea: an ARMA model infers
the expected true value ``r_hat_t`` and a user-supplied threshold ``u``
bounds a uniform density centred on it, so the true value is assumed to lie
within ``[r_hat_t - u, r_hat_t + u]`` with uniform probability.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.uniform import Uniform
from repro.exceptions import EstimationError
from repro.metrics.base import DensityForecast, DensitySeries, DynamicDensityMetric
from repro.timeseries.arma import ARMAModel, batch_ar_predict
from repro.util.validation import require_positive

__all__ = ["UniformThresholdingMetric"]


class UniformThresholdingMetric(DynamicDensityMetric):
    """ARMA expected value + user-defined uniform uncertainty range.

    Parameters
    ----------
    threshold:
        The half-width ``u`` of the uncertainty range.  A natural choice is
        the sensor accuracy (e.g. 0.3 deg C for the campus deployment).
    p, q:
        ARMA orders for the expected-true-value model (eq. 2).
    """

    name = "uniform_threshold"

    def __init__(self, threshold: float, p: int = 1, q: int = 0) -> None:
        self.threshold = require_positive("threshold", threshold)
        self.p = int(p)
        self.q = int(q)
        self.min_window = max(self.p, self.q) + max(self.p + self.q, 1) + 1

    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """Uniform density of half-width ``threshold`` around the ARMA forecast."""
        model = ARMAModel(self.p, self.q).fit(window)
        mean = model.predict_next()
        distribution = Uniform.centered(mean, self.threshold)
        return DensityForecast(
            t=t,
            mean=mean,
            distribution=distribution,
            lower=distribution.low,
            upper=distribution.high,
            volatility=distribution.std(),
        )

    def infer_batch(self, windows: np.ndarray, ts: np.ndarray) -> DensitySeries:
        """All windows at once via one batched AR(p) solve; the uniform
        densities are materialised lazily.  MA components fall back to the
        per-window loop."""
        windows = np.asarray(windows, dtype=float)
        if self.q != 0 or windows.ndim != 2:
            return super().infer_batch(windows, ts)
        try:
            mean = batch_ar_predict(windows, self.p)
        except EstimationError:
            return super().infer_batch(windows, ts)
        lower = mean - self.threshold
        upper = mean + self.threshold
        width = upper - lower
        volatility = np.sqrt(width**2 / 12.0)
        return DensitySeries.from_columns(
            np.asarray(ts, dtype=np.int64),
            mean,
            volatility,
            lower,
            upper,
            family="uniform",
        )

    def __repr__(self) -> str:
        return (
            f"UniformThresholdingMetric(threshold={self.threshold}, "
            f"p={self.p}, q={self.q})"
        )
