"""EWMA (RiskMetrics-style) dynamic density metric.

A cheap extension metric: exponentially weighted moving averages for both
the mean and the variance.  It is the ``alpha_1 = 1 - lambda, beta_1 =
lambda, omega = 0`` boundary case of the paper's GARCH recursion (eq. 5)
with no per-window estimation at all, so it costs as little as the naive
metrics while still adapting its variance over time — a useful middle
ground the ablation benchmark quantifies against full ARMA-GARCH.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.gaussian import Gaussian
from repro.exceptions import InvalidParameterError
from repro.metrics.base import (
    DensityForecast,
    DensitySeries,
    DynamicDensityMetric,
    batch_variance_floor,
    variance_floor,
)
from repro.util.validation import require_in_range, require_positive

__all__ = ["EWMAMetric"]


class EWMAMetric(DynamicDensityMetric):
    """Exponentially weighted mean and variance.

    Parameters
    ----------
    mean_decay:
        Smoothing factor for the level: ``r_hat_t = (1 - d) * sum d^k r_{t-1-k}``
        (normalised).  Smaller reacts faster.
    variance_decay:
        RiskMetrics lambda for the variance recursion
        ``sigma^2_i = lambda * sigma^2_{i-1} + (1 - lambda) * a^2_{i-1}``
        (0.94 is the classic daily-data choice).
    kappa:
        Bound scaling factor, as in Algorithm 1.
    """

    name = "ewma"

    def __init__(
        self,
        mean_decay: float = 0.9,
        variance_decay: float = 0.94,
        kappa: float = 3.0,
    ) -> None:
        self.mean_decay = require_in_range("mean_decay", mean_decay, 0.0, 1.0,
                                           inclusive=False)
        self.variance_decay = require_in_range(
            "variance_decay", variance_decay, 0.0, 1.0, inclusive=False
        )
        self.kappa = require_positive("kappa", kappa, strict=False)
        self.min_window = 4

    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """One EWMA pass over the window; O(H) with no estimation step."""
        window = np.asarray(window, dtype=float)
        if window.size < self.min_window:
            raise InvalidParameterError(
                f"EWMA needs at least {self.min_window} values, got {window.size}"
            )
        floor = variance_floor(window)
        level = window[0]
        variance = max(float(np.var(window)), floor)
        d, lam = self.mean_decay, self.variance_decay
        for value in window[1:]:
            error = value - level
            variance = lam * variance + (1.0 - lam) * error * error
            level = d * level + (1.0 - d) * value
        variance = max(variance, floor)
        distribution = Gaussian(float(level), variance)
        sigma = distribution.std()
        return DensityForecast(
            t=t,
            mean=float(level),
            distribution=distribution,
            lower=float(level) - self.kappa * sigma,
            upper=float(level) + self.kappa * sigma,
            volatility=sigma,
        )

    def infer_batch(self, windows: np.ndarray, ts: np.ndarray) -> DensitySeries:
        """All windows at once: the recursion runs along the window axis
        while every numpy operation spans the (large) time axis, so the
        arithmetic is element-for-element identical to :meth:`infer`."""
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 2 or windows.shape[1] < self.min_window:
            return super().infer_batch(windows, ts)
        floors = batch_variance_floor(windows)
        level = windows[:, 0].copy()
        variance = np.maximum(np.var(windows, axis=1), floors)
        d, lam = self.mean_decay, self.variance_decay
        for i in range(1, windows.shape[1]):
            value = windows[:, i]
            error = value - level
            variance = lam * variance + (1.0 - lam) * error * error
            level = d * level + (1.0 - d) * value
        variance = np.maximum(variance, floors)
        sigma = np.sqrt(variance)
        return DensitySeries.from_columns(
            np.asarray(ts, dtype=np.int64),
            level,
            sigma,
            level - self.kappa * sigma,
            level + self.kappa * sigma,
            family="gaussian",
            variance=variance,
        )

    def __repr__(self) -> str:
        return (
            f"EWMAMetric(mean_decay={self.mean_decay}, "
            f"variance_decay={self.variance_decay}, kappa={self.kappa})"
        )
