"""ARMA-GARCH dynamic density metric (paper Section IV, Algorithm 1).

The main metric of the paper: an ARMA(p, q) model infers the time-varying
mean ``r_hat_t`` (eq. 2), its residuals ``a_i = r_i - r_hat_i`` feed a
GARCH(m, s) model that infers the time-varying variance ``sigma_hat_t^2``
(eq. 6), and the resulting density is ``N(r_hat_t, sigma_hat_t^2)`` with
kappa-scaled bounds ``r_hat_t +/- kappa * sigma_hat_t``.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.gaussian import Gaussian
from repro.exceptions import EstimationError
from repro.metrics.base import (
    DensityForecast,
    DynamicDensityMetric,
    variance_floor,
)
from repro.timeseries.arma import ARMAModel
from repro.timeseries.garch import GARCHModel
from repro.util.validation import require_positive

__all__ = ["ARMAGARCHMetric"]


class ARMAGARCHMetric(DynamicDensityMetric):
    """The paper's Algorithm 1: ARMA mean, GARCH volatility, kappa bounds.

    Parameters
    ----------
    p, q:
        ARMA orders.  The paper recommends low orders (its Fig. 12 shows
        density distance *increasing* with p); the default is ARMA(1, 0).
    m, s:
        GARCH orders; the paper restricts evaluation to GARCH(1, 1) because
        higher-order identification is difficult.
    kappa:
        Bound scaling factor; ``kappa=3`` covers ~99.73% of the Gaussian.
    warm_start:
        When true (the default) each GARCH estimation is seeded with the
        previous window's optimum instead of the multi-start heuristics.
        Rolling applications visit heavily overlapping windows, so this
        cuts the dominant cost several-fold with no measurable quality
        change (ablated in the benchmark suite).  Disable for strictly
        stateless ``infer`` calls.

    Examples
    --------
    >>> import numpy as np
    >>> metric = ARMAGARCHMetric()
    >>> window = np.sin(np.linspace(0, 3, 60)) + 0.01 * np.random.default_rng(0).standard_normal(60)
    >>> forecast = metric.infer(window, t=60)
    >>> forecast.lower < forecast.mean < forecast.upper
    True
    """

    name = "arma_garch"

    def __init__(
        self,
        p: int = 1,
        q: int = 0,
        m: int = 1,
        s: int = 1,
        kappa: float = 3.0,
        warm_start: bool = True,
    ) -> None:
        self.p = int(p)
        self.q = int(q)
        self.m = int(m)
        self.s = int(s)
        self.kappa = require_positive("kappa", kappa, strict=False)
        self.warm_start = bool(warm_start)
        self._last_garch_params = None
        arma_min = max(self.p, self.q) + max(self.p + self.q, 1) + 1
        garch_min = max(self.m, self.s) + 2
        self.min_window = max(arma_min, garch_min, 4)

    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """Steps 1-4 of Algorithm 1 on one window.

        1. Estimate ARMA(p, q) on the window, obtaining residuals ``a_i``.
        2. Estimate GARCH(m, s) on those residuals.
        3. Infer ``r_hat_t`` (ARMA) and ``sigma_hat_t^2`` (GARCH).
        4. Bounds ``r_hat_t +/- kappa * sigma_hat_t``.
        """
        arma = ARMAModel(self.p, self.q).fit(window)
        mean = arma.predict_next()
        residuals = arma.residuals_[max(self.p, self.q):]
        variance = self._garch_variance(residuals, variance_floor(window))
        distribution = Gaussian(mean, variance)
        sigma = distribution.std()
        return DensityForecast(
            t=t,
            mean=mean,
            distribution=distribution,
            lower=mean - self.kappa * sigma,
            upper=mean + self.kappa * sigma,
            volatility=sigma,
        )

    def _garch_variance(self, residuals: np.ndarray, floor: float) -> float:
        """One-step GARCH variance forecast with a flat-variance fallback."""
        try:
            garch = GARCHModel(self.m, self.s).fit(
                residuals,
                warm_start=self._last_garch_params if self.warm_start else None,
            )
            if self.warm_start:
                self._last_garch_params = garch.params_
            return max(garch.forecast_variance(), floor)
        except EstimationError:
            return max(float(np.var(residuals)), floor)

    def reset(self) -> None:
        """Drop the warm-start state (e.g. before switching to a new series)."""
        self._last_garch_params = None

    def __repr__(self) -> str:
        return (
            f"ARMAGARCHMetric(p={self.p}, q={self.q}, m={self.m}, s={self.s}, "
            f"kappa={self.kappa})"
        )
