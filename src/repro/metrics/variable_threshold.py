"""Variable thresholding metric (paper Section III, eq. 3, Fig. 3b).

Unlike uniform thresholding it needs no user threshold: the window's sample
variance ``s_t^2`` scales a Gaussian centred on the ARMA expected true
value.  The variance is computed on the *raw* window (not detrended), which
is exactly the deficiency the GARCH metric later fixes.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.gaussian import Gaussian
from repro.metrics.base import DensityForecast, DynamicDensityMetric
from repro.timeseries.arma import ARMAModel
from repro.timeseries.stats import sample_variance
from repro.util.validation import require_positive

__all__ = ["VariableThresholdingMetric"]

#: Variance floor used when a window is perfectly constant, keeping the
#: Gaussian well-defined.
_VARIANCE_FLOOR = 1e-12


class VariableThresholdingMetric(DynamicDensityMetric):
    """ARMA expected value + window-sample-variance Gaussian.

    Parameters
    ----------
    p, q:
        ARMA orders for the expected-true-value model.
    kappa:
        Scaling factor for the reported ``lower``/``upper`` bounds
        (consistent with Algorithm 1; defaults to 3).
    """

    name = "variable_threshold"

    def __init__(self, p: int = 1, q: int = 0, kappa: float = 3.0) -> None:
        self.p = int(p)
        self.q = int(q)
        self.kappa = require_positive("kappa", kappa, strict=False)
        self.min_window = max(max(self.p, self.q) + max(self.p + self.q, 1) + 1, 3)

    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """Gaussian ``N(r_hat_t, s_t^2)`` with ``s_t^2`` the window variance."""
        model = ARMAModel(self.p, self.q).fit(window)
        mean = model.predict_next()
        variance = max(sample_variance(window), _VARIANCE_FLOOR)
        distribution = Gaussian(mean, variance)
        sigma = distribution.std()
        return DensityForecast(
            t=t,
            mean=mean,
            distribution=distribution,
            lower=mean - self.kappa * sigma,
            upper=mean + self.kappa * sigma,
            volatility=sigma,
        )

    def __repr__(self) -> str:
        return f"VariableThresholdingMetric(p={self.p}, q={self.q}, kappa={self.kappa})"
