"""Variable thresholding metric (paper Section III, eq. 3, Fig. 3b).

Unlike uniform thresholding it needs no user threshold: the window's sample
variance ``s_t^2`` scales a Gaussian centred on the ARMA expected true
value.  The variance is computed on the *raw* window (not detrended), which
is exactly the deficiency the GARCH metric later fixes.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.gaussian import Gaussian
from repro.exceptions import EstimationError
from repro.metrics.base import (
    DensityForecast,
    DensitySeries,
    DynamicDensityMetric,
    batch_variance_floor,
    variance_floor,
)
from repro.timeseries.arma import ARMAModel, batch_ar_predict
from repro.timeseries.stats import sample_variance
from repro.util.validation import require_positive

__all__ = ["VariableThresholdingMetric"]


class VariableThresholdingMetric(DynamicDensityMetric):
    """ARMA expected value + window-sample-variance Gaussian.

    Parameters
    ----------
    p, q:
        ARMA orders for the expected-true-value model.
    kappa:
        Scaling factor for the reported ``lower``/``upper`` bounds
        (consistent with Algorithm 1; defaults to 3).
    """

    name = "variable_threshold"

    def __init__(self, p: int = 1, q: int = 0, kappa: float = 3.0) -> None:
        self.p = int(p)
        self.q = int(q)
        self.kappa = require_positive("kappa", kappa, strict=False)
        self.min_window = max(max(self.p, self.q) + max(self.p + self.q, 1) + 1, 3)

    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """Gaussian ``N(r_hat_t, s_t^2)`` with ``s_t^2`` the window variance."""
        model = ARMAModel(self.p, self.q).fit(window)
        mean = model.predict_next()
        variance = max(sample_variance(window), variance_floor(window))
        distribution = Gaussian(mean, variance)
        sigma = distribution.std()
        return DensityForecast(
            t=t,
            mean=mean,
            distribution=distribution,
            lower=mean - self.kappa * sigma,
            upper=mean + self.kappa * sigma,
            volatility=sigma,
        )

    def infer_batch(self, windows: np.ndarray, ts: np.ndarray) -> DensitySeries:
        """All windows at once: one batched AR(p) solve plus columnar
        variance, producing a lazily-materialised Gaussian series.  MA
        components (q > 0) fall back to the per-window loop."""
        windows = np.asarray(windows, dtype=float)
        if self.q != 0 or windows.ndim != 2:
            return super().infer_batch(windows, ts)
        try:
            mean = batch_ar_predict(windows, self.p)
        except EstimationError:
            return super().infer_batch(windows, ts)
        variance = np.maximum(
            np.var(windows, axis=1, ddof=1), batch_variance_floor(windows)
        )
        sigma = np.sqrt(variance)
        return DensitySeries.from_columns(
            np.asarray(ts, dtype=np.int64),
            mean,
            sigma,
            mean - self.kappa * sigma,
            mean + self.kappa * sigma,
            family="gaussian",
            variance=variance,
        )

    def __repr__(self) -> str:
        return f"VariableThresholdingMetric(p={self.p}, q={self.q}, kappa={self.kappa})"
