"""Dynamic density metric interface and rolling application.

Definition 1 of the paper: given a sliding window ``S^H_{t-1}``, a metric
estimates the density ``p_t(R_t)`` of the random variable associated with
the raw value at time ``t``.  :class:`DynamicDensityMetric` captures that
single-step contract; :meth:`DynamicDensityMetric.run` rolls it over a whole
series, producing the :class:`DensitySeries` that the Omega-view builder and
the density-distance evaluation consume.

Batch path
----------
:class:`DensitySeries` is column-backed: ``t``, ``mean``, ``volatility`` and
the kappa bounds live in preallocated numpy arrays, and the per-forecast
:class:`DensityForecast` objects are materialised lazily on item access.
:meth:`DynamicDensityMetric.run` stacks all sliding windows into one
``(T, H)`` matrix and hands it to :meth:`DynamicDensityMetric.infer_batch`,
which vectorised metrics override; the base implementation falls back to
looping :meth:`DynamicDensityMetric.infer`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.gaussian import Gaussian, gaussian_cdf
from repro.distributions.uniform import Uniform
from repro.exceptions import DataError, InvalidParameterError
from repro.timeseries.series import TimeSeries
from repro.util.arrays import readonly_view

__all__ = [
    "DensityForecast",
    "DensitySeries",
    "DynamicDensityMetric",
    "batch_variance_floor",
    "variance_floor",
]

#: Base variance floor for degenerate (constant) windows.
_VARIANCE_FLOOR = 1e-12


def variance_floor(window: np.ndarray) -> float:
    """Variance floor keeping degenerate (constant) windows usable.

    For a perfectly constant window the inferred variance is zero and the
    floor alone defines the density, so it must scale with the window
    magnitude: with ``sigma ~ 1e-6`` and values around ``1e3``, CDF
    evaluations at ``mean +/- kappa * sigma`` would lose most of their
    precision to float cancellation in ``x - mean``.  Non-constant windows
    carry real variance information, however small, so they keep the tiny
    absolute floor rather than having genuine values overridden.
    """
    window = np.asarray(window)
    if window.size and np.ptp(window) == 0.0:
        scale = float(abs(window.flat[0]))
        return _VARIANCE_FLOOR * max(1.0, scale * scale)
    return _VARIANCE_FLOOR


def batch_variance_floor(windows: np.ndarray) -> np.ndarray:
    """Per-row :func:`variance_floor` for a ``(T, H)`` window matrix."""
    constant = np.ptp(windows, axis=1) == 0.0
    scale = np.abs(windows[:, 0])
    return np.where(
        constant,
        _VARIANCE_FLOOR * np.maximum(1.0, scale * scale),
        _VARIANCE_FLOOR,
    )


@dataclass(frozen=True)
class DensityForecast:
    """The inferred density for one inference time.

    Attributes
    ----------
    t:
        Inference index into the source series.
    mean:
        Expected true value ``r_hat_t`` (Definition 3).
    distribution:
        The full inferred density ``p_t(R_t)``.
    lower, upper:
        kappa-scaled bounds ``r_hat_t -/+ kappa * sigma_hat_t`` from
        Algorithm 1 (equal to the distribution support edges for the
        uniform metric).
    volatility:
        The inferred standard deviation ``sigma_hat_t`` (or the uniform
        equivalent); exposed separately because the sigma-cache keys on it.
    """

    t: int
    mean: float
    distribution: Distribution
    lower: float
    upper: float
    volatility: float

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the kappa-scaled bounds."""
        return self.lower <= value <= self.upper


class DensitySeries:
    """An ordered collection of :class:`DensityForecast`.

    Internally columnar: ``t`` / ``mean`` / ``volatility`` / ``lower`` /
    ``upper`` are stored as parallel numpy arrays, so the vectorised views
    and the probability-integral-transform are plain array operations.
    Item access still yields :class:`DensityForecast` objects; for series
    built via :meth:`from_columns` they are materialised lazily.
    """

    def __init__(self, forecasts: Sequence[DensityForecast]) -> None:
        forecasts = list(forecasts)
        n = len(forecasts)
        self._t = np.empty(n, dtype=np.int64)
        self._mean = np.empty(n)
        self._vol = np.empty(n)
        self._lower = np.empty(n)
        self._upper = np.empty(n)
        for index, forecast in enumerate(forecasts):
            self._t[index] = forecast.t
            self._mean[index] = forecast.mean
            self._vol[index] = forecast.volatility
            self._lower[index] = forecast.lower
            self._upper[index] = forecast.upper
        self._check_ordering()
        self._forecasts: list[DensityForecast | None] = forecasts
        self._family: str | None = None
        self._variance: np.ndarray | None = None
        self._gaussian: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_columns(
        cls,
        t: np.ndarray,
        mean: np.ndarray,
        volatility: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        *,
        family: str = "gaussian",
        variance: np.ndarray | None = None,
    ) -> "DensitySeries":
        """Build a series directly from forecast columns (the batch path).

        ``family`` names the distribution every row carries (``"gaussian"``
        or ``"uniform"``); the :class:`DensityForecast` objects — and their
        distributions — are only materialised when individually accessed.
        ``variance`` optionally carries the exact inferred variances so
        Gaussian materialisation does not round-trip through ``sqrt``.
        """
        if family not in ("gaussian", "uniform"):
            raise InvalidParameterError(
                f"unknown forecast family {family!r}; use gaussian or uniform"
            )
        self = cls.__new__(cls)
        self._t = np.ascontiguousarray(t, dtype=np.int64)
        self._mean = np.ascontiguousarray(mean, dtype=float)
        self._vol = np.ascontiguousarray(volatility, dtype=float)
        self._lower = np.ascontiguousarray(lower, dtype=float)
        self._upper = np.ascontiguousarray(upper, dtype=float)
        sizes = {
            arr.size
            for arr in (self._t, self._mean, self._vol, self._lower, self._upper)
        }
        if len(sizes) != 1:
            raise DataError("forecast columns must have equal length")
        self._check_ordering()
        self._forecasts = [None] * self._t.size
        self._family = family
        self._variance = (
            None if variance is None else np.ascontiguousarray(variance, dtype=float)
        )
        self._gaussian = None
        return self

    def _check_ordering(self) -> None:
        if self._t.size > 1 and np.any(np.diff(self._t) <= 0):
            raise DataError("forecasts must be in strictly increasing time order")

    # ------------------------------------------------------------------
    # Lazy materialisation.
    # ------------------------------------------------------------------
    def _materialise(self, index: int) -> DensityForecast:
        forecast = self._forecasts[index]
        if forecast is None:
            if self._family == "uniform":
                distribution: Distribution = Uniform(
                    float(self._lower[index]), float(self._upper[index])
                )
            else:
                variance = (
                    float(self._variance[index])
                    if self._variance is not None
                    else float(self._vol[index]) ** 2
                )
                distribution = Gaussian(float(self._mean[index]), variance)
            forecast = DensityForecast(
                t=int(self._t[index]),
                mean=float(self._mean[index]),
                distribution=distribution,
                lower=float(self._lower[index]),
                upper=float(self._upper[index]),
                volatility=float(self._vol[index]),
            )
            self._forecasts[index] = forecast
        return forecast

    def __len__(self) -> int:
        return self._t.size

    def __iter__(self) -> Iterator[DensityForecast]:
        for index in range(len(self)):
            yield self._materialise(index)

    def __getitem__(
        self, index: int | slice
    ) -> DensityForecast | list[DensityForecast]:
        if isinstance(index, slice):
            return [self._materialise(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._materialise(index)

    # ------------------------------------------------------------------
    # Columnar views.
    # ------------------------------------------------------------------
    @property
    def family(self) -> str | None:
        """Homogeneous distribution family tag, if known.

        ``"gaussian"`` / ``"uniform"`` for series built through
        :meth:`from_columns`; ``None`` for object-built series (which may
        mix families).  Lets columnar consumers (e.g. the binary store)
        skip per-forecast materialisation.
        """
        return self._family

    @property
    def variances(self) -> np.ndarray | None:
        """Exact inferred variances, when carried.

        ``None`` for series that only know ``volatility`` (consumers then
        use ``volatilities ** 2``).  Persisting this column keeps Gaussian
        materialisation free of the ``sqrt``/square round trip.
        """
        if self._variance is None:
            return None
        return readonly_view(self._variance)

    @property
    def times(self) -> np.ndarray:
        """Inference indices as an int array."""
        return readonly_view(self._t)

    @property
    def means(self) -> np.ndarray:
        """Expected true values ``r_hat_t``."""
        return readonly_view(self._mean)

    @property
    def volatilities(self) -> np.ndarray:
        """Inferred standard deviations ``sigma_hat_t``."""
        return readonly_view(self._vol)

    @property
    def lowers(self) -> np.ndarray:
        """kappa-scaled lower bounds."""
        return readonly_view(self._lower)

    @property
    def uppers(self) -> np.ndarray:
        """kappa-scaled upper bounds."""
        return readonly_view(self._upper)

    def gaussian_params(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(mask, mu, sigma)`` columns of the Gaussian rows.

        ``mask[i]`` is true when forecast ``i`` carries a Gaussian density;
        ``mu``/``sigma`` hold its parameters there (undefined elsewhere).
        The Omega-view builder keys its broadcasted CDF path on this.
        Column-backed Gaussian series answer without materialising anything.
        """
        if self._gaussian is None:
            if self._family == "gaussian":
                self._gaussian = (
                    np.ones(len(self), dtype=bool),
                    self._mean,
                    self._vol,
                )
            elif self._family == "uniform":
                self._gaussian = (
                    np.zeros(len(self), dtype=bool),
                    self._mean,
                    self._vol,
                )
            else:
                mask = np.zeros(len(self), dtype=bool)
                mu = np.zeros(len(self))
                sigma = np.ones(len(self))
                for index in range(len(self)):
                    distribution = self._materialise(index).distribution
                    if isinstance(distribution, Gaussian):
                        mask[index] = True
                        mu[index] = distribution.mu
                        sigma[index] = math.sqrt(distribution.sigma2)
                self._gaussian = (mask, mu, sigma)
        return self._gaussian

    # ------------------------------------------------------------------
    # Series-level consumers.
    # ------------------------------------------------------------------
    def pit(self, series: TimeSeries) -> np.ndarray:
        """Probability integral transforms ``z_t = P_t(r_t)`` (Section II-B).

        ``series`` must be the raw series the forecasts were computed on;
        each realised value is pushed through its forecast CDF.  All
        Gaussian forecasts are evaluated in a single vectorised normal-CDF
        call over the column arrays; only non-Gaussian rows fall back to
        per-object CDF evaluation.
        """
        n = len(series)
        out_of_range = self._t >= n
        if np.any(out_of_range):
            bad = int(self._t[int(np.argmax(out_of_range))])
            raise DataError(
                f"forecast for t={bad} has no realised value in a "
                f"series of length {n}"
            )
        realised = series.values[self._t]
        mask, mu, sigma = self.gaussian_params()
        out = np.empty(len(self))
        if np.any(mask):
            out[mask] = gaussian_cdf(realised[mask], mu[mask], sigma[mask])
        for index in np.flatnonzero(~mask):
            forecast = self._materialise(int(index))
            out[index] = forecast.distribution.cdf(realised[index])
        return out

    def coverage(self, series: TimeSeries) -> float:
        """Fraction of realised values inside the kappa-scaled bounds."""
        if not len(self):
            raise DataError("coverage of an empty DensitySeries")
        realised = series.values[self._t]
        hits = np.count_nonzero(
            (self._lower <= realised) & (realised <= self._upper)
        )
        return hits / len(self)


class DynamicDensityMetric(ABC):
    """Base class for every dynamic density metric.

    Subclasses implement :meth:`infer` — one density from one window.  The
    base class provides the rolling :meth:`run` loop shared by experiments,
    the view builder and the pipeline; :meth:`run` stacks the windows and
    delegates to :meth:`infer_batch`, which vectorised metrics override.
    """

    #: Short machine name used by the registry and the SQL METRIC clause.
    name: str = "abstract"

    #: Smallest window the metric can be fit on; subclasses override.
    min_window = 3

    @abstractmethod
    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """Infer ``p_t(R_t)`` from the sliding window ``S^H_{t-1}``."""

    def infer_batch(self, windows: np.ndarray, ts: np.ndarray) -> DensitySeries:
        """Infer one density per row of the ``(T, H)`` window matrix.

        ``ts[i]`` is the inference index of row ``i``.  The base
        implementation loops :meth:`infer` (in time order, so stateful
        warm-start metrics behave exactly as under the legacy loop);
        Gaussian-family metrics override it with fully vectorised
        inference.
        """
        return DensitySeries(
            [self.infer(window, int(t)) for window, t in zip(windows, ts)]
        )

    def run(
        self,
        series: TimeSeries,
        H: int,
        *,
        start: int | None = None,
        stop: int | None = None,
        step: int = 1,
    ) -> DensitySeries:
        """Apply the metric over every window of ``series``.

        ``start``/``stop``/``step`` bound and subsample the inference times,
        mirroring :meth:`TimeSeries.iter_windows`.  All windows are stacked
        into one matrix and dispatched through :meth:`infer_batch`.
        Returns the collected :class:`DensitySeries`.
        """
        if H < self.min_window:
            raise InvalidParameterError(
                f"{type(self).__name__} needs a window of at least "
                f"{self.min_window} values, got H={H}"
            )
        ts = series.window_indices(H, start=start, stop=stop, step=step)
        if ts.size == 0:
            raise DataError(
                f"series of length {len(series)} yields no windows of size {H}"
            )
        # ts is an arithmetic progression, so the window matrix is a plain
        # strided slice of the sliding-window view — zero-copy even for
        # metrics whose infer_batch falls back to the per-row loop.
        all_windows = np.lib.stride_tricks.sliding_window_view(series.values, H)
        windows = all_windows[int(ts[0]) - H : int(ts[-1]) - H + 1 : step]
        return self.infer_batch(windows, ts)
