"""Dynamic density metric interface and rolling application.

Definition 1 of the paper: given a sliding window ``S^H_{t-1}``, a metric
estimates the density ``p_t(R_t)`` of the random variable associated with
the raw value at time ``t``.  :class:`DynamicDensityMetric` captures that
single-step contract; :meth:`DynamicDensityMetric.run` rolls it over a whole
series, producing the :class:`DensitySeries` that the Omega-view builder and
the density-distance evaluation consume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import DataError, InvalidParameterError
from repro.timeseries.series import TimeSeries

__all__ = ["DensityForecast", "DensitySeries", "DynamicDensityMetric"]


@dataclass(frozen=True)
class DensityForecast:
    """The inferred density for one inference time.

    Attributes
    ----------
    t:
        Inference index into the source series.
    mean:
        Expected true value ``r_hat_t`` (Definition 3).
    distribution:
        The full inferred density ``p_t(R_t)``.
    lower, upper:
        kappa-scaled bounds ``r_hat_t -/+ kappa * sigma_hat_t`` from
        Algorithm 1 (equal to the distribution support edges for the
        uniform metric).
    volatility:
        The inferred standard deviation ``sigma_hat_t`` (or the uniform
        equivalent); exposed separately because the sigma-cache keys on it.
    """

    t: int
    mean: float
    distribution: Distribution
    lower: float
    upper: float
    volatility: float

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the kappa-scaled bounds."""
        return self.lower <= value <= self.upper


class DensitySeries:
    """An ordered collection of :class:`DensityForecast`.

    Exposes vectorised views (means, volatilities, inference indices) plus
    the probability-integral-transform against the realised raw values used
    by the density-distance quality measure.
    """

    def __init__(self, forecasts: Sequence[DensityForecast]) -> None:
        self._forecasts = list(forecasts)
        times = [f.t for f in self._forecasts]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise DataError("forecasts must be in strictly increasing time order")

    def __len__(self) -> int:
        return len(self._forecasts)

    def __iter__(self) -> Iterator[DensityForecast]:
        return iter(self._forecasts)

    def __getitem__(self, index: int) -> DensityForecast:
        return self._forecasts[index]

    @property
    def times(self) -> np.ndarray:
        """Inference indices as an int array."""
        return np.array([f.t for f in self._forecasts], dtype=int)

    @property
    def means(self) -> np.ndarray:
        """Expected true values ``r_hat_t``."""
        return np.array([f.mean for f in self._forecasts])

    @property
    def volatilities(self) -> np.ndarray:
        """Inferred standard deviations ``sigma_hat_t``."""
        return np.array([f.volatility for f in self._forecasts])

    def pit(self, series: TimeSeries) -> np.ndarray:
        """Probability integral transforms ``z_t = P_t(r_t)`` (Section II-B).

        ``series`` must be the raw series the forecasts were computed on;
        each realised value is pushed through its forecast CDF.
        """
        out = np.empty(len(self._forecasts))
        n = len(series)
        for index, forecast in enumerate(self._forecasts):
            if forecast.t >= n:
                raise DataError(
                    f"forecast for t={forecast.t} has no realised value in a "
                    f"series of length {n}"
                )
            out[index] = forecast.distribution.cdf(series[forecast.t])
        return out

    def coverage(self, series: TimeSeries) -> float:
        """Fraction of realised values inside the kappa-scaled bounds."""
        if not self._forecasts:
            raise DataError("coverage of an empty DensitySeries")
        hits = sum(f.contains(series[f.t]) for f in self._forecasts)
        return hits / len(self._forecasts)


class DynamicDensityMetric(ABC):
    """Base class for every dynamic density metric.

    Subclasses implement :meth:`infer` — one density from one window.  The
    base class provides the rolling :meth:`run` loop shared by experiments,
    the view builder and the pipeline.
    """

    #: Short machine name used by the registry and the SQL METRIC clause.
    name: str = "abstract"

    #: Smallest window the metric can be fit on; subclasses override.
    min_window = 3

    @abstractmethod
    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """Infer ``p_t(R_t)`` from the sliding window ``S^H_{t-1}``."""

    def run(
        self,
        series: TimeSeries,
        H: int,
        *,
        start: int | None = None,
        stop: int | None = None,
        step: int = 1,
    ) -> DensitySeries:
        """Apply the metric over every window of ``series``.

        ``start``/``stop``/``step`` bound and subsample the inference times,
        mirroring :meth:`TimeSeries.iter_windows`.  Returns the collected
        :class:`DensitySeries`.
        """
        if H < self.min_window:
            raise InvalidParameterError(
                f"{type(self).__name__} needs a window of at least "
                f"{self.min_window} values, got H={H}"
            )
        forecasts = [
            self.infer(window, t)
            for t, window in series.iter_windows(H, start=start, stop=stop, step=step)
        ]
        if not forecasts:
            raise DataError(
                f"series of length {len(series)} yields no windows of size {H}"
            )
        return DensitySeries(forecasts)
