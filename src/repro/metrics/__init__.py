"""Dynamic density metrics (paper Sections III-V).

A *dynamic density metric* infers a time-dependent probability density
``p_t(R_t)`` for each raw value from the sliding window preceding it
(Definition 1).  The four metrics the paper evaluates, plus the C-GARCH
enhancement, live here:

========================  =============================================
Metric                    Density for time ``t``
========================  =============================================
UniformThresholdingMetric ``Uniform(r_hat_t - u, r_hat_t + u)``
VariableThresholdingMetric``N(r_hat_t, s_t^2)`` (window sample variance)
ARMAGARCHMetric           ``N(r_hat_t, sigma_hat_t^2)``, ARMA mean
KalmanGARCHMetric         ``N(r_hat_t, sigma_hat_t^2)``, Kalman mean
CGARCHMetric              ARMA-GARCH on *cleaned* values (Section V)
========================  =============================================
"""

from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.base import DensityForecast, DensitySeries, DynamicDensityMetric
from repro.metrics.cgarch import CGARCHMetric, CGARCHReport
from repro.metrics.kalman_garch import KalmanGARCHMetric
from repro.metrics.registry import available_metrics, create_metric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric

__all__ = [
    "ARMAGARCHMetric",
    "CGARCHMetric",
    "CGARCHReport",
    "DensityForecast",
    "DensitySeries",
    "DynamicDensityMetric",
    "KalmanGARCHMetric",
    "UniformThresholdingMetric",
    "VariableThresholdingMetric",
    "available_metrics",
    "create_metric",
]
