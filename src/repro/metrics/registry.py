"""Name-based metric construction.

The SQL-like view language (``METRIC arma_garch (p=1, kappa=3)``) and the
experiment harness refer to metrics by short name; this registry maps those
names to constructors.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.exceptions import InvalidParameterError
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.base import DynamicDensityMetric
from repro.metrics.cgarch import CGARCHMetric
from repro.metrics.ewma import EWMAMetric
from repro.metrics.kalman_garch import KalmanGARCHMetric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric

__all__ = ["available_metrics", "create_metric", "register_metric"]

_REGISTRY: dict[str, Callable[..., DynamicDensityMetric]] = {
    UniformThresholdingMetric.name: UniformThresholdingMetric,
    VariableThresholdingMetric.name: VariableThresholdingMetric,
    ARMAGARCHMetric.name: ARMAGARCHMetric,
    KalmanGARCHMetric.name: KalmanGARCHMetric,
    CGARCHMetric.name: CGARCHMetric,
    EWMAMetric.name: EWMAMetric,
}

#: Aliases accepted by the SQL layer for readability.
_ALIASES = {
    "ut": UniformThresholdingMetric.name,
    "vt": VariableThresholdingMetric.name,
    "garch": ARMAGARCHMetric.name,
    "c-garch": CGARCHMetric.name,
}


def available_metrics() -> tuple[str, ...]:
    """Names accepted by :func:`create_metric`, canonical ones first."""
    return tuple(_REGISTRY) + tuple(_ALIASES)


def register_metric(name: str, factory: Callable[..., DynamicDensityMetric]) -> None:
    """Register a custom metric under ``name`` (overwrites silently).

    Allows downstream users to plug their own density metric into the SQL
    layer and pipeline without modifying this package.
    """
    _REGISTRY[name.lower()] = factory


def create_metric(name: str, **kwargs: Any) -> DynamicDensityMetric:
    """Instantiate the metric registered under ``name``.

    >>> create_metric("arma_garch", p=2).p
    2
    >>> create_metric("ut", threshold=0.5).threshold
    0.5
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    factory = _REGISTRY.get(key)
    if factory is None:
        raise InvalidParameterError(
            f"unknown metric {name!r}; available: {', '.join(available_metrics())}"
        )
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise InvalidParameterError(
            f"invalid parameters for metric {name!r}: {exc}"
        ) from exc
