"""Kalman-GARCH dynamic density metric (paper Section IV).

Identical to :class:`~repro.metrics.arma_garch.ARMAGARCHMetric` except that
the expected true value ``r_hat_t`` comes from the local-level Kalman filter
of eqs. (7)-(8), whose parameters are estimated by EM on each window.  The
GARCH stage consumes the filter's one-step prediction errors
``a_i = r_i - r_hat_i`` exactly as the paper prescribes.

The EM loop makes this metric 5-19x slower than ARMA-GARCH in the paper's
Fig. 11; the ``em_max_iter`` knob trades that cost against mean-estimate
quality and is exercised by the efficiency benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.gaussian import Gaussian
from repro.exceptions import EstimationError, InvalidParameterError
from repro.metrics.base import (
    DensityForecast,
    DynamicDensityMetric,
    variance_floor,
)
from repro.timeseries.garch import GARCHModel
from repro.timeseries.kalman import KalmanFilter
from repro.util.validation import require_positive

__all__ = ["KalmanGARCHMetric"]


class KalmanGARCHMetric(DynamicDensityMetric):
    """Kalman-filter mean + GARCH volatility.

    Parameters
    ----------
    m, s:
        GARCH orders (paper uses (1, 1)).
    kappa:
        Bound scaling factor (paper uses 3).
    em_max_iter:
        Maximum EM iterations per window for the Kalman variances.
    c1, c2:
        The state/observation constants of eqs. (7)-(8).
    """

    name = "kalman_garch"

    def __init__(
        self,
        m: int = 1,
        s: int = 1,
        kappa: float = 3.0,
        em_max_iter: int = 30,
        c1: float = 1.0,
        c2: float = 1.0,
    ) -> None:
        if em_max_iter < 1:
            raise InvalidParameterError(
                f"em_max_iter must be >= 1, got {em_max_iter}"
            )
        self.m = int(m)
        self.s = int(s)
        self.kappa = require_positive("kappa", kappa, strict=False)
        self.em_max_iter = int(em_max_iter)
        self.c1 = float(c1)
        self.c2 = float(c2)
        self.min_window = max(max(self.m, self.s) + 2, 4)

    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """EM-fit the Kalman filter, then GARCH on its prediction errors."""
        kalman = KalmanFilter().fit_em(
            window, c1=self.c1, c2=self.c2, max_iter=self.em_max_iter
        )
        mean = kalman.predict_next()
        residuals = window - kalman.fitted_means()
        # The first prediction error reflects the diffuse prior, not the
        # dynamics; drop it before volatility estimation.
        variance = self._garch_variance(residuals[1:], variance_floor(window))
        distribution = Gaussian(mean, variance)
        sigma = distribution.std()
        return DensityForecast(
            t=t,
            mean=mean,
            distribution=distribution,
            lower=mean - self.kappa * sigma,
            upper=mean + self.kappa * sigma,
            volatility=sigma,
        )

    def _garch_variance(self, residuals: np.ndarray, floor: float) -> float:
        try:
            garch = GARCHModel(self.m, self.s).fit(residuals)
            return max(garch.forecast_variance(), floor)
        except EstimationError:
            return max(float(np.var(residuals)), floor)

    def __repr__(self) -> str:
        return (
            f"KalmanGARCHMetric(m={self.m}, s={self.s}, kappa={self.kappa}, "
            f"em_max_iter={self.em_max_iter})"
        )
