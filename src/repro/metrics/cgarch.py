"""C-GARCH: the Clean-GARCH enhancement (paper Section V).

Plain ARMA-GARCH blows up on erroneous values: one spike in the training
window inflates the squared terms of eq. (5) and the inferred volatility
explodes for many subsequent steps (paper Fig. 5a).  C-GARCH wraps
ARMA-GARCH with an *online* cleaning protocol:

1. Run ARMA-GARCH with kappa = 3 bounds on the cleaned window.
2. If the incoming raw value falls outside ``[lb, ub]`` mark it erroneous
   and replace it with the inferred value ``r_hat_t``.
3. Track the run of consecutive replacements; once it reaches ``oc_max``
   the values were evidently a genuine *trend change*, not errors: restore
   the raw values, pass them through the Successive Variance Reduction
   filter (to drop any true outliers hiding in the span) and re-adjust.

``SVmax`` is learned from a clean sample as the maximum dispersion observed
over windows of size ``oc_max`` (Section V-B); ``oc_max`` itself should be
about twice the longest expected error burst (paper guideline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cleaning.svr_filter import learn_sv_max, successive_variance_reduction
from repro.exceptions import InvalidParameterError
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.base import DensityForecast, DensitySeries, DynamicDensityMetric
from repro.timeseries.series import TimeSeries

__all__ = ["CGARCHMetric", "CGARCHReport"]


@dataclass(frozen=True)
class CGARCHReport:
    """Diagnostics from one C-GARCH pass.

    Attributes
    ----------
    flagged:
        Indices the metric finally considers erroneous (replaced values that
        were not re-admitted by a trend change, plus values the SVR filter
        deleted during re-adjustment).
    trend_changes:
        Indices where an ``oc_max``-long run of out-of-bound values was
        re-classified as a genuine trend change.
    cleaned:
        The full cleaned value array (same length as the input series).
    sv_max:
        The dispersion threshold used (given or learned).
    """

    flagged: tuple[int, ...]
    trend_changes: tuple[int, ...]
    cleaned: np.ndarray
    sv_max: float

    @property
    def n_flagged(self) -> int:
        return len(self.flagged)

    def capture_rate(self, true_error_indices: np.ndarray) -> float:
        """Fraction of ``true_error_indices`` the metric flagged.

        This is the "% erroneous values successfully detected" measure of
        the paper's Fig. 13(a).
        """
        truth = set(int(i) for i in np.asarray(true_error_indices).ravel())
        if not truth:
            raise InvalidParameterError("true_error_indices must be non-empty")
        flagged = set(self.flagged)
        return len(truth & flagged) / len(truth)


class CGARCHMetric(DynamicDensityMetric):
    """Clean-GARCH dynamic density metric.

    Parameters
    ----------
    p, q, m, s, kappa:
        Passed through to the underlying :class:`ARMAGARCHMetric`; the paper
        fixes ``kappa = 3`` so that a value outside the bounds is erroneous
        with probability ~0.27%.
    oc_max:
        Length of an out-of-bound run that is re-interpreted as a trend
        change (paper uses 7-8).
    sv_max:
        Dispersion threshold for the SVR filter.  ``None`` (default) learns
        it from the warm-up window via :func:`learn_sv_max`, assuming the
        first ``H`` values are clean — the paper's "sample of clean data".

    Use :meth:`run_with_report` to obtain the cleaning diagnostics; the
    plain :meth:`run` keeps the :class:`DynamicDensityMetric` contract.
    """

    name = "cgarch"

    def __init__(
        self,
        p: int = 1,
        q: int = 0,
        m: int = 1,
        s: int = 1,
        kappa: float = 3.0,
        oc_max: int = 8,
        sv_max: float | None = None,
    ) -> None:
        if oc_max < 2:
            raise InvalidParameterError(f"oc_max must be >= 2, got {oc_max}")
        if sv_max is not None and sv_max < 0:
            raise InvalidParameterError(f"sv_max must be >= 0, got {sv_max}")
        self.base = ARMAGARCHMetric(p=p, q=q, m=m, s=s, kappa=kappa)
        self.oc_max = int(oc_max)
        self.sv_max = sv_max
        self.min_window = max(self.base.min_window, self.oc_max + 1)

    # ------------------------------------------------------------------
    # Single-window inference: identical to ARMA-GARCH (the cleaning logic
    # lives in the rolling pass, which controls what enters the window).
    # ------------------------------------------------------------------
    def infer(self, window: np.ndarray, t: int) -> DensityForecast:
        """ARMA-GARCH inference on an (assumed clean) window."""
        return self.base.infer(window, t)

    # ------------------------------------------------------------------
    # Rolling pass with online cleaning.
    # ------------------------------------------------------------------
    def run(
        self,
        series: TimeSeries,
        H: int,
        *,
        start: int | None = None,
        stop: int | None = None,
        step: int = 1,
    ) -> DensitySeries:
        """Rolling C-GARCH; see :meth:`run_with_report` for diagnostics.

        The cleaning protocol is sequential, so ``step`` must be 1 and
        ``start`` cannot skip past the first full window.
        """
        forecasts, _report = self.run_with_report(series, H, stop=stop)
        if step != 1 or (start is not None and start > H):
            raise InvalidParameterError(
                "C-GARCH is an online sequential procedure: start/step "
                "subsampling would break its cleaning state"
            )
        return forecasts

    def run_with_report(
        self, series: TimeSeries, H: int, *, stop: int | None = None
    ) -> tuple[DensitySeries, CGARCHReport]:
        """Run the full Section V protocol; returns forecasts + diagnostics."""
        if H < self.min_window:
            raise InvalidParameterError(
                f"C-GARCH needs a window of at least {self.min_window} "
                f"values, got H={H}"
            )
        raw = series.values
        last = len(series) if stop is None else min(stop, len(series))
        if last <= H:
            raise InvalidParameterError(
                f"series of length {len(series)} yields no inference times "
                f"for H={H}"
            )
        cleaned = raw[:last].copy()
        sv_max = self.sv_max
        if sv_max is None:
            sv_max = learn_sv_max(cleaned[:H], self.oc_max)
        flagged: set[int] = set()
        trend_changes: list[int] = []
        consecutive = 0
        forecasts: list[DensityForecast] = []
        for t in range(H, last):
            forecast = self.base.infer(cleaned[t - H : t], t)
            forecasts.append(forecast)
            value = raw[t]
            if forecast.lower <= value <= forecast.upper:
                consecutive = 0
                continue
            consecutive += 1
            if consecutive < self.oc_max:
                flagged.add(t)
                cleaned[t] = forecast.mean  # Replace with the inferred value.
                continue
            # oc_max consecutive out-of-bound values: genuine trend change.
            trend_changes.append(t)
            span_start = t - self.oc_max + 1
            cleaned[span_start : t + 1] = raw[span_start : t + 1]
            flagged.difference_update(range(span_start, t + 1))
            # Rule out true outliers hiding inside the restored span.
            result = successive_variance_reduction(
                cleaned[span_start : t + 1], sv_max
            )
            cleaned[span_start : t + 1] = result.cleaned
            flagged.update(span_start + k for k in result.removed_indices)
            consecutive = 0
        report = CGARCHReport(
            flagged=tuple(sorted(flagged)),
            trend_changes=tuple(trend_changes),
            cleaned=cleaned,
            sv_max=float(sv_max),
        )
        return DensitySeries(forecasts), report

    @staticmethod
    def learn_sv_max(clean_values: np.ndarray, oc_max: int) -> float:
        """Expose :func:`repro.cleaning.learn_sv_max` on the metric class."""
        return learn_sv_max(clean_values, oc_max)

    def __repr__(self) -> str:
        return (
            f"CGARCHMetric(base={self.base!r}, oc_max={self.oc_max}, "
            f"sv_max={self.sv_max})"
        )
