"""End-to-end pipelines: raw series in, probabilistic view out.

The paper's framework runs in two modes (Section II-A):

* **offline** — a user issues a view-generation query over stored raw
  values; :func:`create_probabilistic_view` is the programmatic equivalent
  (the SQL path lives in :class:`repro.db.engine.Database`).
* **online** — densities are inferred as each value streams in;
  :class:`OnlinePipeline` maintains the sliding window, feeds the metric,
  and emits one probability row per arrival once warm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import InvalidParameterError
from repro.metrics.base import DensityForecast, DensitySeries, DynamicDensityMetric
from repro.timeseries.series import TimeSeries
from repro.view.builder import ProbabilityRow, ViewBuilder
from repro.view.omega import OmegaGrid
from repro.view.sigma_cache import SigmaCache

__all__ = ["OnlinePipeline", "OnlineStep", "create_probabilistic_view"]


def create_probabilistic_view(
    series: TimeSeries,
    metric: DynamicDensityMetric,
    H: int,
    grid: OmegaGrid,
    *,
    view_name: str = "prob_view",
    distance_constraint: float | None = None,
    memory_constraint: int | None = None,
    step: int = 1,
) -> ProbabilisticView:
    """Offline mode in one call: metric -> builder (-> cache) -> view.

    When either cache constraint is given, a sigma-cache is sized from the
    forecasts' volatility extremes and used for row generation.

    >>> from repro.data import campus_temperature
    >>> from repro.metrics import ARMAGARCHMetric
    >>> view = create_probabilistic_view(
    ...     campus_temperature(600, rng=0), ARMAGARCHMetric(), H=60,
    ...     grid=OmegaGrid(delta=0.5, n=10), step=10)
    >>> len(view) > 0
    True
    """
    forecasts = metric.run(series, H, step=step)
    builder = ViewBuilder(grid)
    if distance_constraint is not None or memory_constraint is not None:
        builder = builder.with_cache_for(
            forecasts,
            distance_constraint=distance_constraint,
            memory_constraint=memory_constraint,
        )
    matrix = builder.build_matrix(forecasts)
    return ProbabilisticView.from_matrix(view_name, matrix, grid)


@dataclass(frozen=True)
class OnlineStep:
    """What the online pipeline emits for one streamed value.

    ``forecast``/``row`` are ``None`` during the warm-up phase while the
    sliding window is still filling.
    """

    t: int
    value: float
    forecast: DensityForecast | None
    row: ProbabilityRow | None

    @property
    def is_warmup(self) -> bool:
        return self.forecast is None


class OnlinePipeline:
    """Streaming density inference and view generation (online mode).

    Parameters
    ----------
    metric:
        Any dynamic density metric.  Note that C-GARCH's cleaning protocol
        replaces window values; for streaming use its forecasts equal plain
        ARMA-GARCH on the values this pipeline retains.
    H:
        Sliding-window size.
    grid:
        Omega view parameters for row generation.
    cache:
        Optional pre-sized :class:`SigmaCache` (online mode cannot size the
        cache from a WHERE clause, so the caller provides expected sigma
        extremes).

    Examples
    --------
    >>> from repro.metrics import VariableThresholdingMetric
    >>> pipe = OnlinePipeline(VariableThresholdingMetric(), H=30,
    ...                       grid=OmegaGrid(delta=0.5, n=6))
    >>> steps = [pipe.feed(20.0 + 0.01 * i) for i in range(40)]
    >>> steps[10].is_warmup, steps[35].is_warmup
    (True, False)
    """

    def __init__(
        self,
        metric: DynamicDensityMetric,
        H: int,
        grid: OmegaGrid,
        cache: SigmaCache | None = None,
    ) -> None:
        if H < metric.min_window:
            raise InvalidParameterError(
                f"H={H} is below the metric's minimum window "
                f"{metric.min_window}"
            )
        self.metric = metric
        self.H = int(H)
        self.builder = ViewBuilder(grid, cache)
        self._window: deque[float] = deque(maxlen=self.H)
        self._t = 0
        self._rows: list[ProbabilityRow] = []
        self._forecasts: list[DensityForecast] = []

    def feed(self, value: float) -> OnlineStep:
        """Consume one raw value; emit the inferred density and row.

        The forecast for time ``t`` is computed from the ``H`` values
        *before* ``t`` (Definition 1), so inference happens before the new
        value enters the window.
        """
        t = self._t
        forecast: DensityForecast | None = None
        row: ProbabilityRow | None = None
        if len(self._window) == self.H:
            forecast = self.metric.infer(np.array(self._window), t)
            row = self.builder.build_row(forecast)
            self._forecasts.append(forecast)
            self._rows.append(row)
        self._window.append(float(value))
        self._t += 1
        return OnlineStep(t=t, value=float(value), forecast=forecast, row=row)

    @property
    def t(self) -> int:
        """Index the next fed value will receive."""
        return self._t

    def forecasts(self) -> DensitySeries:
        """All non-warm-up forecasts emitted so far."""
        return DensitySeries(self._forecasts)

    def to_view(self, name: str = "prob_view") -> ProbabilisticView:
        """Materialise everything emitted so far as a probabilistic view."""
        return ProbabilisticView.from_rows(name, self._rows, self.builder.grid)
