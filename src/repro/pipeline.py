"""End-to-end pipelines: raw series in, probabilistic view out.

The paper's framework runs in two modes (Section II-A):

* **offline** — a user issues a view-generation query over stored raw
  values; :func:`create_probabilistic_view` is the programmatic equivalent
  (the SQL path lives in :class:`repro.db.engine.Database`).
* **online** — densities are inferred as each value streams in;
  :class:`OnlinePipeline` maintains the sliding window, feeds the metric,
  and emits one probability row per arrival once warm.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import InvalidParameterError
from repro.metrics.base import DensityForecast, DensitySeries, DynamicDensityMetric
from repro.timeseries.series import TimeSeries
from repro.view.builder import ProbabilityMatrix, ProbabilityRow, ViewBuilder
from repro.view.omega import OmegaGrid
from repro.view.sigma_cache import SigmaCache

__all__ = ["OnlinePipeline", "OnlineStep", "create_probabilistic_view"]


def create_probabilistic_view(
    series: TimeSeries,
    metric: DynamicDensityMetric,
    H: int,
    grid: OmegaGrid,
    *,
    view_name: str = "prob_view",
    distance_constraint: float | None = None,
    memory_constraint: int | None = None,
    step: int = 1,
) -> ProbabilisticView:
    """Offline mode in one call: metric -> builder (-> cache) -> view.

    When either cache constraint is given, a sigma-cache is sized from the
    forecasts' volatility extremes and used for row generation.

    >>> from repro.data import campus_temperature
    >>> from repro.metrics import ARMAGARCHMetric
    >>> view = create_probabilistic_view(
    ...     campus_temperature(600, rng=0), ARMAGARCHMetric(), H=60,
    ...     grid=OmegaGrid(delta=0.5, n=10), step=10)
    >>> len(view) > 0
    True
    """
    forecasts = metric.run(series, H, step=step)
    builder = ViewBuilder(grid)
    if distance_constraint is not None or memory_constraint is not None:
        builder = builder.with_cache_for(
            forecasts,
            distance_constraint=distance_constraint,
            memory_constraint=memory_constraint,
        )
    matrix = builder.build_matrix(forecasts)
    return ProbabilisticView.from_matrix(view_name, matrix, grid)


@dataclass(frozen=True)
class OnlineStep:
    """What the online pipeline emits for one streamed value.

    ``forecast``/``row`` are ``None`` during the warm-up phase while the
    sliding window is still filling.
    """

    t: int
    value: float
    forecast: DensityForecast | None
    row: ProbabilityRow | None

    @property
    def is_warmup(self) -> bool:
        return self.forecast is None


class OnlinePipeline:
    """Streaming density inference and view generation (online mode).

    Parameters
    ----------
    metric:
        Any dynamic density metric.  Note that C-GARCH's cleaning protocol
        replaces window values; for streaming use its forecasts equal plain
        ARMA-GARCH on the values this pipeline retains.
    H:
        Sliding-window size.
    grid:
        Omega view parameters for row generation.
    cache:
        Optional pre-sized :class:`SigmaCache` (online mode cannot size the
        cache from a WHERE clause, so the caller provides expected sigma
        extremes).
    retain_history:
        When true (default), every emitted forecast and probability row is
        kept so :meth:`to_view` / :meth:`forecasts` can materialise the full
        run.  Long-lived ingestion services (:mod:`repro.store`) persist the
        rows themselves and disable retention to keep memory flat.

    Examples
    --------
    >>> from repro.metrics import VariableThresholdingMetric
    >>> pipe = OnlinePipeline(VariableThresholdingMetric(), H=30,
    ...                       grid=OmegaGrid(delta=0.5, n=6))
    >>> steps = [pipe.feed(20.0 + 0.01 * i) for i in range(40)]
    >>> steps[10].is_warmup, steps[35].is_warmup
    (True, False)
    """

    def __init__(
        self,
        metric: DynamicDensityMetric,
        H: int,
        grid: OmegaGrid,
        cache: SigmaCache | None = None,
        *,
        retain_history: bool = True,
    ) -> None:
        if H < metric.min_window:
            raise InvalidParameterError(
                f"H={H} is below the metric's minimum window "
                f"{metric.min_window}"
            )
        self.metric = metric
        self.H = int(H)
        self.builder = ViewBuilder(grid, cache)
        self.retain_history = bool(retain_history)
        self._window: deque[float] = deque(maxlen=self.H)
        self._t = 0
        self._rows: list[ProbabilityRow] = []
        self._forecasts: list[DensityForecast] = []

    def feed(self, value: float) -> OnlineStep:
        """Consume one raw value; emit the inferred density and row.

        The forecast for time ``t`` is computed from the ``H`` values
        *before* ``t`` (Definition 1), so inference happens before the new
        value enters the window.
        """
        t = self._t
        forecast: DensityForecast | None = None
        row: ProbabilityRow | None = None
        if len(self._window) == self.H:
            forecast = self.metric.infer(np.array(self._window), t)
            row = self.builder.build_row(forecast)
            if self.retain_history:
                self._forecasts.append(forecast)
                self._rows.append(row)
        self._window.append(float(value))
        self._t += 1
        return OnlineStep(t=t, value=float(value), forecast=forecast, row=row)

    def feed_batch(self, values: Sequence[float] | np.ndarray) -> ProbabilityMatrix:
        """Consume a micro-batch of raw values through the batch data path.

        Equivalent to calling :meth:`feed` once per value, but the warm
        inference times are stacked into one window matrix and dispatched
        through :meth:`DynamicDensityMetric.infer_batch` +
        :meth:`ViewBuilder.build_matrix` — the same vectorised path offline
        mode uses, so cost scales with the batch, not with everything fed
        so far.  Returns the probability matrix of the newly emitted rows
        (empty while the window is still warming up).
        """
        values = np.ascontiguousarray(values, dtype=float)
        if values.ndim != 1:
            raise InvalidParameterError(
                f"feed_batch expects a 1-d value array, got shape {values.shape}"
            )
        start_t = self._t
        held = len(self._window)
        matrix = self._empty_matrix()
        if values.size:
            # Local offsets of values whose preceding window is full: value
            # i (global time start_t + i) is warm once held + i >= H.
            first_warm = max(self.H - held, 0)
            if first_warm < values.size:
                history = np.concatenate([np.array(self._window), values])
                windows = np.lib.stride_tricks.sliding_window_view(
                    history, self.H
                )[first_warm + held - self.H : values.size + held - self.H]
                ts = start_t + np.arange(first_warm, values.size, dtype=np.int64)
                forecasts = self.metric.infer_batch(windows, ts)
                matrix = self.builder.build_matrix(forecasts)
                if self.retain_history:
                    self._forecasts.extend(forecasts)
                    self._rows.extend(matrix.rows())
            self._window.extend(values.tolist())
            self._t += int(values.size)
        return matrix

    def _empty_matrix(self) -> ProbabilityMatrix:
        return ProbabilityMatrix(
            t=np.empty(0, dtype=np.int64),
            mean=np.empty(0),
            volatility=np.empty(0),
            probabilities=np.empty((0, self.builder.grid.n)),
        )

    @property
    def t(self) -> int:
        """Index the next fed value will receive."""
        return self._t

    @property
    def window_values(self) -> np.ndarray:
        """Copy of the current sliding-window contents (oldest first)."""
        return np.array(self._window)

    def load_state(self, window_values: Sequence[float] | np.ndarray, next_t: int) -> None:
        """Restore the streaming position of a previous pipeline.

        ``window_values`` are the most recent raw values (oldest first, at
        most ``H`` of them) and ``next_t`` the index the next fed value
        should receive — exactly what :attr:`window_values` / :attr:`t`
        exposed when the state was captured.  Used by the persistent
        catalog to resume ingestion after a restart; emitted history is not
        restored (the catalog's segments already hold it).
        """
        window_values = np.ascontiguousarray(window_values, dtype=float)
        if window_values.ndim != 1:
            raise InvalidParameterError(
                f"window state must be a 1-d array, got shape "
                f"{window_values.shape}"
            )
        next_t = int(next_t)
        if next_t < 0:
            raise InvalidParameterError(f"next_t must be >= 0, got {next_t}")
        # A pipeline that consumed next_t values holds exactly
        # min(next_t, H) of them; anything else would silently re-enter
        # warm-up (undersized) or replay values (oversized) and emit a
        # gapped or shifted time range.
        expected = min(next_t, self.H)
        if window_values.size != expected:
            raise InvalidParameterError(
                f"window state carries {window_values.size} values; a "
                f"pipeline at next_t={next_t} with H={self.H} must carry "
                f"{expected}"
            )
        self._window.clear()
        self._window.extend(window_values.tolist())
        self._t = next_t
        # Emitted history is not restored (and any retained rows describe a
        # different stream position), so retention starts over.
        self._rows.clear()
        self._forecasts.clear()

    def forecasts(self) -> DensitySeries:
        """All non-warm-up forecasts emitted so far."""
        self._require_history("forecasts")
        return DensitySeries(self._forecasts)

    def to_view(self, name: str = "prob_view") -> ProbabilisticView:
        """Materialise everything emitted so far as a probabilistic view."""
        self._require_history("to_view")
        return ProbabilisticView.from_rows(name, self._rows, self.builder.grid)

    def _require_history(self, what: str) -> None:
        if not self.retain_history:
            raise InvalidParameterError(
                f"{what}() needs retain_history=True; this pipeline was "
                "created with retention disabled"
            )
