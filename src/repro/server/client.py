"""Blocking client for the catalog query server.

A thin, dependency-free wrapper over one TCP connection speaking the
NDJSON protocol (:mod:`repro.server.protocol`).  Engine-side failures
surface as :class:`ServerError` carrying the structured ``error.type``;
transport failures surface as :class:`ServerConnectionError`.  The client
is deliberately synchronous — it is what scripts, the CLI, and the load
generator use; async callers can speak the one-line protocol directly.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.exceptions import ReproError
from repro.server import protocol
from repro.server.app import DEFAULT_HOST, DEFAULT_PORT

__all__ = ["Client", "ServerConnectionError", "ServerError"]


class ServerError(ReproError):
    """The server answered ``ok: false``; mirrors the wire error object."""

    def __init__(self, error: dict[str, Any]) -> None:
        self.type = str(error.get("type", "internal"))
        self.message = str(error.get("message", ""))
        super().__init__(f"{self.type}: {self.message}")

    @property
    def retryable(self) -> bool:
        """Whether backing off and retrying can succeed."""
        return self.type in ("saturated", "shutting_down")


class ServerConnectionError(ReproError, ConnectionError):
    """The connection failed or closed before a response arrived."""


class Client:
    """One blocking connection to a :class:`~repro.server.app.QueryServer`.

    Examples
    --------
    >>> # with Client("127.0.0.1", 7411) as client:
    >>> #     result = client.query(
    >>> #         "SELECT exceedance(21.0) FROM CATALOG '/data/cat'")
    >>> #     result["results"][0]["series"]
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
    ) -> None:
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ServerConnectionError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Wire round-trips.
    # ------------------------------------------------------------------
    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one frame, read one response frame (low-level)."""
        try:
            self._file.write(protocol.encode_frame(payload))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ServerConnectionError(
                f"connection lost mid-request: {exc}"
            ) from exc
        if not line:
            raise ServerConnectionError(
                "server closed the connection before responding"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServerConnectionError(
                f"unparseable response frame: {exc}"
            ) from exc
        if not isinstance(response, dict):
            raise ServerConnectionError("response frame is not an object")
        return response

    def _roundtrip(self, payload: dict[str, Any]) -> dict[str, Any]:
        self._next_id += 1
        payload.setdefault("id", self._next_id)
        response = self.request(payload)
        if not response.get("ok"):
            raise ServerError(response.get("error") or {})
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    def query(self, statement: str) -> dict[str, Any]:
        """Execute one statement; the serialized result on success.

        Raises :class:`ServerError` (with the structured ``type``) when
        the server rejects or fails the statement.
        """
        return self._roundtrip({"statement": statement})

    def ping(self) -> bool:
        return self._roundtrip({"op": "ping"}).get("kind") == "pong"

    def stats(self) -> dict[str, Any]:
        """The server's lifetime counters (admissions, coalescing, cache)."""
        return self._roundtrip({"op": "stats"})

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
