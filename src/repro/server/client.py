"""Blocking client for the catalog query server.

A thin, dependency-free wrapper over one TCP connection speaking the
NDJSON protocol (:mod:`repro.server.protocol`).  Engine-side failures
surface as :class:`ServerError` carrying the structured ``error.type``;
transport failures surface as :class:`ServerConnectionError`.  The client
is deliberately synchronous — it is what scripts, the CLI, and the load
generator use; async callers can speak the one-line protocol directly.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.exceptions import ReproError
from repro.server import protocol
from repro.server.app import DEFAULT_HOST, DEFAULT_PORT

__all__ = ["Client", "ServerConnectionError", "ServerError"]


def _inject_as_of(statement: str, as_of: int) -> str:
    """Rewrite ``statement`` to carry ``AS OF as_of``, or raise.

    Deferred import: the client stays importable without pulling the
    grammar until an ``as_of`` rewrite is actually requested.
    """
    from repro.view.sql import with_as_of

    return with_as_of(statement, as_of)


class ServerError(ReproError):
    """The server answered ``ok: false``; mirrors the wire error object."""

    def __init__(self, error: dict[str, Any]) -> None:
        self.type = str(error.get("type", "internal"))
        self.message = str(error.get("message", ""))
        super().__init__(f"{self.type}: {self.message}")

    @property
    def retryable(self) -> bool:
        """Whether backing off and retrying can succeed."""
        return self.type in ("saturated", "shutting_down")


class ServerConnectionError(ReproError, ConnectionError):
    """The connection failed or closed before a response arrived."""


class Client:
    """One blocking connection to a :class:`~repro.server.app.QueryServer`.

    Examples
    --------
    >>> # with Client("127.0.0.1", 7411) as client:
    >>> #     result = client.query(
    >>> #         "SELECT exceedance(21.0) FROM CATALOG '/data/cat'")
    >>> #     result["results"][0]["series"]
    >>> #     worlds = client.query(
    >>> #         "SIMULATE 8 SEED 42 FROM CATALOG '/data/cat'")
    >>> #     worlds["results"][0]["worlds"][0][:3]   # kind: "simulate"
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
    ) -> None:
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ServerConnectionError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Wire round-trips.
    # ------------------------------------------------------------------
    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one frame, read one response frame (low-level)."""
        try:
            self._file.write(protocol.encode_frame(payload))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ServerConnectionError(
                f"connection lost mid-request: {exc}"
            ) from exc
        if not line:
            raise ServerConnectionError(
                "server closed the connection before responding"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServerConnectionError(
                f"unparseable response frame: {exc}"
            ) from exc
        if not isinstance(response, dict):
            raise ServerConnectionError("response frame is not an object")
        return response

    def _roundtrip(self, payload: dict[str, Any]) -> dict[str, Any]:
        self._next_id += 1
        payload.setdefault("id", self._next_id)
        response = self.request(payload)
        if not response.get("ok"):
            raise ServerError(response.get("error") or {})
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    def query(
        self,
        statement: str,
        *,
        trace: bool = False,
        as_of: int | None = None,
    ) -> dict[str, Any]:
        """Execute one statement; the serialized result on success.

        ``trace=True`` asks the server to attach its per-stage trace
        block (parse → plan → prune → fan-out → serialize, plus the
        slowest per-series spans) to the result under ``"trace"``.

        ``as_of`` rewrites the statement with an ``AS OF
        <knowledge_time>`` clause before it goes on the wire, so the
        server (and its coalescing, which keys on statement text) sees a
        plain dialect statement — a statement that already carries a
        *different* ``AS OF`` clause is rejected rather than silently
        overridden.  Only SELECT / SIMULATE accept the clause.

        Raises :class:`ServerError` (with the structured ``type``) when
        the server rejects or fails the statement.
        """
        if as_of is not None:
            statement = _inject_as_of(statement, as_of)
        payload: dict[str, Any] = {"statement": statement}
        if trace:
            payload["trace"] = True
        return self._roundtrip(payload)

    def ping(self) -> bool:
        return self._roundtrip({"op": "ping"}).get("kind") == "pong"

    def stats(self) -> dict[str, Any]:
        """The server's lifetime counters (admissions, coalescing, cache).

        Protocol framing (the ``kind`` discriminator) is stripped: the
        returned dict holds only the counters and blocks themselves.
        """
        payload = self._roundtrip({"op": "stats"})
        payload.pop("kind", None)
        return payload

    def metrics(self) -> dict[str, Any]:
        """The server's metrics registry: Prometheus text + JSON snapshot.

        Returns ``{"text": <exposition>, "metrics": {<name>: ...}}`` —
        ``text`` is ready to re-serve to a Prometheus scraper; the JSON
        snapshot carries streaming p50/p95/p99 per histogram.
        """
        payload = self._roundtrip({"op": "metrics"})
        payload.pop("kind", None)
        return payload

    def slowlog(self, limit: int | None = None) -> dict[str, Any]:
        """The server's slow-query log, newest first.

        Returns the threshold, lifetime observed/recorded counts, and up
        to ``limit`` entries (each with statement, wall time, stage
        breakdown, and cache hit/miss counts).
        """
        payload: dict[str, Any] = {"op": "slowlog"}
        if limit is not None:
            payload["limit"] = int(limit)
        response = self._roundtrip(payload)
        response.pop("kind", None)
        return response

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
