"""Network query serving for persistent catalogs.

The layer that turns the catalog-wide query engine (:mod:`repro.service`)
into a long-running *server*: an asyncio TCP front speaking a newline-
delimited JSON protocol, with request coalescing, admission control, and
graceful draining shutdown — plus the blocking :class:`Client` and the
:class:`ServerThread` embedding helper.

* :mod:`repro.server.protocol` — wire frames, error taxonomy, canonical
  (bit-deterministic) result serialisation;
* :mod:`repro.server.app` — the :class:`QueryServer` event loop;
* :mod:`repro.server.client` — the blocking client.
"""

from repro.server.app import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    QueryServer,
    ServerStats,
    ServerThread,
)
from repro.server.client import Client, ServerConnectionError, ServerError
from repro.server.protocol import (
    MAX_STATEMENT_CHARS,
    canonical_dumps,
    serialize_result,
)

__all__ = [
    "Client",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "MAX_STATEMENT_CHARS",
    "QueryServer",
    "ServerConnectionError",
    "ServerError",
    "ServerStats",
    "ServerThread",
    "canonical_dumps",
    "serialize_result",
]
