"""Asyncio query server over a persistent catalog.

One :class:`QueryServer` owns a bound :class:`~repro.store.catalog.Catalog`,
a shared :class:`~repro.service.executor.CatalogQueryService` (worker pool +
byte-budgeted matrix cache), and a :class:`~repro.db.engine.Database` facade
routed through that service.  Connections speak the NDJSON protocol of
:mod:`repro.server.protocol`; statements execute on a bounded thread pool so
the event loop only ever parses frames and shuttles bytes.

Three service-grade behaviours live here rather than in the engine:

* **Request coalescing** — concurrent identical statements (whitespace-
  normalised) share one execution: the first arrival runs, later arrivals
  await the same future and receive the same serialized result.  With many
  dashboards polling the same SELECT, the catalog does the work once.
* **Admission control** — at most ``max_inflight`` statements execute at
  once; beyond that, new queries get an immediate ``saturated`` error (the
  429 analogue) instead of queueing without bound.  Coalesced arrivals
  attach to in-flight work and are never rejected.
* **Graceful shutdown** — :meth:`shutdown` stops accepting connections,
  rejects new statements with ``shutting_down``, *drains* every in-flight
  execution so its response is written, then closes connections and the
  underlying service.

:class:`ServerThread` runs a server on a background event-loop thread —
what the tests, the benchmark, and embedding applications use.
"""

from __future__ import annotations

import asyncio
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.db.engine import Database
from repro.exceptions import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import DEFAULT_SLOW_QUERY_MS
from repro.obs.trace import QueryTrace
from repro.server import protocol
from repro.service.executor import CatalogQueryService
from repro.store.catalog import Catalog

__all__ = ["QueryServer", "ServerStats", "ServerThread"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7411


class ServerStats:
    """Lifetime counters, exposed over the wire via ``{"op": "stats"}``.

    All mutation goes through :meth:`increment` and every read copies
    under one lock, so a stats payload assembled mid-burst is internally
    consistent (``executed + coalesced + rejected`` can never be caught
    between two increments of one arrival).  Counters read as plain
    attributes (``stats.executed``) for ergonomic assertions; writing
    them directly raises — the increment path is the only writer.
    """

    _FIELDS = (
        "connections",
        "requests",
        "executed",
        "coalesced",
        "rejected",
        "errors",
    )

    def __init__(self) -> None:
        object.__setattr__(self, "_lock", threading.Lock())
        object.__setattr__(self, "_counts", dict.fromkeys(self._FIELDS, 0))

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __getattr__(self, name: str) -> int:
        if name in type(self)._FIELDS:
            with self._lock:
                return self._counts[name]
        raise AttributeError(name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in type(self)._FIELDS:
            raise AttributeError(
                f"ServerStats.{name} is read-only; use increment({name!r})"
            )
        object.__setattr__(self, name, value)

    def __repr__(self) -> str:
        counts = self.as_dict()
        inner = ", ".join(f"{k}={v}" for k, v in counts.items())
        return f"ServerStats({inner})"


class QueryServer:
    """NDJSON query server fronting one catalog.

    Parameters
    ----------
    catalog:
        The served :class:`Catalog` or its path (must exist).
    host, port:
        Bind address; port ``0`` picks a free port (see :attr:`address`).
    max_inflight:
        Concurrent statement executions admitted before new queries are
        rejected with ``saturated``.
    coalesce:
        Share one execution between concurrent identical statements.
    max_workers, cache_budget_bytes, backend:
        Forwarded to the shared :class:`CatalogQueryService`; ``backend``
        selects the per-statement executor (``"thread"`` default,
        ``"process"`` for true multi-core aggregate execution).
    pruning:
        Forwarded to the service: use segment synopses to skip
        provably-irrelevant work (default on; results are identical
        either way).
    registry:
        Forwarded to the service; the server's own request counters are
        exported into the same registry, and ``{"op": "metrics"}``
        scrapes it (``None``: the process-wide default registry).
    slow_query_ms:
        Forwarded to the service's slow-query log (``server serve
        --slow-query-ms``); entries come back via ``{"op": "slowlog"}``.
    database:
        Optionally a pre-built :class:`Database` (e.g. with raw tables
        registered so ``CREATE VIEW`` statements have data to run over).
        Its ``select_service`` binding is installed automatically.

    Examples
    --------
    >>> # server = QueryServer("/data/catalogs/main", port=7411)
    >>> # asyncio.run(server.run())
    """

    def __init__(
        self,
        catalog: Catalog | str | Path,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_inflight: int = 8,
        coalesce: bool = True,
        max_statement_chars: int = protocol.MAX_STATEMENT_CHARS,
        frame_limit_bytes: int = protocol.DEFAULT_FRAME_LIMIT,
        max_workers: int | None = None,
        cache_budget_bytes: int = 64 << 20,
        backend: str = "thread",
        pruning: bool = True,
        registry: MetricsRegistry | None = None,
        slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
        database: Database | None = None,
    ) -> None:
        self.service = CatalogQueryService(
            catalog,
            max_workers=max_workers,
            cache_budget_bytes=cache_budget_bytes,
            backend=backend,
            pruning=pruning,
            registry=registry,
            slow_query_ms=slow_query_ms,
        )
        self.registry = self.service.registry
        self.database = database if database is not None else Database()
        self.database.bind_select_service(self.service)
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.coalesce = bool(coalesce)
        self.max_statement_chars = int(max_statement_chars)
        self.frame_limit_bytes = int(frame_limit_bytes)
        self.stats = ServerStats()
        # Statement execution happens here, never on the event loop; the
        # pool is exactly max_inflight wide so admission control and real
        # concurrency agree.
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="repro-server"
        )
        self._server: asyncio.AbstractServer | None = None
        # Keyed by (stripped statement, trace flag).
        self._inflight: dict[tuple[str, bool], asyncio.Future] = {}
        self._active = 0
        self._draining = False
        self._tasks: set[asyncio.Future] = set()
        self._handlers: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._server_collector = self._register_server_metrics()

    def _register_server_metrics(self):
        """Bridge :class:`ServerStats` into the registry at scrape time.

        The stats object stays the single source of truth (one locked
        dict); the collector copies it into ``repro_server_*`` gauges
        right before each snapshot/exposition, so a scrape never reads a
        half-updated burst.
        """
        gauges = {
            name: self.registry.gauge(
                f"repro_server_{name}", f"Server lifetime {name} count"
            )
            for name in ServerStats._FIELDS
        }
        active = self.registry.gauge(
            "repro_server_active", "Statements executing right now"
        )

        def collect() -> None:
            for name, value in self.stats.as_dict().items():
                gauges[name].set(value)
            active.set(self._active)

        self.registry.register_collector(collect)
        return collect

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._server is not None and self._server.sockets:
            name = self._server.sockets[0].getsockname()
            return str(name[0]), int(name[1])
        return self.host, self.port

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._on_connection,
            self.host,
            self.port,
            limit=self.frame_limit_bytes,
        )

    async def run(self) -> None:
        """Serve until cancelled, then drain and shut down."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.shutdown()

    async def shutdown(self, *, grace: float = 2.0) -> None:
        """Drain in-flight work, then close connections and the service.

        New statements arriving during the drain are rejected with
        ``shutting_down``; every execution already admitted completes and
        its response is written before the connection is closed.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._handlers:
            # In-flight responses are being written now; clients that hang
            # around past the grace period are disconnected.
            _, pending = await asyncio.wait(
                list(self._handlers), timeout=grace
            )
            for writer in list(self._writers):
                writer.close()
            if pending:
                await asyncio.wait(list(pending), timeout=1.0)
        self._executor.shutdown(wait=True)
        self.registry.unregister_collector(self._server_collector)
        self.service.close()

    # ------------------------------------------------------------------
    # Connection handling (event-loop side).
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.increment("connections")
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._writers.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # Client went away mid-write: their call, not an error.
        except asyncio.CancelledError:
            raise
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The line outgrew the read buffer: it can be neither
                # parsed nor reliably skipped.  Answer, then hang up.
                await self._send(
                    writer,
                    protocol.error_frame(
                        None,
                        "frame_too_large",
                        f"frame exceeds {self.frame_limit_bytes} bytes",
                    ),
                )
                return
            if not line:
                return  # Clean EOF.
            if not line.strip():
                continue
            response = await self._respond(line)
            await self._send(writer, response)

    async def _send(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        try:
            frame = protocol.encode_frame(payload)
        except ValueError:
            # A non-finite float slipped into the response (canonical
            # encoding forbids NaN/Infinity).  The contract is structured
            # errors, never a dropped connection — degrade to one.
            self.stats.increment("errors")
            frame = protocol.encode_frame(
                protocol.error_frame(
                    None,
                    "internal",
                    "response contained non-finite numbers",
                )
            )
        writer.write(frame)
        await writer.drain()

    # ------------------------------------------------------------------
    # Request dispatch.
    # ------------------------------------------------------------------
    async def _respond(self, line: bytes) -> dict[str, Any]:
        self.stats.increment("requests")
        try:
            payload = protocol.loads_frame(line)
        except (UnicodeDecodeError, ValueError) as exc:
            self.stats.increment("errors")
            return protocol.error_frame(
                None, "bad_request", f"malformed JSON frame: {exc}"
            )
        if not isinstance(payload, dict):
            self.stats.increment("errors")
            return protocol.error_frame(
                None, "bad_request", "frame must be a JSON object"
            )
        request_id = payload.get("id")
        if isinstance(request_id, float) and not math.isfinite(request_id):
            # "1e999" parses to inf without tripping loads_frame; an id
            # that cannot be echoed canonically is dropped, not fatal.
            request_id = None
        op = payload.get("op", "query")
        if op == "ping":
            return protocol.result_frame(request_id, {"kind": "pong"})
        if op == "stats":
            return protocol.result_frame(request_id, self._stats_payload())
        if op == "metrics":
            return protocol.result_frame(request_id, self._metrics_payload())
        if op == "slowlog":
            return protocol.result_frame(
                request_id, self._slowlog_payload(payload.get("limit"))
            )
        if op != "query":
            self.stats.increment("errors")
            return protocol.error_frame(
                request_id, "bad_request", f"unknown op {op!r}"
            )
        statement = payload.get("statement")
        if not isinstance(statement, str) or not statement.strip():
            self.stats.increment("errors")
            return protocol.error_frame(
                request_id, "bad_request", "frame is missing a statement"
            )
        if len(statement) > self.max_statement_chars:
            self.stats.increment("errors")
            return protocol.error_frame(
                request_id,
                "statement_too_large",
                f"statement has {len(statement)} characters "
                f"(limit {self.max_statement_chars})",
            )
        want_trace = bool(payload.get("trace", False))
        return await self._execute_admitted(
            request_id, statement, want_trace
        )

    async def _execute_admitted(
        self, request_id: Any, statement: str, want_trace: bool = False
    ) -> dict[str, Any]:
        # All bookkeeping below runs on the event-loop thread, so the
        # coalescing map needs no lock.  The key is the statement text
        # verbatim (modulo outer whitespace): collapsing inner whitespace
        # would conflate statements that differ only inside a quoted glob
        # or path — silent wrong results.  Polling fleets repeat
        # byte-identical statements, which is the case coalescing exists
        # for.  The trace flag is part of the key: a traced and an
        # untraced arrival of the same statement must not share a
        # response payload.
        key = (statement.strip(), want_trace)
        future = self._inflight.get(key) if self.coalesce else None
        if future is not None:
            self.stats.increment("coalesced")
        elif self._draining:
            self.stats.increment("rejected")
            return protocol.error_frame(
                request_id, "shutting_down", "server is draining; retry "
                "against another instance"
            )
        elif self._active >= self.max_inflight:
            self.stats.increment("rejected")
            return protocol.error_frame(
                request_id,
                "saturated",
                f"{self._active} statements in flight (limit "
                f"{self.max_inflight}); retry after a backoff",
            )
        else:
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                self._executor, self._execute, statement, want_trace
            )
            self._active += 1
            self.stats.increment("executed")
            self._tasks.add(future)
            if self.coalesce:
                self._inflight[key] = future
            future.add_done_callback(
                lambda fut, key=key: self._on_done(key, fut)
            )
        try:
            result = await asyncio.shield(future)
        except ReproError as exc:
            self.stats.increment("errors")
            return protocol.error_frame(
                request_id, protocol.error_type(exc), str(exc)
            )
        except OSError as exc:
            self.stats.increment("errors")
            return protocol.error_frame(request_id, "io_error", str(exc))
        except Exception as exc:  # noqa: BLE001 - wire boundary.
            self.stats.increment("errors")
            return protocol.error_frame(
                request_id,
                "internal",
                f"{type(exc).__name__}: {exc}",
            )
        return protocol.result_frame(request_id, result)

    def _on_done(
        self, key: tuple[str, bool], future: asyncio.Future
    ) -> None:
        self._active -= 1
        self._tasks.discard(future)
        if self._inflight.get(key) is future:
            del self._inflight[key]

    def _stats_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": "stats",
            "active": self._active,
            "backend": self.service.backend_name,
        }
        # One atomic copy per component: the request counters come out of
        # a single locked snapshot (never caught between the increments
        # of one arrival), and the cache/pruning blocks are each copied
        # under their own lock by their owners.
        payload.update(self.stats.as_dict())
        cache = self.service.cache.stats
        payload["cache"] = {
            # The process backend keeps one private cache per worker;
            # those counters are invisible here, so the shared-cache
            # numbers below legitimately stay at zero.  ``scope`` tells
            # an operator which situation they are reading.
            "scope": (
                "per-worker"
                if self.service.backend_name == "process"
                else "shared"
            ),
            "hits": cache.hits,
            "misses": cache.misses,
            "entries": cache.entries,
            "bytes": cache.current_bytes,
        }
        # Zone-map effectiveness: how many segments the synopses let the
        # service skip, and how many statements ran as APPROX.
        payload["pruning"] = self.service.execution_stats()
        # How results travel from workers: "inline" for same-process
        # backends, "shm"/"pickle" (with chunk and fallback counters)
        # for the process backend.
        payload["transport"] = self.service.backend.transport_stats()
        return payload

    def _metrics_payload(self) -> dict[str, Any]:
        """Both read formats of the registry in one frame.

        ``text`` is the Prometheus exposition (scrapers pass it through
        verbatim); ``metrics`` the JSON snapshot with p50/p95/p99 per
        histogram, which the CLI renders without a PromQL engine.
        """
        return {
            "kind": "metrics",
            "text": self.registry.exposition(),
            "metrics": self.registry.snapshot(),
        }

    def _slowlog_payload(self, limit: Any = None) -> dict[str, Any]:
        log = self.service.slow_log
        if not isinstance(limit, int) or isinstance(limit, bool):
            limit = None
        observed, recorded = log.counts()
        return {
            "kind": "slowlog",
            "threshold_ms": log.threshold_ms,
            "observed": observed,
            "recorded": recorded,
            "entries": log.entries(limit),
        }

    # ------------------------------------------------------------------
    # Statement execution (worker-thread side).
    # ------------------------------------------------------------------
    def _execute(
        self, statement: str, want_trace: bool = False
    ) -> dict[str, Any]:
        """Parse, execute, and serialize one statement.

        Runs on the executor pool: the engine work is numpy-heavy and the
        serialisation allocates, neither belongs on the event loop.

        With ``want_trace`` the server owns a
        :class:`~repro.obs.trace.QueryTrace` spanning parse through
        serialize — created here, finished here, so the ``trace`` block
        in the response accounts for the full server-side wall time.
        """
        if not want_trace:
            return protocol.serialize_result(
                self.database.execute(statement)
            )
        trace = QueryTrace(statement)
        result = self.database.execute(statement, trace=trace)
        with trace.stage("serialize"):
            payload = protocol.serialize_result(result)
        trace.finish()
        payload["trace"] = trace.as_dict()
        return payload


class ServerThread:
    """A :class:`QueryServer` on a dedicated event-loop thread.

    ``start()`` returns the bound address once the server is accepting;
    ``stop()`` runs the graceful shutdown and joins the thread.  Usable as
    a context manager.

    Examples
    --------
    >>> # with ServerThread(QueryServer(catalog, port=0)) as (host, port):
    >>> #     Client(host, port).query("SELECT ...")
    """

    def __init__(self, server: QueryServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    def start(self, *, timeout: float = 10.0) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server did not start in time")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self.server.address

    def stop(self, *, timeout: float = 10.0) -> None:
        if self._thread is None or self._loop is None or self._stop is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to start().
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
