"""Wire protocol of the catalog query server.

The server speaks **newline-delimited JSON** (NDJSON): every request and
every response is one JSON object on one line, UTF-8 encoded, terminated
by ``\\n``.  The format is deliberately transport-trivial — ``nc`` and
three lines of any language's socket code are full clients.

Request frames::

    {"id": 1, "statement": "SELECT exceedance(21.0) FROM CATALOG '...'"}
    {"id": 2, "op": "ping"}
    {"id": 3, "op": "stats"}

``id`` is echoed back verbatim (any JSON scalar; optional).  ``op``
defaults to ``"query"``, which requires ``statement``.

Response frames::

    {"id": 1, "ok": true, "result": {...}}
    {"id": 1, "ok": false, "error": {"type": "query_error", "message": "..."}}

Responses are rendered **canonically** (sorted keys, compact separators),
so the bytes for a given result are deterministic: the benchmark asserts
that a statement served over the wire is *bit-identical* to the same
statement run through :meth:`repro.db.engine.Database.execute` and
serialised with the same functions.

Error taxonomy (``error.type``):

``bad_request``
    The frame is not a JSON object, or lacks a usable ``statement``.
``statement_too_large``
    The statement exceeds :data:`MAX_STATEMENT_CHARS`.
``frame_too_large``
    The raw line exceeded the server's read buffer; the connection is
    closed after this response because the stream cannot be resynced.
``saturated``
    Admission control rejected the query (too many in flight) — the
    429-equivalent; retry after a backoff.
``shutting_down``
    The server is draining; no new queries are admitted.
``parse_error`` / ``invalid_parameter`` / ``store_error`` / ``query_error``
    The statement failed in the engine; the message says why.
``io_error`` / ``internal``
    Filesystem trouble / an unexpected server-side failure.  Never a
    traceback on the wire, never a dropped connection.
"""

from __future__ import annotations

import json
from typing import Any

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import (
    InvalidParameterError,
    ParseError,
    QueryError,
    ReproError,
    StoreError,
)
from repro.service.executor import (
    MultiSelectResult,
    SelectResult,
    SimulateResult,
)
from repro.util.jsonio import canonical_dumps

__all__ = [
    "MAX_STATEMENT_CHARS",
    "DEFAULT_FRAME_LIMIT",
    "canonical_dumps",
    "encode_frame",
    "error_frame",
    "error_type",
    "loads_frame",
    "result_frame",
    "serialize_multi_select",
    "serialize_result",
    "serialize_simulate",
]

#: Hard cap on one statement's character count; longer statements are
#: rejected with ``statement_too_large`` (the frame itself was readable,
#: so the connection stays usable).
MAX_STATEMENT_CHARS = 64_000

#: Default read-buffer limit per frame.  A line that exceeds it cannot be
#: parsed *or skipped* reliably, so the server answers ``frame_too_large``
#: and closes that connection.
DEFAULT_FRAME_LIMIT = 1 << 20


def _reject_constant(name: str) -> float:
    raise ValueError(f"non-finite JSON constant {name} is not allowed")


def loads_frame(line: bytes | str) -> Any:
    """Parse one request frame, rejecting ``NaN``/``Infinity`` constants.

    Python's ``json.loads`` accepts them by default, but they could never
    be encoded back by :func:`canonical_dumps` (``allow_nan=False``) — a
    frame carrying one must fail *here*, as a ``bad_request``, not later
    while writing the response.
    """
    return json.loads(line, parse_constant=_reject_constant)


def encode_frame(payload: dict[str, Any]) -> bytes:
    """One response/request as wire bytes (canonical JSON + newline)."""
    return canonical_dumps(payload).encode("utf-8") + b"\n"


def result_frame(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_frame(
    request_id: Any, kind: str, message: str
) -> dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message},
    }


def error_type(exc: BaseException) -> str:
    """The wire ``error.type`` for an engine/runtime exception."""
    if isinstance(exc, ParseError):
        return "parse_error"
    if isinstance(exc, InvalidParameterError):
        return "invalid_parameter"
    if isinstance(exc, StoreError):
        return "store_error"
    if isinstance(exc, QueryError):
        return "query_error"
    if isinstance(exc, ReproError):
        return "repro_error"
    if isinstance(exc, OSError):
        return "io_error"
    return "internal"


def serialize_select(result: SelectResult) -> dict[str, Any]:
    """A catalog-wide SELECT result as a JSON-ready dict.

    Thin shim over :meth:`~repro.service.executor.SelectResult.to_dict`
    — the payload shape (and its bytes under :func:`canonical_dumps`)
    lives with the result object; the wire just sends it.
    """
    return result.to_dict()


def serialize_multi_select(result: MultiSelectResult) -> dict[str, Any]:
    """A multi-aggregate select list as a JSON-ready dict (``to_dict`` shim)."""
    return result.to_dict()


def serialize_simulate(result: SimulateResult) -> dict[str, Any]:
    """A SIMULATE result as a JSON-ready dict (``to_dict`` shim)."""
    return result.to_dict()


def _scalar_time(value: Any) -> int | float:
    """JSON-safe time key: integral times stay ints, others floats."""
    number = float(value)
    integral = int(number)
    return integral if number == integral else number


def serialize_view(view: ProbabilisticView) -> dict[str, Any]:
    """A created probabilistic view as a JSON-ready dict."""
    cols = view.columns
    labels = cols.labels
    return {
        "kind": "view",
        "name": view.name,
        "tuples": [
            [
                _scalar_time(t),
                float(low),
                float(high),
                float(probability),
                labels[code],
            ]
            for t, low, high, probability, code in zip(
                cols.t.tolist(),
                cols.low.tolist(),
                cols.high.tolist(),
                cols.probability.tolist(),
                cols.label_code.tolist(),
            )
        ],
    }


def serialize_result(result: Any) -> dict[str, Any]:
    """Serialize whatever ``Database.execute`` returned."""
    if isinstance(result, SelectResult):
        return serialize_select(result)
    if isinstance(result, MultiSelectResult):
        return serialize_multi_select(result)
    if isinstance(result, SimulateResult):
        return serialize_simulate(result)
    if isinstance(result, ProbabilisticView):
        return serialize_view(result)
    raise TypeError(
        f"cannot serialize {type(result).__name__} over the wire"
    )
