"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Errors that indicate a caller mistake additionally derive
from :class:`ValueError` so they behave naturally in generic code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied a parameter outside its documented domain."""


class EstimationError(ReproError):
    """A statistical model could not be estimated from the given data.

    Raised, for example, when a window is too short for the requested model
    order, or when an optimiser fails to produce finite parameters and no
    fallback is permitted.
    """


class NotFittedError(ReproError):
    """A model method requiring fitted parameters was called before ``fit``."""


class DataError(ReproError, ValueError):
    """Input data is malformed (NaNs, empty arrays, mismatched lengths...)."""


class QueryError(ReproError):
    """A database or view-generation query could not be executed."""


class ParseError(QueryError):
    """The SQL-like view query text could not be parsed.

    Attributes
    ----------
    position:
        Character offset into the query text where parsing failed, or ``-1``
        when the failure is not tied to a single location.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class CacheConstraintError(ReproError):
    """The distance and memory constraints of a sigma-cache are infeasible."""


class StoreError(ReproError):
    """A persistent-store (catalog / binary backend) operation failed."""


class SchemaVersionError(StoreError):
    """Persisted data was written under an incompatible schema version.

    Attributes
    ----------
    found, expected:
        The schema version read from disk and the version this build of the
        library writes.
    """

    def __init__(self, message: str, found: int, expected: int) -> None:
        super().__init__(message)
        self.found = found
        self.expected = expected
