"""Probabilistic queries over created views.

The point of the paper is that, once a probabilistic view exists, standard
probabilistic query machinery applies directly.  This module provides the
basic consumers used by the examples and integration tests:

* :func:`threshold_query` — tuples whose probability exceeds a threshold
  (Cheng et al.'s probabilistic threshold query);
* :func:`most_probable_range_query` — the modal range per time;
* :func:`range_probability_query` — probability the value lies in an
  arbitrary interval, per time;
* :func:`expected_value_query` — expected value under the discretised
  distribution, per time.

All four run as column operations over
:attr:`~repro.db.prob_view.ProbabilisticView.columns` — boolean masks,
grouped ``np.add.reduceat`` reductions — and only materialise the
:class:`ProbTuple` objects they actually return, so their signatures and
return types are unchanged from the row-at-a-time implementations.
"""

from __future__ import annotations

import numpy as np

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.exceptions import InvalidParameterError

__all__ = [
    "threshold_query",
    "most_probable_range_query",
    "range_probability_query",
    "expected_value_query",
]


def threshold_query(view: ProbabilisticView, tau: float) -> list[ProbTuple]:
    """All tuples with ``probability >= tau``, in (time, range) order.

    >>> # tuples whose event is at least 50% likely
    >>> # threshold_query(view, 0.5)
    """
    if not 0.0 <= tau <= 1.0:
        raise InvalidParameterError(f"tau must be in [0, 1], got {tau}")
    hits = np.flatnonzero(view.columns.probability >= tau)
    return view.take(hits)


def most_probable_range_query(view: ProbabilisticView) -> dict[int, ProbTuple]:
    """The highest-probability tuple for every time in the view.

    Ties break toward the earlier (lower) range, matching the order the
    builder emits.
    """
    cols = view.columns
    if not cols.times.size:
        return {}
    prob_sorted = cols.probability[cols.order]
    maxima = np.maximum.reduceat(prob_sorted, cols.starts)
    # First position of each group's maximum: flat indices of all maximal
    # entries, then the earliest one at or after each group start.
    is_max = prob_sorted == np.repeat(maxima, cols.counts)
    max_positions = np.flatnonzero(is_max)
    firsts = max_positions[np.searchsorted(max_positions, cols.starts)]
    return {
        int(t): view[int(cols.order[position])]
        for t, position in zip(cols.times, firsts)
    }


def range_probability_query(
    view: ProbabilisticView, low: float, high: float
) -> dict[int, float]:
    """``P(low <= value <= high)`` per time, from overlapping tuples.

    Partially overlapping tuples contribute proportionally to the overlap,
    exact under the builder's piecewise treatment of each range.
    """
    if high <= low:
        raise InvalidParameterError(
            f"query range upper bound must exceed lower, got [{low}, {high}]"
        )
    cols = view.columns
    overlap = np.minimum(high, cols.high) - np.maximum(low, cols.low)
    fraction = np.clip(overlap, 0.0, None) / (cols.high - cols.low)
    contribution = (cols.probability * fraction)[cols.order]
    masses = np.minimum(np.add.reduceat(contribution, cols.starts), 1.0) \
        if cols.times.size else np.empty(0)
    return {int(t): float(mass) for t, mass in zip(cols.times, masses)}


def expected_value_query(view: ProbabilisticView) -> dict[int, float]:
    """Expected value per time under the discretised distribution.

    Each tuple contributes its range midpoint weighted by its probability
    (one grouped ``np.add.reduceat`` over the columns); the result is
    normalised by the captured mass so grids that truncate the tails stay
    unbiased.
    """
    cols = view.columns
    if not cols.times.size:
        return {}
    weighted = (cols.probability * 0.5 * (cols.low + cols.high))[cols.order]
    masses = np.add.reduceat(cols.probability[cols.order], cols.starts)
    sums = np.add.reduceat(weighted, cols.starts)
    # Degenerate groups (no mass): midpoint of the group's support.
    lows = np.minimum.reduceat(cols.low[cols.order], cols.starts)
    highs = np.maximum.reduceat(cols.high[cols.order], cols.starts)
    with np.errstate(divide="ignore", invalid="ignore"):
        values = np.where(
            masses > 0.0, sums / np.where(masses > 0.0, masses, 1.0),
            0.5 * (lows + highs),
        )
    return {int(t): float(value) for t, value in zip(cols.times, values)}
