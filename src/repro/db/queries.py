"""Probabilistic queries over created views.

The point of the paper is that, once a probabilistic view exists, standard
probabilistic query machinery applies directly.  This module provides the
basic consumers used by the examples and integration tests:

* :func:`threshold_query` — tuples whose probability exceeds a threshold
  (Cheng et al.'s probabilistic threshold query);
* :func:`most_probable_range_query` — the modal range per time;
* :func:`range_probability_query` — probability the value lies in an
  arbitrary interval, per time;
* :func:`expected_value_query` — expected value under the discretised
  distribution, per time.
"""

from __future__ import annotations

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.exceptions import InvalidParameterError

__all__ = [
    "threshold_query",
    "most_probable_range_query",
    "range_probability_query",
    "expected_value_query",
]


def threshold_query(view: ProbabilisticView, tau: float) -> list[ProbTuple]:
    """All tuples with ``probability >= tau``, in (time, range) order.

    >>> # tuples whose event is at least 50% likely
    >>> # threshold_query(view, 0.5)
    """
    if not 0.0 <= tau <= 1.0:
        raise InvalidParameterError(f"tau must be in [0, 1], got {tau}")
    return [tup for tup in view if tup.probability >= tau]


def most_probable_range_query(view: ProbabilisticView) -> dict[int, ProbTuple]:
    """The highest-probability tuple for every time in the view.

    Ties break toward the earlier (lower) range, matching the order the
    builder emits.
    """
    out: dict[int, ProbTuple] = {}
    for t in view.times:
        out[t] = max(view.tuples_at(t), key=lambda tup: tup.probability)
    return out


def range_probability_query(
    view: ProbabilisticView, low: float, high: float
) -> dict[int, float]:
    """``P(low <= value <= high)`` per time, from overlapping tuples.

    Partially overlapping tuples contribute proportionally to the overlap,
    exact under the builder's piecewise treatment of each range.
    """
    if high <= low:
        raise InvalidParameterError(
            f"query range upper bound must exceed lower, got [{low}, {high}]"
        )
    out: dict[int, float] = {}
    for t in view.times:
        mass = 0.0
        for tup in view.tuples_at(t):
            overlap = min(high, tup.high) - max(low, tup.low)
            if overlap <= 0:
                continue
            mass += tup.probability * (overlap / (tup.high - tup.low))
        out[t] = min(mass, 1.0)
    return out


def expected_value_query(view: ProbabilisticView) -> dict[int, float]:
    """Expected value per time under the discretised distribution.

    Each tuple contributes its range midpoint weighted by its probability;
    the result is normalised by the captured mass so grids that truncate
    the tails stay unbiased.
    """
    out: dict[int, float] = {}
    for t in view.times:
        tuples = view.tuples_at(t)
        mass = sum(tup.probability for tup in tuples)
        if mass <= 0.0:
            # Degenerate: no information at this time; midpoint of support.
            lows = min(tup.low for tup in tuples)
            highs = max(tup.high for tup in tuples)
            out[t] = 0.5 * (lows + highs)
            continue
        weighted = sum(
            tup.probability * 0.5 * (tup.low + tup.high) for tup in tuples
        )
        out[t] = weighted / mass
    return out
