"""Tuple-independent probabilistic views (the paper's ``prob_view``).

A probabilistic view holds tuples ``(time, range, probability)`` — see the
paper's Fig. 1 and Fig. 2.  Tuples at the same time are mutually exclusive
alternatives (the ranges partition the value domain around ``r_hat_t``);
tuples at different times are independent, the standard tuple-independent
model the paper's Definition 2 targets.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError, InvalidParameterError, QueryError
from repro.view.builder import ProbabilityRow
from repro.view.omega import OmegaGrid

__all__ = ["ProbTuple", "ProbabilisticView"]

#: Tolerance when validating that per-time probabilities do not exceed one.
_MASS_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ProbTuple:
    """One row of a probabilistic view.

    Attributes
    ----------
    t:
        Inference time index.
    low, high:
        The range ``omega = [low, high]`` this tuple asserts.
    probability:
        ``rho_omega`` — probability that the true value lies in the range.
    label:
        Human-readable range label (e.g. ``"room 2"`` or ``"lambda=-1"``).
    """

    t: int
    low: float
    high: float
    probability: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise InvalidParameterError(
                f"tuple range upper bound must exceed lower, "
                f"got [{self.low}, {self.high}]"
            )
        if not -_MASS_TOLERANCE <= self.probability <= 1.0 + _MASS_TOLERANCE:
            raise InvalidParameterError(
                f"tuple probability must be in [0, 1], got {self.probability}"
            )


class ProbabilisticView:
    """An ordered collection of :class:`ProbTuple` grouped by time.

    Construct directly from tuples or from builder output via
    :meth:`from_rows`.  Provides the per-time access patterns the
    probabilistic queries in :mod:`repro.db.queries` build on.
    """

    def __init__(self, name: str, tuples: Sequence[ProbTuple]) -> None:
        if not name:
            raise InvalidParameterError("view name must be non-empty")
        self.name = str(name)
        self._tuples = list(tuples)
        self._by_time: dict[int, list[ProbTuple]] = {}
        for item in self._tuples:
            self._by_time.setdefault(item.t, []).append(item)
        for t, group in self._by_time.items():
            mass = sum(tup.probability for tup in group)
            if mass > 1.0 + _MASS_TOLERANCE * max(len(group), 1):
                raise DataError(
                    f"probabilities at time {t} sum to {mass:.6f} > 1"
                )

    @classmethod
    def from_rows(
        cls, name: str, rows: Sequence[ProbabilityRow], grid: OmegaGrid
    ) -> "ProbabilisticView":
        """Materialise builder output into a view.

        Each :class:`ProbabilityRow` expands into ``grid.n`` tuples whose
        ranges are centred on the row's mean.
        """
        tuples: list[ProbTuple] = []
        for row in rows:
            ranges = grid.ranges_around(row.mean)
            for omega, probability in zip(ranges, row.probabilities):
                tuples.append(
                    ProbTuple(
                        t=row.t,
                        low=omega.low,
                        high=omega.high,
                        probability=float(np.clip(probability, 0.0, 1.0)),
                        label=omega.label,
                    )
                )
        return cls(name, tuples)

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[ProbTuple]:
        return iter(self._tuples)

    def __getitem__(self, index: int) -> ProbTuple:
        return self._tuples[index]

    @property
    def times(self) -> list[int]:
        """Distinct inference times, ascending."""
        return sorted(self._by_time)

    def tuples_at(self, t: int) -> list[ProbTuple]:
        """All tuples asserted at time ``t`` (the alternatives)."""
        if t not in self._by_time:
            raise QueryError(
                f"view {self.name!r} has no tuples at time {t}; "
                f"times span [{min(self._by_time, default='-')}, "
                f"{max(self._by_time, default='-')}]"
            )
        return list(self._by_time[t])

    def probability_at(self, t: int, value: float) -> float:
        """Probability that the true value at ``t`` lies in a range covering ``value``.

        Sums the (disjoint) ranges containing ``value``; zero when the value
        falls outside every range of the grid.
        """
        return sum(
            tup.probability
            for tup in self.tuples_at(t)
            if tup.low <= value <= tup.high
        )

    def total_mass_at(self, t: int) -> float:
        """Probability mass the view captures at ``t`` (tail loss = 1 - mass)."""
        return sum(tup.probability for tup in self.tuples_at(t))

    def __repr__(self) -> str:
        return (
            f"ProbabilisticView(name={self.name!r}, tuples={len(self)}, "
            f"times={len(self._by_time)})"
        )
