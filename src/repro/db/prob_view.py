"""Tuple-independent probabilistic views (the paper's ``prob_view``).

A probabilistic view holds tuples ``(time, range, probability)`` — see the
paper's Fig. 1 and Fig. 2.  Tuples at the same time are mutually exclusive
alternatives (the ranges partition the value domain around ``r_hat_t``);
tuples at different times are independent, the standard tuple-independent
model the paper's Definition 2 targets.

Columnar backing
----------------
The view stores its tuples as parallel numpy columns (``t``, ``low``,
``high``, ``probability`` plus integer label codes) with a sorted per-time
index for O(log T) time slicing; :class:`ProbTuple` objects are only
materialised when individually accessed, so bulk consumers — the queries in
:mod:`repro.db.queries` and :mod:`repro.db.stream_queries` — operate on the
arrays directly via :attr:`ProbabilisticView.columns`.  Per-tuple mass and
range validation happens in one vectorised pass at construction time.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.exceptions import DataError, InvalidParameterError, QueryError
from repro.view.builder import ProbabilityMatrix, ProbabilityRow
from repro.util.arrays import readonly_view
from repro.view.omega import OmegaGrid

__all__ = ["ProbTuple", "ProbabilisticView", "ViewColumns"]

#: Tolerance when validating that per-time probabilities do not exceed one.
_MASS_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ProbTuple:
    """One row of a probabilistic view.

    Attributes
    ----------
    t:
        Inference time index.
    low, high:
        The range ``omega = [low, high)`` this tuple asserts (the uppermost
        range of a time additionally owns its closing edge).
    probability:
        ``rho_omega`` — probability that the true value lies in the range.
    label:
        Human-readable range label (e.g. ``"room 2"`` or ``"lambda=-1"``).
    """

    t: int
    low: float
    high: float
    probability: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise InvalidParameterError(
                f"tuple range upper bound must exceed lower, "
                f"got [{self.low}, {self.high}]"
            )
        if not -_MASS_TOLERANCE <= self.probability <= 1.0 + _MASS_TOLERANCE:
            raise InvalidParameterError(
                f"tuple probability must be in [0, 1], got {self.probability}"
            )


class ViewColumns(NamedTuple):
    """Read-only columnar exposure of a view's tuples (the batch API).

    ``t`` / ``low`` / ``high`` / ``probability`` / ``label_code`` are
    parallel arrays in the view's tuple order; ``labels`` decodes the label
    codes.  ``order`` is the stable by-time sort (sorted position →
    tuple index), ``times`` the distinct times ascending, and ``starts`` /
    ``counts`` delimit each time's group inside ``order`` — together they
    give vectorised consumers O(1) per-time slicing.
    """

    t: np.ndarray
    low: np.ndarray
    high: np.ndarray
    probability: np.ndarray
    label_code: np.ndarray
    labels: tuple[str, ...]
    order: np.ndarray
    times: np.ndarray
    starts: np.ndarray
    counts: np.ndarray


def _check_probability_column(probability: np.ndarray) -> None:
    """Vectorised form of the :class:`ProbTuple` probability check.

    The negated-interval formulation matches the scalar ``__post_init__``
    exactly, so NaN probabilities are rejected here too rather than
    surfacing later during lazy materialisation.
    """
    bad = ~(
        (probability >= -_MASS_TOLERANCE)
        & (probability <= 1.0 + _MASS_TOLERANCE)
    )
    if np.any(bad):
        index = int(np.argmax(bad))
        raise InvalidParameterError(
            f"tuple probability must be in [0, 1], got {probability[index]}"
        )


class ProbabilisticView:
    """An ordered collection of :class:`ProbTuple` grouped by time.

    Construct directly from tuples, from builder output via
    :meth:`from_rows` / :meth:`from_matrix`, or from raw arrays via
    :meth:`from_columns`.  Provides the per-time access patterns the
    probabilistic queries in :mod:`repro.db.queries` build on.
    """

    def __init__(self, name: str, tuples: Sequence[ProbTuple]) -> None:
        tuples = list(tuples)
        count = len(tuples)
        t = np.empty(count, dtype=np.int64)
        low = np.empty(count)
        high = np.empty(count)
        probability = np.empty(count)
        label_code = np.empty(count, dtype=np.int64)
        pool: dict[str, int] = {}
        for index, item in enumerate(tuples):
            t[index] = item.t
            low[index] = item.low
            high[index] = item.high
            probability[index] = item.probability
            label_code[index] = pool.setdefault(item.label, len(pool))
        self._init_columns(
            name, t, low, high, probability, label_code, tuple(pool),
            tuples=tuples,
        )

    # ------------------------------------------------------------------
    # Columnar constructors.
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        name: str,
        t: np.ndarray,
        low: np.ndarray,
        high: np.ndarray,
        probability: np.ndarray,
        labels: Sequence[str] | None = None,
        *,
        label_code: np.ndarray | None = None,
        label_pool: Sequence[str] | None = None,
    ) -> "ProbabilisticView":
        """Build a view from parallel per-tuple arrays.

        ``labels`` optionally carries one label string per tuple.
        Alternatively ``label_code`` / ``label_pool`` carry the already
        dictionary-encoded form (one code per tuple indexing into the pool)
        — the zero-decode path the binary store backend loads through.  The
        per-tuple checks of :class:`ProbTuple` run as one vectorised pass.
        """
        t = np.ascontiguousarray(t, dtype=np.int64)
        low = np.ascontiguousarray(low, dtype=float)
        high = np.ascontiguousarray(high, dtype=float)
        probability = np.ascontiguousarray(probability, dtype=float)
        if not (t.size == low.size == high.size == probability.size):
            raise DataError("view columns must have equal length")
        bad_range = high <= low
        if np.any(bad_range):
            index = int(np.argmax(bad_range))
            raise InvalidParameterError(
                f"tuple range upper bound must exceed lower, "
                f"got [{low[index]}, {high[index]}]"
            )
        _check_probability_column(probability)
        if label_code is not None or label_pool is not None:
            if labels is not None:
                raise InvalidParameterError(
                    "pass either labels or label_code/label_pool, not both"
                )
            if label_code is None or label_pool is None:
                raise InvalidParameterError(
                    "label_code and label_pool must be given together"
                )
            label_code = np.ascontiguousarray(label_code, dtype=np.int64)
            if label_code.size != t.size:
                raise DataError("label_code must have one entry per tuple")
            pool = tuple(str(label) for label in label_pool)
            if not pool:
                pool = ("",)
            if label_code.size and (
                int(label_code.min()) < 0 or int(label_code.max()) >= len(pool)
            ):
                raise DataError(
                    f"label codes must index the {len(pool)}-entry label pool"
                )
        elif labels is None:
            label_code = np.zeros(t.size, dtype=np.int64)
            pool = ("",)
        else:
            if len(labels) != t.size:
                raise DataError("labels must have one entry per tuple")
            mapping: dict[str, int] = {}
            label_code = np.fromiter(
                (mapping.setdefault(str(label), len(mapping)) for label in labels),
                dtype=np.int64,
                count=t.size,
            )
            pool = tuple(mapping) if mapping else ("",)
        self = cls.__new__(cls)
        self._init_columns(name, t, low, high, probability, label_code, pool)
        return self

    @classmethod
    def from_matrix(
        cls, name: str, matrix: ProbabilityMatrix, grid: OmegaGrid
    ) -> "ProbabilisticView":
        """Materialise :meth:`ViewBuilder.build_matrix` output into a view.

        The fully columnar path: the ``(T, n)`` probability matrix expands
        into per-tuple arrays without creating a single Python object per
        tuple.
        """
        return cls._from_grid_layout(
            name, matrix.t, matrix.mean, matrix.probabilities, grid
        )

    @classmethod
    def from_rows(
        cls, name: str, rows: Sequence[ProbabilityRow] | ProbabilityMatrix,
        grid: OmegaGrid,
    ) -> "ProbabilisticView":
        """Materialise builder output into a view.

        Each :class:`ProbabilityRow` expands into ``grid.n`` tuples whose
        ranges are centred on the row's mean.  A :class:`ProbabilityMatrix`
        is accepted too and routed through the columnar path.
        """
        if isinstance(rows, ProbabilityMatrix):
            return cls.from_matrix(name, rows, grid)
        rows = list(rows)
        t = np.fromiter((row.t for row in rows), dtype=np.int64, count=len(rows))
        mean = np.fromiter(
            (row.mean for row in rows), dtype=float, count=len(rows)
        )
        if rows:
            probabilities = np.vstack([row.probabilities for row in rows])
        else:
            probabilities = np.empty((0, grid.n))
        return cls._from_grid_layout(name, t, mean, probabilities, grid)

    @classmethod
    def _from_grid_layout(
        cls,
        name: str,
        t: np.ndarray,
        mean: np.ndarray,
        probabilities: np.ndarray,
        grid: OmegaGrid,
    ) -> "ProbabilisticView":
        """Shared columnar expansion of per-time probability rows."""
        count = t.size
        n = grid.n
        if probabilities.shape != (count, n):
            raise DataError(
                f"probability matrix of shape {probabilities.shape} does not "
                f"match {count} times x {n} ranges"
            )
        edges = grid.edges_matrix(mean)
        pool = tuple(f"lambda={int(lam)}" for lam in grid.lambdas)
        clipped = np.clip(probabilities, 0.0, 1.0).ravel()
        # np.clip passes NaN through; reject it like the scalar path would.
        _check_probability_column(clipped)
        self = cls.__new__(cls)
        self._init_columns(
            name,
            np.repeat(np.ascontiguousarray(t, dtype=np.int64), n),
            edges[:, :-1].ravel(),
            edges[:, 1:].ravel(),
            clipped,
            np.tile(np.arange(n, dtype=np.int64), count),
            pool,
        )
        return self

    # ------------------------------------------------------------------
    # Shared initialisation.
    # ------------------------------------------------------------------
    def _init_columns(
        self,
        name: str,
        t: np.ndarray,
        low: np.ndarray,
        high: np.ndarray,
        probability: np.ndarray,
        label_code: np.ndarray,
        label_pool: tuple[str, ...],
        tuples: list[ProbTuple] | None = None,
    ) -> None:
        if not name:
            raise InvalidParameterError("view name must be non-empty")
        self.name = str(name)
        self._t = t
        self._low = low
        self._high = high
        self._prob = probability
        self._label_code = label_code
        self._label_pool = label_pool if label_pool else ("",)
        self._tuples: list[ProbTuple | None] = (
            tuples if tuples is not None else [None] * t.size
        )
        # Stable by-time ordering; builder output is already sorted, in
        # which case the identity avoids the gather entirely.
        if t.size > 1 and np.any(np.diff(t) < 0):
            self._order = np.argsort(t, kind="stable")
            t_sorted = t[self._order]
        else:
            self._order = np.arange(t.size, dtype=np.int64)
            t_sorted = t
        if t.size:
            self._times, self._starts, self._counts = np.unique(
                t_sorted, return_index=True, return_counts=True
            )
        else:
            self._times = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.int64)
            self._counts = np.empty(0, dtype=np.int64)
        self._prob_sorted = probability[self._order]
        self._validate_mass()
        self._columns: ViewColumns | None = None

    def _validate_mass(self) -> None:
        """Vectorised replacement of the per-group mass summation."""
        if not self._times.size:
            return
        masses = np.add.reduceat(self._prob_sorted, self._starts)
        limits = 1.0 + _MASS_TOLERANCE * np.maximum(self._counts, 1)
        bad = masses > limits
        if np.any(bad):
            index = int(np.argmax(bad))
            raise DataError(
                f"probabilities at time {int(self._times[index])} sum to "
                f"{masses[index]:.6f} > 1"
            )

    # ------------------------------------------------------------------
    # Columnar access.
    # ------------------------------------------------------------------
    @property
    def columns(self) -> ViewColumns:
        """The view's tuples as read-only parallel arrays (batch API)."""
        if self._columns is None:
            self._columns = ViewColumns(
                t=readonly_view(self._t),
                low=readonly_view(self._low),
                high=readonly_view(self._high),
                probability=readonly_view(self._prob),
                label_code=readonly_view(self._label_code),
                labels=self._label_pool,
                order=readonly_view(self._order),
                times=readonly_view(self._times),
                starts=readonly_view(self._starts),
                counts=readonly_view(self._counts),
            )
        return self._columns

    def _materialise(self, index: int) -> ProbTuple:
        item = self._tuples[index]
        if item is None:
            item = ProbTuple(
                t=int(self._t[index]),
                low=float(self._low[index]),
                high=float(self._high[index]),
                probability=float(self._prob[index]),
                label=self._label_pool[int(self._label_code[index])],
            )
            self._tuples[index] = item
        return item

    def take(self, indices: np.ndarray) -> list[ProbTuple]:
        """Bulk tuple materialisation: the tuples at the given indices.

        The columnar counterpart of repeated ``view[i]`` — gathers the
        columns once and builds the dataclasses directly; the per-tuple
        ``__post_init__`` checks already ran as a vectorised pass at
        construction time, so they are safely skipped here.  Vectorised
        queries use this to materialise only the tuples they return.
        """
        indices = np.asarray(indices, dtype=np.int64)
        tuples = self._tuples
        pool = self._label_pool
        out: list[ProbTuple] = []
        new = ProbTuple.__new__
        assign = object.__setattr__
        for index, t, low, high, probability, code in zip(
            indices.tolist(),
            self._t[indices].tolist(),
            self._low[indices].tolist(),
            self._high[indices].tolist(),
            self._prob[indices].tolist(),
            self._label_code[indices].tolist(),
        ):
            item = tuples[index]
            if item is None:
                item = new(ProbTuple)
                assign(item, "t", t)
                assign(item, "low", low)
                assign(item, "high", high)
                assign(item, "probability", probability)
                assign(item, "label", pool[code])
                tuples[index] = item
            out.append(item)
        return out

    def _group_position(self, t: int) -> int:
        position = int(np.searchsorted(self._times, t))
        if position >= self._times.size or self._times[position] != t:
            lo = int(self._times[0]) if self._times.size else "-"
            hi = int(self._times[-1]) if self._times.size else "-"
            raise QueryError(
                f"view {self.name!r} has no tuples at time {t}; "
                f"times span [{lo}, {hi}]"
            )
        return position

    def _group_indices(self, position: int) -> np.ndarray:
        start = int(self._starts[position])
        return self._order[start : start + int(self._counts[position])]

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._t.size

    def __iter__(self) -> Iterator[ProbTuple]:
        for index in range(len(self)):
            yield self._materialise(index)

    def __getitem__(self, index: int | slice) -> ProbTuple | list[ProbTuple]:
        if isinstance(index, slice):
            return [self._materialise(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._materialise(index)

    @property
    def times(self) -> list[int]:
        """Distinct inference times, ascending."""
        return self._times.tolist()

    def tuples_at(self, t: int) -> list[ProbTuple]:
        """All tuples asserted at time ``t`` (the alternatives)."""
        position = self._group_position(t)
        return self.take(self._group_indices(position))

    def probability_at(self, t: int, value: float) -> float:
        """Probability that the true value at ``t`` lies in the range covering ``value``.

        Ranges are treated as half-open ``[low, high)`` — adjacent grid
        ranges share an edge, so closed intervals would double-count a
        value landing exactly on it — except that the uppermost edge of the
        time's range set is closed (the last range owns its upper bound).
        Zero when the value falls outside every range.
        """
        position = self._group_position(t)
        indices = self._group_indices(position)
        low = self._low[indices]
        high = self._high[indices]
        inside = (low <= value) & (value < high)
        top = np.max(high)
        if value == top:
            inside |= (high == top) & (low <= value)
        return float(np.sum(self._prob[indices], where=inside))

    def total_mass_at(self, t: int) -> float:
        """Probability mass the view captures at ``t`` (tail loss = 1 - mass)."""
        position = self._group_position(t)
        start = int(self._starts[position])
        stop = start + int(self._counts[position])
        return float(np.sum(self._prob_sorted[start:stop]))

    def __repr__(self) -> str:
        return (
            f"ProbabilisticView(name={self.name!r}, tuples={len(self)}, "
            f"times={len(self._times)})"
        )
