"""Persistent store for inferred densities (paper Section II-A).

"The system stores the inferred probability density functions p_t(R_t)
associated with the corresponding raw values" — this module is that store.
Densities land here once (online or offline) and the Omega-view builder can
then answer *any number* of probability value generation queries, with
arbitrary time predicates and view parameters, without re-running a metric.
This is exactly the workload of the paper's Fig. 14 experiment: the query
cost is CDF evaluation over stored densities, which the sigma-cache then
collapses.

Only location-scale families are storable (Gaussian and Uniform — the two
families the paper's metrics emit), so rows serialise to four floats plus a
family tag.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.gaussian import Gaussian
from repro.distributions.uniform import Uniform
from repro.exceptions import DataError, InvalidParameterError, QueryError
from repro.metrics.base import DensityForecast, DensitySeries

__all__ = ["DensityStore", "StoredDensity"]

_FAMILY_GAUSSIAN = "gaussian"
_FAMILY_UNIFORM = "uniform"


@dataclass(frozen=True)
class StoredDensity:
    """One persisted density row.

    ``mean``/``scale`` are the location and the family's natural scale
    (sigma for Gaussian, half-width for Uniform); ``kappa_bounds`` keeps
    the metric's lower/upper so C-GARCH style consumers survive the round
    trip.
    """

    t: int
    family: str
    mean: float
    scale: float
    lower: float
    upper: float

    def to_distribution(self) -> Distribution:
        """Rehydrate the stored parameters into a distribution object."""
        if self.family == _FAMILY_GAUSSIAN:
            return Gaussian(self.mean, self.scale**2)
        if self.family == _FAMILY_UNIFORM:
            return Uniform(self.mean - self.scale, self.mean + self.scale)
        raise DataError(f"unknown stored density family {self.family!r}")

    def to_forecast(self) -> DensityForecast:
        """Rehydrate into the metric-layer forecast type."""
        distribution = self.to_distribution()
        return DensityForecast(
            t=self.t,
            mean=self.mean,
            distribution=distribution,
            lower=self.lower,
            upper=self.upper,
            volatility=distribution.std(),
        )


class DensityStore:
    """An append-only, time-indexed store of inferred densities.

    Examples
    --------
    >>> from repro.metrics import VariableThresholdingMetric
    >>> from repro.data import campus_temperature
    >>> series = campus_temperature(200, rng=0)
    >>> forecasts = VariableThresholdingMetric().run(series, 40)
    >>> store = DensityStore()
    >>> store.append_series(forecasts)
    >>> len(store)
    160
    >>> len(store.between(50, 60))
    11
    """

    def __init__(self) -> None:
        self._rows: list[StoredDensity] = []
        self._last_t: int | None = None

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def append(self, forecast: DensityForecast) -> None:
        """Persist one forecast; times must arrive strictly increasing."""
        if self._last_t is not None and forecast.t <= self._last_t:
            raise InvalidParameterError(
                f"forecast time {forecast.t} is not after the last stored "
                f"time {self._last_t}"
            )
        distribution = forecast.distribution
        if isinstance(distribution, Gaussian):
            row = StoredDensity(
                t=forecast.t, family=_FAMILY_GAUSSIAN,
                mean=distribution.mu, scale=distribution.std(),
                lower=forecast.lower, upper=forecast.upper,
            )
        elif isinstance(distribution, Uniform):
            row = StoredDensity(
                t=forecast.t, family=_FAMILY_UNIFORM,
                mean=distribution.mean(), scale=distribution.width / 2.0,
                lower=forecast.lower, upper=forecast.upper,
            )
        else:
            raise InvalidParameterError(
                f"cannot persist distribution family "
                f"{type(distribution).__name__}; only Gaussian and Uniform "
                "are storable"
            )
        self._rows.append(row)
        self._last_t = forecast.t

    def append_series(self, forecasts: DensitySeries | Iterable[DensityForecast]) -> None:
        """Persist a whole density series."""
        for forecast in forecasts:
            self.append(forecast)

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[StoredDensity]:
        return iter(self._rows)

    @property
    def times(self) -> np.ndarray:
        return np.array([row.t for row in self._rows], dtype=int)

    def at(self, t: int) -> StoredDensity:
        """The stored density for exactly time ``t``."""
        times = self.times
        index = int(np.searchsorted(times, t))
        if index >= times.size or times[index] != t:
            raise QueryError(f"no stored density at time {t}")
        return self._rows[index]

    def between(self, lo: int, hi: int) -> DensitySeries:
        """Rehydrate all densities with ``lo <= t <= hi`` (the WHERE clause)."""
        selected = [row.to_forecast() for row in self._rows if lo <= row.t <= hi]
        if not selected:
            raise QueryError(f"no stored densities in time range [{lo}, {hi}]")
        return DensitySeries(selected)

    def all(self) -> DensitySeries:
        """Rehydrate the entire store."""
        if not self._rows:
            raise QueryError("density store is empty")
        return DensitySeries([row.to_forecast() for row in self._rows])

    def volatility_extremes(self) -> tuple[float, float]:
        """(min sigma, max sigma) over the store — sizes a sigma-cache."""
        if not self._rows:
            raise QueryError("density store is empty")
        sigmas = [row.to_distribution().std() for row in self._rows]
        return float(min(sigmas)), float(max(sigmas))

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    def save_csv(self, path: str | Path) -> None:
        """Write the store as ``t, family, mean, scale, lower, upper``."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["t", "family", "mean", "scale", "lower", "upper"])
            for row in self._rows:
                writer.writerow([
                    row.t, row.family, repr(row.mean), repr(row.scale),
                    repr(row.lower), repr(row.upper),
                ])

    @classmethod
    def load_csv(cls, path: str | Path) -> "DensityStore":
        """Read a store previously written by :meth:`save_csv`."""
        path = Path(path)
        store = cls()
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise DataError(f"{path} is empty") from None
            expected = ["t", "family", "mean", "scale", "lower", "upper"]
            if header != expected:
                raise DataError(
                    f"{path} does not look like a density store: {header}"
                )
            for cells in reader:
                if not cells:
                    continue
                row = StoredDensity(
                    t=int(cells[0]), family=cells[1], mean=float(cells[2]),
                    scale=float(cells[3]), lower=float(cells[4]),
                    upper=float(cells[5]),
                )
                row.to_distribution()  # Validate the family tag eagerly.
                store._rows.append(row)
                store._last_t = row.t
        return store

    def __repr__(self) -> str:
        span = ""
        if self._rows:
            span = f", t=[{self._rows[0].t}, {self._rows[-1].t}]"
        return f"DensityStore(n={len(self)}{span})"
