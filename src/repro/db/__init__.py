"""In-memory database substrate.

Holds the ``raw_values`` relations the paper's framework ingests, the
tuple-independent ``prob_view`` relations the Omega-view builder emits, the
engine that executes the SQL-like view-generation language end to end, and
probabilistic queries over the created views (the motivating "which room is
Alice in?" query of the paper's Fig. 1).
"""

from repro.db.engine import Database
from repro.db.prob_view import ProbabilisticView, ProbTuple, ViewColumns
from repro.db.queries import (
    expected_value_query,
    most_probable_range_query,
    range_probability_query,
    threshold_query,
)
from repro.db.storage import load_table_csv, save_table_csv
from repro.db.table import Table

__all__ = [
    "Database",
    "ProbTuple",
    "ProbabilisticView",
    "Table",
    "ViewColumns",
    "expected_value_query",
    "load_table_csv",
    "most_probable_range_query",
    "range_probability_query",
    "save_table_csv",
    "threshold_query",
]
