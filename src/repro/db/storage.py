"""CSV persistence for tables and probabilistic views.

Keeps the library self-contained (no pandas): plain ``csv`` round-trips for
:class:`~repro.db.table.Table` and
:class:`~repro.db.prob_view.ProbabilisticView`, used by the examples to
inspect outputs and by tests to verify round-trip fidelity.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.table import Table
from repro.exceptions import DataError

__all__ = [
    "save_table_csv",
    "load_table_csv",
    "save_view_csv",
    "load_view_csv",
]


def save_table_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        columns = [table.column(c) for c in table.columns]
        for index in range(len(table)):
            writer.writerow([repr(float(col[index])) for col in columns])


def load_table_csv(path: str | Path, name: str | None = None) -> Table:
    """Read a table previously written by :func:`save_table_csv`.

    The table name defaults to the file stem.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows = [[float(cell) for cell in row] for row in reader if row]
    data = {
        column: np.array([row[index] for row in rows])
        for index, column in enumerate(header)
    }
    return Table(name or path.stem, header, data)


def save_view_csv(view: ProbabilisticView, path: str | Path) -> None:
    """Write a probabilistic view as ``t, low, high, probability, label``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["t", "low", "high", "probability", "label"])
        for tup in view:
            writer.writerow(
                [int(tup.t), repr(float(tup.low)), repr(float(tup.high)),
                 repr(float(tup.probability)), tup.label]
            )


def load_view_csv(path: str | Path, name: str | None = None) -> ProbabilisticView:
    """Read a view previously written by :func:`save_view_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        expected = ["t", "low", "high", "probability", "label"]
        if header != expected:
            raise DataError(
                f"{path} does not look like a view file: header {header}"
            )
        tuples = [
            ProbTuple(
                t=int(row[0]),
                low=float(row[1]),
                high=float(row[2]),
                probability=float(row[3]),
                label=row[4],
            )
            for row in reader
            if row
        ]
    return ProbabilisticView(name or path.stem, tuples)
