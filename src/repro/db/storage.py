"""CSV persistence for tables and probabilistic views.

Keeps the library self-contained (no pandas): plain ``csv`` round-trips for
:class:`~repro.db.table.Table` and
:class:`~repro.db.prob_view.ProbabilisticView`.  CSV is the human-readable
debug format; the system backend is the binary columnar store in
:mod:`repro.store.binary`.  View rows stream straight from / into the
view's column arrays (:attr:`~repro.db.prob_view.ProbabilisticView.columns`
and :meth:`~repro.db.prob_view.ProbabilisticView.from_columns`), so no
per-tuple ``ProbTuple`` objects are materialised and validation runs as one
vectorised pass.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.db.table import Table
from repro.exceptions import DataError

__all__ = [
    "save_table_csv",
    "load_table_csv",
    "save_view_csv",
    "load_view_csv",
]


def save_table_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        columns = [table.column(c) for c in table.columns]
        for index in range(len(table)):
            writer.writerow([repr(float(col[index])) for col in columns])


def load_table_csv(path: str | Path, name: str | None = None) -> Table:
    """Read a table previously written by :func:`save_table_csv`.

    The table name defaults to the file stem.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows = [[float(cell) for cell in row] for row in reader if row]
    data = {
        column: np.array([row[index] for row in rows])
        for index, column in enumerate(header)
    }
    return Table(name or path.stem, header, data)


def save_view_csv(view: ProbabilisticView, path: str | Path) -> None:
    """Write a probabilistic view as ``t, low, high, probability, label``.

    Rows stream from the view's column arrays — no :class:`ProbTuple`
    objects are created.  ``repr`` keeps every float lossless.
    """
    path = Path(path)
    cols = view.columns
    pool = cols.labels
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["t", "low", "high", "probability", "label"])
        writer.writerows(
            (t, repr(low), repr(high), repr(probability), pool[code])
            for t, low, high, probability, code in zip(
                cols.t.tolist(),
                cols.low.tolist(),
                cols.high.tolist(),
                cols.probability.tolist(),
                cols.label_code.tolist(),
            )
        )


def load_view_csv(path: str | Path, name: str | None = None) -> ProbabilisticView:
    """Read a view previously written by :func:`save_view_csv`.

    Cells are parsed into parallel column arrays and handed to
    :meth:`ProbabilisticView.from_columns`, so the per-tuple range and
    probability checks run as one vectorised pass.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        expected = ["t", "low", "high", "probability", "label"]
        if header != expected:
            raise DataError(
                f"{path} does not look like a view file: header {header}"
            )
        rows = [row for row in reader if row]
    if rows:
        t_col, low_col, high_col, prob_col, label_col = zip(*rows)
    else:
        t_col = low_col = high_col = prob_col = label_col = ()
    return ProbabilisticView.from_columns(
        name or path.stem,
        np.array(t_col, dtype=np.int64),
        np.array(low_col, dtype=float),
        np.array(high_col, dtype=float),
        np.array(prob_col, dtype=float),
        labels=list(label_col),
    )
