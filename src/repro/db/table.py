"""Columnar in-memory tables for raw sensor values.

The paper's framework ingests relations like ``raw_values(t, r)`` (Fig. 2)
or ``raw_values(time, x, y)`` (Fig. 1).  :class:`Table` is a minimal
columnar store: named float columns of equal length with append, predicate
selection and conversion to :class:`~repro.timeseries.series.TimeSeries`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import DataError, InvalidParameterError, QueryError
from repro.timeseries.series import TimeSeries

__all__ = ["Table"]


class Table:
    """A named relation with float columns of equal length.

    >>> table = Table("raw_values", ["t", "r"])
    >>> table.insert({"t": 1.0, "r": 4.2})
    >>> table.insert_many([(2.0, 5.9), (3.0, 7.1)])
    >>> len(table)
    3
    >>> table.column("r").tolist()
    [4.2, 5.9, 7.1]
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        data: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        if not name:
            raise InvalidParameterError("table name must be non-empty")
        if not columns:
            raise InvalidParameterError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise InvalidParameterError(f"duplicate column names in {list(columns)}")
        self.name = str(name)
        self.columns = tuple(str(c) for c in columns)
        self._data: dict[str, list[float]] = {c: [] for c in self.columns}
        if data is not None:
            lengths = set()
            for column in self.columns:
                if column not in data:
                    raise DataError(f"initial data is missing column {column!r}")
                values = np.asarray(data[column], dtype=float)
                self._data[column] = values.tolist()
                lengths.add(values.size)
            if len(lengths) > 1:
                raise DataError(f"initial columns have unequal lengths: {lengths}")

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, float] | Sequence[float]) -> None:
        """Append one row, given as a mapping or a positional sequence."""
        if isinstance(row, Mapping):
            missing = [c for c in self.columns if c not in row]
            if missing:
                raise DataError(f"row is missing columns {missing}")
            values = [float(row[c]) for c in self.columns]
        else:
            if len(row) != len(self.columns):
                raise DataError(
                    f"row has {len(row)} values for {len(self.columns)} columns"
                )
            values = [float(v) for v in row]
        if not all(np.isfinite(values)):
            raise DataError(f"row contains non-finite values: {values}")
        for column, value in zip(self.columns, values):
            self._data[column].append(value)

    def insert_many(self, rows: Iterable[Mapping[str, float] | Sequence[float]]) -> None:
        """Append many rows; atomic per row, not per batch."""
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data[self.columns[0]])

    def column(self, name: str) -> np.ndarray:
        """Return a copy of one column as a float array."""
        if name not in self._data:
            raise QueryError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {list(self.columns)}"
            )
        return np.asarray(self._data[name], dtype=float)

    def rows(self) -> Iterator[dict[str, float]]:
        """Yield rows as dicts, in insertion order."""
        arrays = {c: self._data[c] for c in self.columns}
        for index in range(len(self)):
            yield {c: arrays[c][index] for c in self.columns}

    def select(
        self,
        *,
        where_column: str | None = None,
        low: float | None = None,
        high: float | None = None,
    ) -> "Table":
        """Return a new table with rows whose ``where_column`` is in range.

        ``None`` bounds are open.  With no predicate the copy is complete.
        """
        if where_column is None:
            mask = np.ones(len(self), dtype=bool)
        else:
            values = self.column(where_column)
            mask = np.ones(values.size, dtype=bool)
            if low is not None:
                mask &= values >= low
            if high is not None:
                mask &= values <= high
        data = {c: self.column(c)[mask] for c in self.columns}
        return Table(self.name, self.columns, data)

    # ------------------------------------------------------------------
    # Conversion.
    # ------------------------------------------------------------------
    def to_series(self, value_column: str, time_column: str) -> TimeSeries:
        """View ``(time_column, value_column)`` as a :class:`TimeSeries`.

        Rows are sorted by time first; duplicate timestamps are rejected by
        the series constructor.
        """
        times = self.column(time_column)
        values = self.column(value_column)
        if times.size == 0:
            raise DataError(f"table {self.name!r} is empty")
        order = np.argsort(times, kind="stable")
        return TimeSeries(values[order], times[order],
                          name=f"{self.name}.{value_column}")

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, columns={list(self.columns)}, rows={len(self)})"
