"""Database engine: executes the SQL-like view-generation language.

Ties the whole framework together (paper Fig. 2): raw-value tables go in,
``CREATE VIEW ... AS DENSITY ...`` statements run the selected dynamic
density metric over the matching rows, the Omega-view builder (optionally
backed by a sigma-cache) turns the inferred densities into probability
rows, and the result is registered as a named
:class:`~repro.db.prob_view.ProbabilisticView`.  A ``PERSIST INTO
'<path>'`` clause additionally stores the created view in the durable
catalog at that path (:mod:`repro.store`).

``SELECT <aggregate> FROM CATALOG '<path>' ...`` statements route to the
catalog-wide query service (:mod:`repro.service`) and return a
:class:`~repro.service.executor.SelectResult` instead of a view — one
``execute`` entry point, two statement kinds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.db.prob_view import ProbabilisticView
from repro.db.table import Table
from repro.exceptions import QueryError
from repro.metrics.registry import create_metric
from repro.obs.trace import QueryTrace
from repro.view.builder import ViewBuilder
from repro.view.sql import (
    SelectQuery,
    SimulateQuery,
    ViewQuery,
    parse_statement,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> db).
    from repro.service.executor import CatalogQueryService, SelectResult

__all__ = ["Database"]

#: Window size used when a query omits the WINDOW clause.
DEFAULT_WINDOW = 60


class Database:
    """An in-memory database of raw tables and probabilistic views.

    Examples
    --------
    >>> import numpy as np
    >>> db = Database()
    >>> table = Table("raw_values", ["t", "r"])
    >>> rng = np.random.default_rng(1)
    >>> table.insert_many((float(i), 20 + 0.01 * i + rng.normal(0, 0.1))
    ...                   for i in range(200))
    >>> db.register_table(table)
    >>> view = db.execute(
    ...     "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=4 "
    ...     "METRIC arma_garch (p=1) WINDOW 40 FROM raw_values")
    >>> view.name
    'pv'
    """

    def __init__(
        self, *, select_service: "CatalogQueryService | None" = None
    ) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, ProbabilisticView] = {}
        self._select_service = select_service

    # ------------------------------------------------------------------
    # Catalog.
    # ------------------------------------------------------------------
    def register_table(self, table: Table) -> None:
        """Add (or replace) a raw-values table."""
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise QueryError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return self._tables[name]

    def view(self, name: str) -> ProbabilisticView:
        if name not in self._views:
            raise QueryError(
                f"unknown view {name!r}; created: {sorted(self._views)}"
            )
        return self._views[name]

    def list_tables(self) -> list[str]:
        return sorted(self._tables)

    def list_views(self) -> list[str]:
        return sorted(self._views)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def execute(
        self, sql: str, *, trace: QueryTrace | None = None
    ) -> "ProbabilisticView | SelectResult":
        """Parse and execute one statement (CREATE VIEW, SELECT, SIMULATE).

        ``CREATE VIEW`` statements return the created
        :class:`ProbabilisticView`; catalog-wide ``SELECT`` / ``SIMULATE``
        statements return the service layer's result objects
        (:class:`~repro.service.executor.SelectResult`,
        :class:`~repro.service.executor.MultiSelectResult`,
        :class:`~repro.service.executor.SimulateResult`).  ``trace``
        (optional) collects the statement's stage spans; the caller that
        created it owns its wall clock.
        """
        if trace is None:
            statement = parse_statement(sql)
            if isinstance(statement, (SelectQuery, SimulateQuery)):
                return self.execute_select(statement)
            return self.execute_query(statement)
        if trace.statement is None:
            trace.statement = sql
        with trace.stage("parse"):
            statement = parse_statement(sql)
        if isinstance(statement, (SelectQuery, SimulateQuery)):
            return self.execute_select(statement, trace=trace)
        with trace.stage("compute"):
            return self.execute_query(statement)

    def bind_select_service(
        self, service: "CatalogQueryService | None"
    ) -> None:
        """Route catalog SELECTs for the service's catalog through it.

        A long-lived executor (the query server binds one per process)
        brings its persistent worker pool and warm matrix cache to every
        statement this database executes; statements addressing *other*
        catalogs still fall back to the one-shot path.  Pass ``None`` to
        unbind.
        """
        self._select_service = service

    def execute_select(
        self,
        query: "str | SelectQuery | SimulateQuery",
        *,
        backend: str | None = None,
        trace: QueryTrace | None = None,
    ) -> "SelectResult":
        """Run a catalog-wide SELECT/SIMULATE through :mod:`repro.service`.

        A bound service (see :meth:`bind_select_service`) carries its own
        executor backend, worker pool, and warm cache; ``backend`` only
        steers the one-shot fallback path for statements addressing other
        catalogs (``"sequential"``/``"thread"``/``"process"``).
        """
        # Imported lazily: the service layer sits above the engine.
        from repro.service.executor import execute_select

        if isinstance(query, str):
            parsed = parse_statement(query)
            if not isinstance(parsed, (SelectQuery, SimulateQuery)):
                raise QueryError(
                    "execute_select handles SELECT and SIMULATE "
                    "statements; use execute_query for CREATE VIEW"
                )
            query = parsed
        service = self._select_service
        if service is not None and service.accepts(query):
            return service.execute(query, trace=trace)
        return execute_select(
            query,
            backend=backend if backend is not None else "thread",
            trace=trace,
        )

    def execute_query(self, query: ViewQuery) -> ProbabilisticView:
        """Execute an already-parsed :class:`ViewQuery`."""
        table = self.table(query.table_name)
        series = table.to_series(query.value_column, query.time_column)
        if query.time_lo is not None or query.time_hi is not None:
            lo = query.time_lo if query.time_lo is not None else float("-inf")
            hi = query.time_hi if query.time_hi is not None else float("inf")
            series = series.between_times(lo, hi)
        metric = create_metric(query.metric_name, **query.metric_params)
        window = query.window or DEFAULT_WINDOW
        if len(series) <= window:
            raise QueryError(
                f"query matches {len(series)} rows, not enough for "
                f"window H={window}; widen the WHERE range or shrink WINDOW"
            )
        forecasts = metric.run(series, window)
        grid = query.grid()
        builder = ViewBuilder(grid)
        if query.uses_cache:
            builder = builder.with_cache_for(
                forecasts,
                distance_constraint=query.cache_distance,
                memory_constraint=query.cache_memory,
            )
        matrix = builder.build_matrix(forecasts)
        view = ProbabilisticView.from_matrix(query.view_name, matrix, grid)
        self._views[query.view_name] = view
        if query.persist_path is not None:
            # Imported lazily: the store layer sits above the engine.
            from repro.store.catalog import Catalog

            Catalog(query.persist_path).save_view(query.view_name, view)
        return view

    def __repr__(self) -> str:
        return (
            f"Database(tables={self.list_tables()}, views={self.list_views()})"
        )
