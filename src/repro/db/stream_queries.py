"""Windowed probabilistic queries over created views (probabilistic streams).

The related work the paper positions against (Cormode & Garofalakis; Re et
al.) consumes *probabilistic streams* — exactly what a probabilistic view
over a time series is.  This module provides the basic windowed consumers
under the tuple-independent semantics of the created views:

* :func:`windowed_expected_value` — sliding-window mean of the per-time
  expected values;
* :func:`exceedance_probability` — P(value above a threshold) per time,
  from partially overlapping ranges;
* :func:`sustained_exceedance_probability` — P(threshold exceeded at
  *every* time of a window), using cross-time independence;
* :func:`expected_time_above` — expected number of times (within a window)
  the value exceeds the threshold, by linearity of expectation.

Like :mod:`repro.db.queries`, everything here is a column operation over
:attr:`~repro.db.prob_view.ProbabilisticView.columns`: per-time exceedance
is one grouped reduction, and the sliding windows are cumulative sums or
strided products over the per-time vectors.

Edge semantics of the windowed consumers: an empty view yields an empty
result; a window longer than the series raises
:class:`~repro.exceptions.InvalidParameterError`; and so do
*non-contiguous* times (e.g. a view built with ``step > 1``), because "the
last ``w`` times" would silently span gaps — none of these ever reach the
strided ``sliding_window_view`` internals.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.db.prob_view import ProbabilisticView
from repro.db.queries import expected_value_query
from repro.exceptions import InvalidParameterError

__all__ = [
    "windowed_expected_value",
    "exceedance_probability",
    "exceedance_vector",
    "sustained_exceedance_probability",
    "expected_time_above",
]


def _check_windowed(view: ProbabilisticView, window: int) -> bool:
    """Validate a windowed query; true when there is anything to compute.

    Returns false for an empty view (callers yield an empty result);
    raises for a non-positive window, a window longer than the series, and
    non-contiguous times.
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    times = view.columns.times
    if not times.size:
        return False
    if times.size < window:
        raise InvalidParameterError(
            f"view has {times.size} times, fewer than window={window}"
        )
    if np.any(np.diff(times) != 1):
        raise InvalidParameterError(
            f"view {view.name!r} has non-contiguous times; windowed queries "
            "need consecutive inference times (build the view with step=1)"
        )
    return True


def exceedance_vector(view: ProbabilisticView, threshold: float) -> np.ndarray:
    """Per-time P(value > threshold), aligned with ``view.columns.times``.

    The shared per-time exceedance primitive: :func:`exceedance_probability`
    keys it by time, the windowed queries reduce over it, and the standing
    queries in :mod:`repro.store.standing` evaluate it per view suffix.
    """
    cols = view.columns
    if not cols.times.size:
        return np.empty(0)
    # Ranges fully above the threshold contribute everything (the fraction
    # clips to 1); the straddling range contributes proportionally.
    fraction = np.clip(
        (cols.high - threshold) / (cols.high - cols.low), 0.0, 1.0
    )
    contribution = (cols.probability * fraction)[cols.order]
    return np.minimum(np.add.reduceat(contribution, cols.starts), 1.0)


def exceedance_probability(view: ProbabilisticView, threshold: float) -> dict[int, float]:
    """P(value > threshold) per time.

    Ranges fully above the threshold contribute their whole probability;
    the range straddling it contributes proportionally (the builder's
    piecewise-uniform treatment within a range).
    """
    values = exceedance_vector(view, threshold)
    return {int(t): float(v) for t, v in zip(view.columns.times, values)}


def windowed_expected_value(
    view: ProbabilisticView, window: int
) -> dict[int, float]:
    """Sliding-window average of per-time expected values.

    Keyed by the window's *last* time; only full windows are reported.
    """
    if not _check_windowed(view, window):
        return {}
    expectations = expected_value_query(view)
    times = view.times
    values = np.array([expectations[t] for t in times])
    csum = np.concatenate(([0.0], np.cumsum(values)))
    means = (csum[window:] - csum[:-window]) / window
    return {times[i + window - 1]: float(means[i]) for i in range(means.size)}


def sustained_exceedance_probability(
    view: ProbabilisticView, threshold: float, window: int
) -> dict[int, float]:
    """P(value > threshold at every time of each ``window``-length window).

    Tuples at different times are independent in the created views, so the
    window probability is the product of per-time exceedances.  Keyed by
    the window's last time.
    """
    if not _check_windowed(view, window):
        return {}
    per_time = exceedance_vector(view, threshold)
    times = view.times
    products = np.prod(sliding_window_view(per_time, window), axis=1)
    return {
        times[i + window - 1]: float(products[i]) for i in range(products.size)
    }


def expected_time_above(
    view: ProbabilisticView, threshold: float, window: int
) -> dict[int, float]:
    """Expected count of exceedances within each window (linearity of E)."""
    if not _check_windowed(view, window):
        return {}
    per_time = exceedance_vector(view, threshold)
    times = view.times
    csum = np.concatenate(([0.0], np.cumsum(per_time)))
    sums = csum[window:] - csum[:-window]
    return {times[i + window - 1]: float(sums[i]) for i in range(sums.size)}
