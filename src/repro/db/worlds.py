"""Possible-worlds semantics over created probabilistic views.

The paper's views are *block-independent-disjoint* databases: at one time
the range tuples are mutually exclusive alternatives (they partition the
value domain around ``r_hat_t``, plus a residual "outside the grid" world
carrying the leftover mass), while tuples at different times are
independent.  This module makes that semantics executable two ways:

* :func:`conjunctive_range_query` — exact probability of a conjunction of
  per-time range predicates (product over times of within-time sums);
* :class:`WorldSampler` / :func:`monte_carlo_query` — draw complete
  possible worlds and estimate arbitrary functionals by averaging, the
  MCDB approach (Jampani et al.) whose parameter-storage idea the paper
  says it inherits.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import InvalidParameterError
from repro.util.rng import ensure_rng

__all__ = [
    "World",
    "WorldSampler",
    "MonteCarloEstimate",
    "conjunctive_range_query",
    "derive_series_seed",
    "monte_carlo_query",
]


def derive_series_seed(seed: int, series_id: str) -> int:
    """A per-series sampling seed, stable across processes and platforms.

    Mixes the statement-level seed with the series id through SHA-256 —
    never Python's ``hash()``, whose string hashing varies with
    ``PYTHONHASHSEED`` and therefore across spawn-started worker
    processes.  This is what makes ``SIMULATE n SEED s`` bit-identical on
    the sequential, thread, and process executor backends: each series'
    stream depends only on ``(seed, series_id)``, never on which worker
    ran it or in what order.
    """
    digest = hashlib.sha256(
        f"repro.worlds:{int(seed)}:{series_id}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")

#: Sampled value marking the residual "outside every range" alternative.
OUTSIDE = None


@dataclass(frozen=True)
class World:
    """One sampled possible world: a concrete value (or OUTSIDE) per time."""

    values: Mapping[int, float | None]

    def value_at(self, t: int) -> float | None:
        if t not in self.values:
            raise InvalidParameterError(f"world has no time {t}")
        return self.values[t]

    def in_range(self, t: int, low: float, high: float) -> bool:
        """True when the world's value at ``t`` exists and lies in range.

        The range is **half-open** — ``low <= value < high`` — matching
        the columnar reference semantics of
        :meth:`~repro.db.prob_view.ProbabilisticView.probability_at`, so
        Monte Carlo estimates of range indicators converge to
        :func:`conjunctive_range_query`'s exact answers.
        """
        value = self.value_at(t)
        return value is not None and low <= value < high


class WorldSampler:
    """Samples possible worlds from a tuple-independent view.

    Per time, one alternative is drawn according to the tuple
    probabilities; the leftover mass ``1 - sum(rho)`` selects the OUTSIDE
    world.  Within the chosen range the value is drawn uniformly — the
    maximum-entropy choice given only the range probability.
    """

    def __init__(self, view: ProbabilisticView) -> None:
        self.view = view
        self._times = view.times
        self._lows: dict[int, np.ndarray] = {}
        self._highs: dict[int, np.ndarray] = {}
        self._cumulative: dict[int, np.ndarray] = {}
        for t in self._times:
            tuples = view.tuples_at(t)
            self._lows[t] = np.array([tup.low for tup in tuples])
            self._highs[t] = np.array([tup.high for tup in tuples])
            probabilities = np.array([tup.probability for tup in tuples])
            self._cumulative[t] = np.cumsum(probabilities)

    def sample(self, rng: int | np.random.Generator | None = None) -> World:
        """Draw one complete world."""
        generator = ensure_rng(rng)
        values: dict[int, float | None] = {}
        for t in self._times:
            cumulative = self._cumulative[t]
            if cumulative.size == 0:
                # An empty tuple block carries no in-grid mass at all:
                # yield OUTSIDE deterministically, without consuming a
                # draw, so the stream stays aligned across views that
                # agree on their non-empty blocks.
                values[t] = OUTSIDE
                continue
            u = generator.uniform()
            if u >= cumulative[-1]:
                values[t] = OUTSIDE  # Residual mass outside the grid.
                continue
            # side="right" skips zero-probability alternatives: when u
            # lands exactly on a flat cumulative step, the first index
            # *past* the flat run is selected — a tuple with rho = 0 can
            # never be drawn.
            index = int(np.searchsorted(cumulative, u, side="right"))
            low = float(self._lows[t][index])
            high = float(self._highs[t][index])
            values[t] = float(generator.uniform(low, high))
        return World(values)


@dataclass(frozen=True)
class MonteCarloEstimate:
    """An estimated functional with its Monte Carlo standard error."""

    mean: float
    standard_error: float
    n_samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        half = z * self.standard_error
        return self.mean - half, self.mean + half


def monte_carlo_query(
    view: ProbabilisticView,
    functional: Callable[[World], float],
    n_samples: int = 1000,
    rng: int | np.random.Generator | None = None,
) -> MonteCarloEstimate:
    """Estimate ``E[functional(world)]`` by sampling possible worlds.

    ``functional`` maps a :class:`World` to a number — e.g. an indicator
    ("was the temperature above 30 at any time?") or an aggregate (count
    of exceedances).

    >>> # P(any value above 100) over a view:
    >>> # monte_carlo_query(view, lambda w: float(any(
    >>> #     (v is not None and v > 100) for v in w.values.values())))
    """
    if n_samples < 2:
        raise InvalidParameterError(f"n_samples must be >= 2, got {n_samples}")
    generator = ensure_rng(rng)
    sampler = WorldSampler(view)
    samples = np.empty(n_samples)
    for index in range(n_samples):
        samples[index] = float(functional(sampler.sample(generator)))
    mean = float(np.mean(samples))
    standard_error = float(np.std(samples, ddof=1) / np.sqrt(n_samples))
    return MonteCarloEstimate(
        mean=mean, standard_error=standard_error, n_samples=n_samples
    )


def conjunctive_range_query(
    view: ProbabilisticView,
    predicates: Mapping[int, tuple[float, float]],
) -> float:
    """Exact P(value in range at *every* predicated time).

    Every predicate is **half-open** — ``low <= value < high``, matching
    :meth:`~repro.db.prob_view.ProbabilisticView.probability_at` and
    :meth:`World.in_range` — so a degenerate ``low == high`` predicate
    selects nothing (factor 0) and an *inverted* predicate
    (``high < low``) raises :class:`InvalidParameterError`.

    Exploits the view's block-independent-disjoint structure: within one
    time the overlapping tuples' masses add (mutually exclusive
    alternatives, with partial overlaps contributing proportionally);
    across times the factors multiply (independence).  Degenerate range
    tuples (``tup.low == tup.high``) are treated as point masses: they
    contribute their whole probability when the predicate contains the
    point, never a division by their zero width.

    >>> # P(temp in [20, 22) at t=60 AND temp in [21, 23) at t=61):
    >>> # conjunctive_range_query(view, {60: (20, 22), 61: (21, 23)})
    """
    if not predicates:
        raise InvalidParameterError("provide at least one time predicate")
    for t, (low, high) in predicates.items():
        if high < low:
            raise InvalidParameterError(
                f"predicate at time {t} has inverted range [{low}, {high}]"
            )
    probability = 1.0
    for t, (low, high) in predicates.items():
        if high == low:
            return 0.0  # [a, a) is empty under half-open semantics.
        mass = 0.0
        for tup in view.tuples_at(t):
            width = tup.high - tup.low
            if width <= 0.0:
                # Point-mass tuple: inside iff the half-open predicate
                # contains the point.
                if low <= tup.low < high:
                    mass += tup.probability
                continue
            overlap = min(high, tup.high) - max(low, tup.low)
            if overlap <= 0:
                continue
            mass += tup.probability * (overlap / width)
        probability *= min(mass, 1.0)
        if probability == 0.0:
            break
    return probability
