"""Possible-worlds semantics over created probabilistic views.

The paper's views are *block-independent-disjoint* databases: at one time
the range tuples are mutually exclusive alternatives (they partition the
value domain around ``r_hat_t``, plus a residual "outside the grid" world
carrying the leftover mass), while tuples at different times are
independent.  This module makes that semantics executable two ways:

* :func:`conjunctive_range_query` — exact probability of a conjunction of
  per-time range predicates (product over times of within-time sums);
* :class:`WorldSampler` / :func:`monte_carlo_query` — draw complete
  possible worlds and estimate arbitrary functionals by averaging, the
  MCDB approach (Jampani et al.) whose parameter-storage idea the paper
  says it inherits.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import InvalidParameterError
from repro.util.rng import ensure_rng

__all__ = [
    "World",
    "WorldSampler",
    "MonteCarloEstimate",
    "monte_carlo_query",
    "conjunctive_range_query",
]

#: Sampled value marking the residual "outside every range" alternative.
OUTSIDE = None


@dataclass(frozen=True)
class World:
    """One sampled possible world: a concrete value (or OUTSIDE) per time."""

    values: Mapping[int, float | None]

    def value_at(self, t: int) -> float | None:
        if t not in self.values:
            raise InvalidParameterError(f"world has no time {t}")
        return self.values[t]

    def in_range(self, t: int, low: float, high: float) -> bool:
        """True when the world's value at ``t`` exists and lies in range."""
        value = self.value_at(t)
        return value is not None and low <= value <= high


class WorldSampler:
    """Samples possible worlds from a tuple-independent view.

    Per time, one alternative is drawn according to the tuple
    probabilities; the leftover mass ``1 - sum(rho)`` selects the OUTSIDE
    world.  Within the chosen range the value is drawn uniformly — the
    maximum-entropy choice given only the range probability.
    """

    def __init__(self, view: ProbabilisticView) -> None:
        self.view = view
        self._times = view.times
        self._lows: dict[int, np.ndarray] = {}
        self._highs: dict[int, np.ndarray] = {}
        self._cumulative: dict[int, np.ndarray] = {}
        for t in self._times:
            tuples = view.tuples_at(t)
            self._lows[t] = np.array([tup.low for tup in tuples])
            self._highs[t] = np.array([tup.high for tup in tuples])
            probabilities = np.array([tup.probability for tup in tuples])
            self._cumulative[t] = np.cumsum(probabilities)

    def sample(self, rng: int | np.random.Generator | None = None) -> World:
        """Draw one complete world."""
        generator = ensure_rng(rng)
        values: dict[int, float | None] = {}
        for t in self._times:
            cumulative = self._cumulative[t]
            u = generator.uniform()
            if u >= cumulative[-1]:
                values[t] = OUTSIDE  # Residual mass outside the grid.
                continue
            index = int(np.searchsorted(cumulative, u, side="right"))
            low = float(self._lows[t][index])
            high = float(self._highs[t][index])
            values[t] = float(generator.uniform(low, high))
        return World(values)


@dataclass(frozen=True)
class MonteCarloEstimate:
    """An estimated functional with its Monte Carlo standard error."""

    mean: float
    standard_error: float
    n_samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        half = z * self.standard_error
        return self.mean - half, self.mean + half


def monte_carlo_query(
    view: ProbabilisticView,
    functional: Callable[[World], float],
    n_samples: int = 1000,
    rng: int | np.random.Generator | None = None,
) -> MonteCarloEstimate:
    """Estimate ``E[functional(world)]`` by sampling possible worlds.

    ``functional`` maps a :class:`World` to a number — e.g. an indicator
    ("was the temperature above 30 at any time?") or an aggregate (count
    of exceedances).

    >>> # P(any value above 100) over a view:
    >>> # monte_carlo_query(view, lambda w: float(any(
    >>> #     (v is not None and v > 100) for v in w.values.values())))
    """
    if n_samples < 2:
        raise InvalidParameterError(f"n_samples must be >= 2, got {n_samples}")
    generator = ensure_rng(rng)
    sampler = WorldSampler(view)
    samples = np.empty(n_samples)
    for index in range(n_samples):
        samples[index] = float(functional(sampler.sample(generator)))
    mean = float(np.mean(samples))
    standard_error = float(np.std(samples, ddof=1) / np.sqrt(n_samples))
    return MonteCarloEstimate(
        mean=mean, standard_error=standard_error, n_samples=n_samples
    )


def conjunctive_range_query(
    view: ProbabilisticView,
    predicates: Mapping[int, tuple[float, float]],
) -> float:
    """Exact P(value in range at *every* predicated time).

    Exploits the view's block-independent-disjoint structure: within one
    time the overlapping tuples' masses add (mutually exclusive
    alternatives, with partial overlaps contributing proportionally);
    across times the factors multiply (independence).

    >>> # P(temp in [20, 22] at t=60 AND temp in [21, 23] at t=61):
    >>> # conjunctive_range_query(view, {60: (20, 22), 61: (21, 23)})
    """
    if not predicates:
        raise InvalidParameterError("provide at least one time predicate")
    probability = 1.0
    for t, (low, high) in predicates.items():
        if high <= low:
            raise InvalidParameterError(
                f"predicate at time {t} has empty range [{low}, {high}]"
            )
        mass = 0.0
        for tup in view.tuples_at(t):
            overlap = min(high, tup.high) - max(low, tup.low)
            if overlap <= 0:
                continue
            mass += tup.probability * (overlap / (tup.high - tup.low))
        probability *= min(mass, 1.0)
        if probability == 0.0:
            break
    return probability
