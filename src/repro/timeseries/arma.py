"""ARMA(p, q) estimation and forecasting.

The paper uses the ARMA model in three places: the uniform and variable
thresholding metrics infer the *expected true value* ``r_hat_t`` with it
(eq. 2), the ARMA-GARCH metric feeds its residuals ``a_i = r_i - r_hat_i``
into the GARCH volatility model (Algorithm 1, steps 1-3), and the ARCH-effect
test of Section VII-D operates on its squared residuals.

Estimation uses the Hannan-Rissanen two-stage least-squares procedure rather
than full maximum likelihood: the paper re-fits a fresh model on every
sliding window (tens of thousands of fits per experiment), and HR is
closed-form, numerically robust on short windows, and produces one-step
forecasts indistinguishable from MLE at these window sizes.  This design
choice is recorded in DESIGN.md and ablated in the benchmark suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import (
    DataError,
    EstimationError,
    InvalidParameterError,
    NotFittedError,
)
from repro.util.rng import ensure_rng
from repro.util.validation import require_finite_array

__all__ = ["ARMAModel", "ARMAParams", "batch_ar_predict"]


@dataclass(frozen=True)
class ARMAParams:
    """Fitted ARMA coefficients.

    Attributes
    ----------
    const:
        The intercept ``phi_0`` of eq. (2).
    ar:
        Autoregressive coefficients ``phi_1 .. phi_p``.
    ma:
        Moving-average coefficients ``theta_1 .. theta_q``.
    sigma2:
        Innovation variance ``sigma_a^2`` estimated from the residuals.
    """

    const: float
    ar: np.ndarray = field(default_factory=lambda: np.empty(0))
    ma: np.ndarray = field(default_factory=lambda: np.empty(0))
    sigma2: float = 0.0

    @property
    def p(self) -> int:
        return int(np.size(self.ar))

    @property
    def q(self) -> int:
        return int(np.size(self.ma))

    def is_ar_stationary(self) -> bool:
        """True when all roots of the AR polynomial lie outside the unit circle."""
        if self.p == 0:
            return True
        poly = np.concatenate(([1.0], -np.asarray(self.ar, dtype=float)))
        roots = np.roots(poly[::-1])
        return bool(np.all(np.abs(roots) > 1.0))


class ARMAModel:
    """ARMA(p, q) model with Hannan-Rissanen estimation.

    Parameters
    ----------
    p, q:
        Non-negative model orders.  ``ARMA(p, 0)`` degenerates to ordinary
        least-squares autoregression; ``ARMA(0, 0)`` to the sample mean.
    long_ar_order:
        Order of the stage-1 long autoregression used to proxy the
        unobserved innovations when ``q > 0``.  Defaults to a standard
        ``max(p + q, ceil(10 * log10(n)))`` rule capped at ``n // 3``.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> values = ARMAModel.simulate(
    ...     ARMAParams(const=0.0, ar=np.array([0.7]), sigma2=1.0), 500, rng)
    >>> model = ARMAModel(p=1).fit(values)
    >>> abs(model.params_.ar[0] - 0.7) < 0.15
    True
    """

    def __init__(self, p: int = 1, q: int = 0, long_ar_order: int | None = None) -> None:
        if p < 0 or q < 0:
            raise InvalidParameterError(f"model orders must be >= 0, got p={p}, q={q}")
        if p == 0 and q > 0:
            # Pure-MA estimation still needs the long AR stage; allowed.
            pass
        self.p = int(p)
        self.q = int(q)
        self.long_ar_order = long_ar_order
        self.params_: ARMAParams | None = None
        self.residuals_: np.ndarray | None = None
        self.fitted_: np.ndarray | None = None
        self._training_values: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Estimation.
    # ------------------------------------------------------------------
    def fit(self, values: np.ndarray) -> "ARMAModel":
        """Estimate the model on ``values`` and return ``self``.

        Populates ``params_``, the aligned in-sample ``fitted_`` one-step
        predictions and ``residuals_`` (entries before ``max(p, q)`` are
        zero, matching the paper's convention that residuals are available
        for ``i >= t - H + max(p, q)``).
        """
        data = require_finite_array("values", values, min_len=2)
        n = data.size
        min_len = max(self.p, self.q) + max(self.p + self.q, 1) + 1
        if n < min_len:
            raise EstimationError(
                f"ARMA({self.p},{self.q}) needs at least {min_len} values, got {n}"
            )
        if self.q == 0:
            params = self._fit_ar(data)
        else:
            params = self._fit_hannan_rissanen(data)
        fitted, residuals = self._in_sample(data, params)
        usable = residuals[max(self.p, self.q):]
        sigma2 = float(np.mean(usable**2)) if usable.size else 0.0
        self.params_ = ARMAParams(
            const=params.const, ar=params.ar, ma=params.ma, sigma2=sigma2
        )
        self.fitted_ = fitted
        self.residuals_ = residuals
        self._training_values = data
        return self

    def _fit_ar(self, data: np.ndarray) -> ARMAParams:
        """OLS autoregression: regress r_t on an intercept and p lags."""
        if self.p == 0:
            return ARMAParams(const=float(np.mean(data)))
        design, target = _lag_matrix(data, self.p)
        coefficients = _least_squares(design, target)
        return ARMAParams(const=float(coefficients[0]), ar=coefficients[1:])

    def _fit_hannan_rissanen(self, data: np.ndarray) -> ARMAParams:
        """Two-stage HR: long-AR innovations proxy, then joint regression."""
        n = data.size
        if self.long_ar_order is not None:
            long_order = self.long_ar_order
        else:
            long_order = max(self.p + self.q, int(math.ceil(10 * math.log10(max(n, 10)))))
            long_order = min(long_order, max(n // 3, self.p + self.q))
        long_order = max(long_order, 1)
        if n <= long_order + 1:
            raise EstimationError(
                f"window of {n} values too short for stage-1 AR({long_order})"
            )
        # Stage 1: innovations proxy from a long autoregression.
        design, target = _lag_matrix(data, long_order)
        coefficients = _least_squares(design, target)
        innovations = np.zeros(n)
        innovations[long_order:] = target - design @ coefficients
        # Stage 2: regress r_t on p value-lags and q innovation-lags.
        offset = max(self.p, self.q, long_order)
        rows = n - offset
        if rows < self.p + self.q + 1:
            raise EstimationError(
                f"window of {n} values leaves only {rows} rows for "
                f"ARMA({self.p},{self.q}) stage-2 regression"
            )
        design2 = np.empty((rows, 1 + self.p + self.q))
        design2[:, 0] = 1.0
        for j in range(1, self.p + 1):
            design2[:, j] = data[offset - j : n - j]
        for j in range(1, self.q + 1):
            design2[:, self.p + j] = innovations[offset - j : n - j]
        target2 = data[offset:]
        coefficients2 = _least_squares(design2, target2)
        return ARMAParams(
            const=float(coefficients2[0]),
            ar=coefficients2[1 : 1 + self.p],
            ma=coefficients2[1 + self.p :],
        )

    def _in_sample(
        self, data: np.ndarray, params: ARMAParams
    ) -> tuple[np.ndarray, np.ndarray]:
        """One-step in-sample predictions and residuals, aligned to ``data``.

        Positions before ``max(p, q)`` carry the observation itself as the
        fitted value (zero residual), so downstream consumers can index
        freely without special-casing the warm-up.
        """
        n = data.size
        warm = max(self.p, self.q)
        fitted = data.copy()
        residuals = np.zeros(n)
        for i in range(warm, n):
            prediction = params.const
            for j in range(1, self.p + 1):
                prediction += params.ar[j - 1] * data[i - j]
            for j in range(1, self.q + 1):
                prediction += params.ma[j - 1] * residuals[i - j]
            fitted[i] = prediction
            residuals[i] = data[i] - prediction
        return fitted, residuals

    # ------------------------------------------------------------------
    # Forecasting.
    # ------------------------------------------------------------------
    def predict_next(self) -> float:
        """One-step-ahead forecast ``r_hat_t`` from the training window (eq. 2)."""
        params, data, residuals = self._require_fitted()
        prediction = params.const
        for j in range(1, self.p + 1):
            prediction += params.ar[j - 1] * data[-j]
        for j in range(1, self.q + 1):
            prediction += params.ma[j - 1] * residuals[-j]
        return float(prediction)

    def forecast(self, steps: int) -> np.ndarray:
        """Multi-step forecast: recursive eq. (2) with future shocks at zero."""
        if steps < 1:
            raise InvalidParameterError(f"steps must be >= 1, got {steps}")
        params, data, residuals = self._require_fitted()
        history = list(data[-max(self.p, 1):]) if self.p else []
        shocks = list(residuals[-max(self.q, 1):]) if self.q else []
        out = np.empty(steps)
        for step in range(steps):
            prediction = params.const
            for j in range(1, self.p + 1):
                prediction += params.ar[j - 1] * history[-j]
            for j in range(1, self.q + 1):
                prediction += params.ma[j - 1] * shocks[-j]
            out[step] = prediction
            if self.p:
                history.append(prediction)
            if self.q:
                shocks.append(0.0)
        return out

    def _require_fitted(self) -> tuple[ARMAParams, np.ndarray, np.ndarray]:
        if self.params_ is None or self._training_values is None:
            raise NotFittedError("call fit() before forecasting")
        assert self.residuals_ is not None
        return self.params_, self._training_values, self.residuals_

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------
    @staticmethod
    def simulate(
        params: ARMAParams,
        n: int,
        rng: int | np.random.Generator | None = None,
        *,
        burn_in: int = 200,
        innovations: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw ``n`` values from the ARMA process defined by ``params``.

        ``innovations`` overrides the Gaussian shocks (useful for composing
        an ARMA mean process with GARCH innovations when generating the
        synthetic datasets); it must then have length ``n + burn_in``.
        """
        if n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {n}")
        generator = ensure_rng(rng)
        total = n + burn_in
        if innovations is None:
            scale = math.sqrt(max(params.sigma2, 0.0)) or 1.0
            shocks = generator.normal(0.0, scale, size=total)
        else:
            shocks = require_finite_array("innovations", innovations)
            if shocks.size != total:
                raise DataError(
                    f"innovations must have length n + burn_in = {total}, "
                    f"got {shocks.size}"
                )
        p, q = params.p, params.q
        values = np.zeros(total)
        for i in range(total):
            value = params.const + shocks[i]
            for j in range(1, p + 1):
                if i - j >= 0:
                    value += params.ar[j - 1] * values[i - j]
            for j in range(1, q + 1):
                if i - j >= 0:
                    value += params.ma[j - 1] * shocks[i - j]
            values[i] = value
        return values[burn_in:]


def batch_ar_predict(windows: np.ndarray, p: int) -> np.ndarray:
    """One-step AR(p) OLS forecast for every row of ``windows`` at once.

    The batched equivalent of ``ARMAModel(p, 0).fit(w).predict_next()``:
    each row is regressed on an intercept and its ``p`` lags, solved as
    minimum-norm least squares via a batched pseudo-inverse — the same
    solution ``lstsq`` produces (up to float rounding), including for
    singular designs such as constant windows.  The vectorised
    thresholding metrics build their ``infer_batch`` on this.
    """
    if p < 0:
        raise InvalidParameterError(f"model order must be >= 0, got p={p}")
    windows = np.asarray(windows, dtype=float)
    if windows.ndim != 2:
        raise DataError(f"windows must be a 2-D matrix, got shape {windows.shape}")
    n = windows.shape[1]
    min_len = p + max(p, 1) + 1
    if n < min_len:
        raise EstimationError(
            f"ARMA({p},0) needs at least {min_len} values, got {n}"
        )
    if p == 0:
        return np.mean(windows, axis=1)
    rows = n - p
    design = np.empty((windows.shape[0], rows, p + 1))
    design[:, :, 0] = 1.0
    for j in range(1, p + 1):
        design[:, :, j] = windows[:, p - j : n - j]
    target = windows[:, p:]
    try:
        coefficients = np.linalg.pinv(design) @ target[:, :, None]
    except np.linalg.LinAlgError as exc:  # pragma: no cover - numpy internal.
        raise EstimationError(f"batched least-squares failed: {exc}") from exc
    coefficients = coefficients[:, :, 0]
    if not np.all(np.isfinite(coefficients)):
        raise EstimationError("least-squares produced non-finite coefficients")
    prediction = coefficients[:, 0].copy()
    for j in range(1, p + 1):
        prediction += coefficients[:, j] * windows[:, n - j]
    return prediction


def _lag_matrix(data: np.ndarray, order: int) -> tuple[np.ndarray, np.ndarray]:
    """Design matrix ``[1, r_{t-1}, ..., r_{t-order}]`` and target ``r_t``."""
    n = data.size
    rows = n - order
    design = np.empty((rows, order + 1))
    design[:, 0] = 1.0
    for j in range(1, order + 1):
        design[:, j] = data[order - j : n - j]
    return design, data[order:]


def _least_squares(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Minimum-norm least squares; raises EstimationError on failure."""
    try:
        coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - numpy internal.
        raise EstimationError(f"least-squares failed: {exc}") from exc
    if not np.all(np.isfinite(coefficients)):
        raise EstimationError("least-squares produced non-finite coefficients")
    return coefficients
