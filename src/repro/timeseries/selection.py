"""ARMA model-order selection.

The paper defers the "estimation and choice of the model parameters (p, q)"
to Shumway & Stoffer and uses low orders throughout (its Fig. 12 shows
quality degrading with p).  This module provides the standard tooling a
practitioner would reach for: information-criterion search over an order
grid and a rolling one-step forecast-error comparison, so the low-order
default can be *checked* on a given stream rather than assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import EstimationError, InvalidParameterError
from repro.timeseries.arma import ARMAModel
from repro.util.validation import require_finite_array

__all__ = ["OrderSelectionResult", "select_arma_order", "rolling_forecast_mse"]


@dataclass(frozen=True)
class ScoredOrder:
    """One candidate order with its fit statistics."""

    p: int
    q: int
    aic: float
    bic: float
    sigma2: float


@dataclass(frozen=True)
class OrderSelectionResult:
    """Outcome of an order search.

    ``best_aic``/``best_bic`` are the (p, q) minimisers; ``table`` holds
    every scored candidate for inspection.
    """

    best_aic: tuple[int, int]
    best_bic: tuple[int, int]
    table: tuple[ScoredOrder, ...]

    def score(self, p: int, q: int) -> ScoredOrder:
        for entry in self.table:
            if (entry.p, entry.q) == (p, q):
                return entry
        raise InvalidParameterError(f"order ({p}, {q}) was not in the search grid")


def select_arma_order(
    values: np.ndarray,
    max_p: int = 4,
    max_q: int = 2,
) -> OrderSelectionResult:
    """Score every ARMA(p, q) with p <= max_p, q <= max_q on AIC and BIC.

    The Gaussian likelihood is evaluated at the Hannan-Rissanen estimate;
    orders whose estimation fails (window too short) are skipped.  At least
    one candidate must succeed.

    >>> data = ARMAModel.simulate(
    ...     __import__("repro.timeseries.arma", fromlist=["ARMAParams"]).ARMAParams(
    ...         const=0.0, ar=np.array([0.7]), sigma2=1.0), 400, rng=0)
    >>> result = select_arma_order(data, max_p=3, max_q=1)
    >>> result.best_bic[0] >= 1
    True
    """
    data = require_finite_array("values", values, min_len=8)
    if max_p < 0 or max_q < 0:
        raise InvalidParameterError("max_p and max_q must be >= 0")
    n = data.size
    scored: list[ScoredOrder] = []
    for p in range(max_p + 1):
        for q in range(max_q + 1):
            if p == 0 and q == 0:
                residual_variance = float(np.var(data))
                k = 1
            else:
                try:
                    model = ARMAModel(p, q).fit(data)
                except EstimationError:
                    continue
                residual_variance = max(model.params_.sigma2, 1e-12)
                k = 1 + p + q
            loglik = -0.5 * n * (
                math.log(2.0 * math.pi * max(residual_variance, 1e-12)) + 1.0
            )
            scored.append(
                ScoredOrder(
                    p=p,
                    q=q,
                    aic=-2.0 * loglik + 2.0 * (k + 1),
                    bic=-2.0 * loglik + math.log(n) * (k + 1),
                    sigma2=residual_variance,
                )
            )
    if not scored:
        raise EstimationError("no candidate order could be estimated")
    best_aic = min(scored, key=lambda s: s.aic)
    best_bic = min(scored, key=lambda s: s.bic)
    return OrderSelectionResult(
        best_aic=(best_aic.p, best_aic.q),
        best_bic=(best_bic.p, best_bic.q),
        table=tuple(scored),
    )


def rolling_forecast_mse(
    values: np.ndarray,
    p: int,
    q: int,
    H: int,
    *,
    step: int = 1,
) -> float:
    """Mean squared one-step forecast error of ARMA(p, q) over rolling windows.

    This is the out-of-sample check corresponding to the paper's rolling
    protocol: fit on ``S^H_{t-1}``, predict ``r_t``, score against the
    realised value.
    """
    data = require_finite_array("values", values, min_len=H + 2)
    if H < max(p, q) + max(p + q, 1) + 1:
        raise InvalidParameterError(f"window H={H} too short for ARMA({p},{q})")
    if step < 1:
        raise InvalidParameterError(f"step must be >= 1, got {step}")
    errors = []
    for t in range(H, data.size, step):
        model = ARMAModel(p, q).fit(data[t - H : t])
        errors.append(data[t] - model.predict_next())
    if not errors:
        raise EstimationError("no forecast points available")
    return float(np.mean(np.square(errors)))
