"""Timestamped series container and sliding-window access.

The paper (Table I) works with a series ``S = <r_1 ... r_t>`` and sliding
windows ``S^H_{t-1} = <r_{t-H} ... r_{t-1}>`` whose last element sits one
step before the inference time ``t``.  :class:`TimeSeries` stores the values
together with (possibly irregular) timestamps and provides exactly that
window view, plus the iteration pattern every rolling experiment uses.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError, InvalidParameterError
from repro.util.arrays import readonly_view
from repro.util.validation import require_finite_array

__all__ = ["TimeSeries", "SeriesSummary"]


@dataclass(frozen=True)
class SeriesSummary:
    """Descriptive summary of a series; mirrors the paper's Table II rows."""

    name: str
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median_interval: float

    def as_dict(self) -> dict[str, float | int | str]:
        """Return the summary as a plain dict (used by the Table II bench)."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median_interval": self.median_interval,
        }


class TimeSeries:
    """A univariate time series: parallel arrays of timestamps and values.

    Parameters
    ----------
    values:
        Raw (imprecise) observations ``r_i``; coerced to ``float64``.
    timestamps:
        Monotonically increasing time axis.  Defaults to ``0, 1, 2, ...``.
    name:
        Optional label used in summaries and error messages.

    The *index* (position ``0 .. n-1``) and the *timestamp* are distinct:
    models operate on indices, timestamps carry the physical time (e.g.
    seconds).  ``window(t, H)`` follows the paper's convention that the
    window for inference time ``t`` ends at index ``t - 1``.
    """

    def __init__(
        self,
        values: np.ndarray,
        timestamps: np.ndarray | None = None,
        name: str = "series",
    ) -> None:
        self._values = require_finite_array("values", values)
        if timestamps is None:
            self._timestamps = np.arange(self._values.size, dtype=float)
        else:
            self._timestamps = require_finite_array("timestamps", timestamps)
            if self._timestamps.size != self._values.size:
                raise DataError(
                    f"timestamps ({self._timestamps.size}) and values "
                    f"({self._values.size}) must have equal length"
                )
            if np.any(np.diff(self._timestamps) <= 0):
                raise DataError("timestamps must be strictly increasing")
        self.name = str(name)

    # ------------------------------------------------------------------
    # Basic container protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._values.size

    def __getitem__(self, index: int) -> float:
        return float(self._values[index])

    def __repr__(self) -> str:
        return f"TimeSeries(name={self.name!r}, n={len(self)})"

    @property
    def values(self) -> np.ndarray:
        """The raw values as a read-only float array."""
        return readonly_view(self._values)

    @property
    def timestamps(self) -> np.ndarray:
        """The time axis as a read-only float array."""
        return readonly_view(self._timestamps)

    # ------------------------------------------------------------------
    # Windows.
    # ------------------------------------------------------------------
    def window(self, t: int, H: int) -> np.ndarray:
        """Return the sliding window ``S^H_{t-1} = values[t-H : t]``.

        ``t`` is the inference index; the returned window holds the ``H``
        values *preceding* it, matching Definition 1 of the paper.
        """
        if H < 1:
            raise InvalidParameterError(f"window size H must be >= 1, got {H}")
        if t < H or t > len(self):
            raise InvalidParameterError(
                f"inference index t={t} needs H={H} preceding values "
                f"in a series of length {len(self)}"
            )
        return self._values[t - H : t]

    def window_indices(
        self, H: int, *, start: int | None = None, stop: int | None = None, step: int = 1
    ) -> np.ndarray:
        """The inference indices ``t`` whose windows :meth:`iter_windows` yields.

        The single definition of the window clamping rules: ``start``
        defaults to ``H`` (the first index with a full window), ``stop`` to
        ``len(self)``, and ``step`` subsamples.  Both the lazy iteration
        and the batch path (:meth:`DynamicDensityMetric.run`) derive their
        inference times from here.
        """
        if step < 1:
            raise InvalidParameterError(f"step must be >= 1, got {step}")
        first = H if start is None else max(start, H)
        last = len(self) if stop is None else min(stop, len(self))
        return np.arange(first, last, step, dtype=np.int64)

    def iter_windows(
        self, H: int, *, start: int | None = None, stop: int | None = None, step: int = 1
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(t, S^H_{t-1})`` for ``t`` in ``[start, stop)``.

        ``start`` defaults to ``H`` (the first index with a full window) and
        ``stop`` to ``len(self)``.  ``step`` subsamples inference times,
        which the experiment harness uses to keep rolling runs tractable.
        """
        for t in self.window_indices(H, start=start, stop=stop, step=step):
            t = int(t)
            yield t, self._values[t - H : t]

    # ------------------------------------------------------------------
    # Derived series.
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> TimeSeries:
        """Return the sub-series of positions ``[start, stop)``."""
        if not 0 <= start < stop <= len(self):
            raise InvalidParameterError(
                f"invalid slice [{start}, {stop}) for series of length {len(self)}"
            )
        return TimeSeries(
            self._values[start:stop].copy(),
            self._timestamps[start:stop].copy(),
            name=self.name,
        )

    def between_times(self, lo: float, hi: float) -> TimeSeries:
        """Return the sub-series whose *timestamps* fall in ``[lo, hi]``.

        This implements the WHERE clause of the view-generation query.
        """
        mask = (self._timestamps >= lo) & (self._timestamps <= hi)
        if not np.any(mask):
            raise DataError(
                f"no samples of {self.name!r} in time range [{lo}, {hi}]"
            )
        return TimeSeries(
            self._values[mask].copy(), self._timestamps[mask].copy(), name=self.name
        )

    def with_values(self, values: np.ndarray, name: str | None = None) -> TimeSeries:
        """Return a copy sharing this series' time axis but new values."""
        values = np.asarray(values, dtype=float)
        if values.size != len(self):
            raise DataError(
                f"replacement values ({values.size}) must match length {len(self)}"
            )
        return TimeSeries(values.copy(), self._timestamps.copy(),
                          name=self.name if name is None else name)

    # ------------------------------------------------------------------
    # Summaries.
    # ------------------------------------------------------------------
    def summary(self) -> SeriesSummary:
        """Return the Table II style summary of this series."""
        intervals = np.diff(self._timestamps)
        return SeriesSummary(
            name=self.name,
            count=len(self),
            mean=float(np.mean(self._values)),
            std=float(np.std(self._values, ddof=1)) if len(self) > 1 else 0.0,
            minimum=float(np.min(self._values)),
            maximum=float(np.max(self._values)),
            median_interval=float(np.median(intervals)) if intervals.size else 0.0,
        )
