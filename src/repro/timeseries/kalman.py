"""Kalman filter for the paper's local-level state-space model (eqs. 7-8).

The Kalman-GARCH metric infers the expected true value ``r_hat_t`` with

    state equation:        x_i = c1 * x_{i-1} + e_{i-1},  e ~ N(0, sigma_e^2)
    observation equation:  r_i = c2 * x_i     + eta_i,    eta ~ N(0, sigma_eta^2)

Parameters ``sigma_e^2`` and ``sigma_eta^2`` are estimated by
expectation-maximisation (the paper attributes Kalman-GARCH's slowness to
exactly this "slow convergence of the iterative EM algorithm", Section
VII-A); ``c1`` and ``c2`` are treated as known constants, 1.0 by default,
which is the standard local-level specification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.util.validation import require_finite_array

__all__ = ["KalmanFilter", "KalmanParams", "FilterResult"]

#: Variance floor keeping the filter well-posed on constant windows.
_VARIANCE_FLOOR = 1e-12


@dataclass(frozen=True)
class KalmanParams:
    """Parameters of the local-level model.

    Attributes
    ----------
    c1, c2:
        State-transition and observation constants of eqs. (7)-(8).
    state_variance:
        ``sigma_e^2`` — variance of the state innovation ``e_i``.
    obs_variance:
        ``sigma_eta^2`` — variance of the observation noise ``eta_i``.
    initial_mean, initial_variance:
        Prior on the first state ``x_1`` (the paper's a-priori ``r_hat_1``).
    """

    c1: float = 1.0
    c2: float = 1.0
    state_variance: float = 1.0
    obs_variance: float = 1.0
    initial_mean: float = 0.0
    initial_variance: float = 1e6

    def validate(self) -> None:
        if self.state_variance < 0 or self.obs_variance < 0:
            raise InvalidParameterError("variances must be >= 0")
        if self.initial_variance <= 0:
            raise InvalidParameterError("initial_variance must be > 0")


@dataclass(frozen=True)
class FilterResult:
    """Outputs of one filtering pass, all aligned with the observations.

    ``predicted_*`` are the one-step-ahead moments before seeing ``r_i``
    (used for forecasting and the likelihood); ``filtered_*`` condition on
    ``r_i`` as well.
    """

    predicted_mean: np.ndarray
    predicted_variance: np.ndarray
    filtered_mean: np.ndarray
    filtered_variance: np.ndarray
    loglik: float


class KalmanFilter:
    """Local-level Kalman filter with EM parameter estimation.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(3)
    >>> level = np.cumsum(rng.normal(0, 0.1, 300))
    >>> observed = level + rng.normal(0, 1.0, 300)
    >>> kf = KalmanFilter().fit_em(observed, max_iter=25)
    >>> kf.params_.obs_variance > kf.params_.state_variance
    True
    """

    def __init__(self, params: KalmanParams | None = None) -> None:
        self.params_ = params
        self.result_: FilterResult | None = None
        self.em_iterations_: int | None = None
        self._observations: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Filtering / smoothing.
    # ------------------------------------------------------------------
    def filter(self, observations: np.ndarray, params: KalmanParams | None = None) -> FilterResult:
        """Run the forward filter; returns moments and the log-likelihood."""
        data = require_finite_array("observations", observations)
        p = params or self.params_
        if p is None:
            raise NotFittedError("no parameters: pass params or call fit_em() first")
        p.validate()
        n = data.size
        predicted_mean = np.empty(n)
        predicted_variance = np.empty(n)
        filtered_mean = np.empty(n)
        filtered_variance = np.empty(n)
        loglik = 0.0
        mean, variance = p.initial_mean, p.initial_variance
        for i in range(n):
            if i > 0:
                mean = p.c1 * filtered_mean[i - 1]
                variance = p.c1**2 * filtered_variance[i - 1] + p.state_variance
            predicted_mean[i] = mean
            predicted_variance[i] = variance
            innovation = data[i] - p.c2 * mean
            innovation_variance = p.c2**2 * variance + p.obs_variance
            innovation_variance = max(innovation_variance, _VARIANCE_FLOOR)
            gain = p.c2 * variance / innovation_variance
            filtered_mean[i] = mean + gain * innovation
            filtered_variance[i] = max((1.0 - gain * p.c2) * variance, 0.0)
            loglik -= 0.5 * (
                math.log(2.0 * math.pi * innovation_variance)
                + innovation**2 / innovation_variance
            )
        return FilterResult(
            predicted_mean=predicted_mean,
            predicted_variance=predicted_variance,
            filtered_mean=filtered_mean,
            filtered_variance=filtered_variance,
            loglik=loglik,
        )

    def smooth(
        self, observations: np.ndarray, params: KalmanParams | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rauch-Tung-Striebel smoother.

        Returns ``(smoothed_mean, smoothed_variance, lag1_covariance)`` where
        the lag-one covariance ``Cov(x_i, x_{i-1} | all data)`` feeds the EM
        M-step (entry 0 is zero by convention).
        """
        data = require_finite_array("observations", observations)
        p = params or self.params_
        if p is None:
            raise NotFittedError("no parameters: pass params or call fit_em() first")
        forward = self.filter(data, p)
        n = data.size
        smoothed_mean = forward.filtered_mean.copy()
        smoothed_variance = forward.filtered_variance.copy()
        lag1 = np.zeros(n)
        gains = np.zeros(n)
        for i in range(n - 2, -1, -1):
            next_predicted_var = max(forward.predicted_variance[i + 1], _VARIANCE_FLOOR)
            gain = forward.filtered_variance[i] * p.c1 / next_predicted_var
            gains[i] = gain
            smoothed_mean[i] = forward.filtered_mean[i] + gain * (
                smoothed_mean[i + 1] - forward.predicted_mean[i + 1]
            )
            smoothed_variance[i] = forward.filtered_variance[i] + gain**2 * (
                smoothed_variance[i + 1] - next_predicted_var
            )
        for i in range(1, n):
            lag1[i] = gains[i - 1] * smoothed_variance[i]
        return smoothed_mean, np.maximum(smoothed_variance, 0.0), lag1

    # ------------------------------------------------------------------
    # EM estimation.
    # ------------------------------------------------------------------
    def fit_em(
        self,
        observations: np.ndarray,
        *,
        c1: float = 1.0,
        c2: float = 1.0,
        max_iter: int = 30,
        tol: float = 1e-6,
    ) -> "KalmanFilter":
        """Estimate ``sigma_e^2`` and ``sigma_eta^2`` by EM; returns ``self``.

        Iterates smoother (E-step) and closed-form variance updates (M-step)
        until the log-likelihood improvement falls below ``tol`` or
        ``max_iter`` is reached.  Stores the converged parameters and the
        final forward-filter result.
        """
        data = require_finite_array("observations", observations, min_len=3)
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        base_variance = max(float(np.var(data)), _VARIANCE_FLOOR)
        params = KalmanParams(
            c1=c1,
            c2=c2,
            state_variance=base_variance / 2.0,
            obs_variance=base_variance / 2.0,
            initial_mean=float(data[0]),
            initial_variance=base_variance * 10.0,
        )
        previous_loglik = -math.inf
        iterations = 0
        for iterations in range(1, max_iter + 1):
            smoothed_mean, smoothed_variance, lag1 = self.smooth(data, params)
            # E-step sufficient statistics.
            second_moment = smoothed_variance + smoothed_mean**2
            cross_moment = lag1[1:] + smoothed_mean[1:] * smoothed_mean[:-1]
            # M-step: closed-form updates for the two variances.
            state_variance = float(
                np.mean(
                    second_moment[1:]
                    - 2.0 * c1 * cross_moment
                    + c1**2 * second_moment[:-1]
                )
            )
            obs_variance = float(
                np.mean(
                    data**2
                    - 2.0 * c2 * data * smoothed_mean
                    + c2**2 * second_moment
                )
            )
            params = replace(
                params,
                state_variance=max(state_variance, _VARIANCE_FLOOR),
                obs_variance=max(obs_variance, _VARIANCE_FLOOR),
                initial_mean=float(smoothed_mean[0]),
            )
            loglik = self.filter(data, params).loglik
            if abs(loglik - previous_loglik) < tol * (1.0 + abs(previous_loglik)):
                previous_loglik = loglik
                break
            previous_loglik = loglik
        self.params_ = params
        self.result_ = self.filter(data, params)
        self.em_iterations_ = iterations
        self._observations = data
        return self

    # ------------------------------------------------------------------
    # Forecasting.
    # ------------------------------------------------------------------
    def predict_next(self) -> float:
        """One-step-ahead observation forecast ``r_hat_t = c2 * c1 * x_{H|H}``."""
        if self.params_ is None or self.result_ is None:
            raise NotFittedError("call fit_em() (or filter via fit) first")
        p = self.params_
        return float(p.c2 * p.c1 * self.result_.filtered_mean[-1])

    def fitted_means(self) -> np.ndarray:
        """In-sample one-step predictions ``c2 * x_{i|i-1}``.

        These are the ``r_hat_i`` whose residuals ``a_i = r_i - r_hat_i``
        feed the GARCH stage of the Kalman-GARCH metric.
        """
        if self.params_ is None or self.result_ is None:
            raise NotFittedError("call fit_em() first")
        return self.params_.c2 * self.result_.predicted_mean
