"""Descriptive and diagnostic statistics used across the library.

Includes the sample-variance conventions the SVR filter relies on, rolling
variance for the volatility-regime figure (paper Fig. 4), autocorrelation
helpers backing the ARMA estimator, the Ljung-Box whiteness test, and a
Welford-style running-stats accumulator.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.exceptions import DataError, InvalidParameterError
from repro.util.validation import require_finite_array

__all__ = [
    "sample_variance",
    "rolling_variance",
    "acf",
    "pacf",
    "ljung_box",
    "RunningStats",
]


def sample_variance(values: np.ndarray) -> float:
    """Unbiased sample variance (``ddof=1``); 0.0 for a single value.

    This matches the ``SV(V)`` dispersion measure in Algorithm 2 of the
    paper.
    """
    array = require_finite_array("values", values)
    if array.size < 2:
        return 0.0
    return float(np.var(array, ddof=1))


def rolling_variance(values: np.ndarray, window: int) -> np.ndarray:
    """Sample variance over each trailing window of length ``window``.

    Returns an array of length ``len(values) - window + 1`` where entry ``i``
    is the variance of ``values[i : i + window]``.  Used to visualise the
    volatility regimes of the paper's Fig. 4 and to learn ``SVmax``.
    """
    array = require_finite_array("values", values)
    if window < 2:
        raise InvalidParameterError(f"window must be >= 2, got {window}")
    if array.size < window:
        raise DataError(
            f"need at least window={window} values, got {array.size}"
        )
    # Cumulative-sum formulation: O(n) rather than O(n * window).
    csum = np.concatenate(([0.0], np.cumsum(array)))
    csum2 = np.concatenate(([0.0], np.cumsum(array * array)))
    total = csum[window:] - csum[:-window]
    total2 = csum2[window:] - csum2[:-window]
    variance = (total2 - total * total / window) / (window - 1)
    return np.maximum(variance, 0.0)  # Clamp tiny negative rounding noise.


def acf(values: np.ndarray, nlags: int) -> np.ndarray:
    """Sample autocorrelation function at lags ``0 .. nlags``.

    Uses the biased (``1/n``) covariance normalisation, the standard choice
    guaranteeing a positive semi-definite autocorrelation sequence.
    """
    array = require_finite_array("values", values, min_len=2)
    if nlags < 0:
        raise InvalidParameterError(f"nlags must be >= 0, got {nlags}")
    if nlags >= array.size:
        raise InvalidParameterError(
            f"nlags={nlags} must be < series length {array.size}"
        )
    centered = array - array.mean()
    denominator = float(np.dot(centered, centered))
    if denominator <= 0.0:
        # Constant series: autocorrelation undefined; convention rho_0 = 1.
        out = np.zeros(nlags + 1)
        out[0] = 1.0
        return out
    out = np.empty(nlags + 1)
    out[0] = 1.0
    for lag in range(1, nlags + 1):
        out[lag] = float(np.dot(centered[lag:], centered[:-lag])) / denominator
    return out


def pacf(values: np.ndarray, nlags: int) -> np.ndarray:
    """Partial autocorrelation at lags ``0 .. nlags`` via Durbin-Levinson."""
    rho = acf(values, nlags)
    out = np.empty(nlags + 1)
    out[0] = 1.0
    if nlags == 0:
        return out
    # Durbin-Levinson recursion on the autocorrelation sequence.
    phi_prev = np.zeros(nlags + 1)
    phi_curr = np.zeros(nlags + 1)
    phi_prev[1] = rho[1]
    out[1] = rho[1]
    for k in range(2, nlags + 1):
        numerator = rho[k] - float(np.dot(phi_prev[1:k], rho[k - 1 : 0 : -1]))
        denominator = 1.0 - float(np.dot(phi_prev[1:k], rho[1:k]))
        alpha = numerator / denominator if abs(denominator) > 1e-12 else 0.0
        phi_curr[k] = alpha
        for j in range(1, k):
            phi_curr[j] = phi_prev[j] - alpha * phi_prev[k - j]
        out[k] = alpha
        phi_prev, phi_curr = phi_curr.copy(), phi_prev
    return out


def ljung_box(values: np.ndarray, lags: int) -> tuple[float, float]:
    """Ljung-Box whiteness test; returns ``(statistic, p_value)``.

    Small p-values reject the null that ``values`` is white noise up to the
    requested lag.  Used in tests to validate the ARMA residuals and the
    synthetic dataset generators.
    """
    array = require_finite_array("values", values, min_len=3)
    if lags < 1:
        raise InvalidParameterError(f"lags must be >= 1, got {lags}")
    n = array.size
    if lags >= n:
        raise InvalidParameterError(f"lags={lags} must be < series length {n}")
    rho = acf(array, lags)
    statistic = n * (n + 2) * float(
        np.sum(rho[1:] ** 2 / (n - np.arange(1, lags + 1)))
    )
    p_value = float(scipy_stats.chi2.sf(statistic, df=lags))
    return statistic, p_value


class RunningStats:
    """Welford online mean/variance accumulator.

    Supports ``push`` in O(1); exposes ``mean``, ``variance`` (sample,
    ddof=1) and ``count``.  Used by the online pipeline to track volatility
    extremes for sizing the sigma-cache.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def push(self, value: float) -> None:
        """Accumulate one observation."""
        value = float(value)
        if not np.isfinite(value):
            raise DataError(f"cannot accumulate non-finite value {value!r}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise DataError("mean of empty RunningStats")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two observations."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise DataError("minimum of empty RunningStats")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise DataError("maximum of empty RunningStats")
        return self._max
