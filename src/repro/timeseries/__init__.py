"""Time-series substrate: containers and the dynamical models the paper uses.

The dynamic density metrics (Sections III-V of the paper) are thin
compositions of the models in this subpackage:

* :class:`~repro.timeseries.series.TimeSeries` — timestamped values with the
  sliding-window view ``S^H_{t-1}`` of Table I.
* :class:`~repro.timeseries.arma.ARMAModel` — ARMA(p, q) estimation and the
  one-step expected-true-value forecast of eq. (2).
* :class:`~repro.timeseries.garch.GARCHModel` — GARCH(m, s) volatility
  estimation and the one-step variance forecast of eq. (6).
* :class:`~repro.timeseries.kalman.KalmanFilter` — the local-level state
  space model of eqs. (7)-(8) with EM parameter estimation.
"""

from repro.timeseries.arma import ARMAModel, ARMAParams
from repro.timeseries.garch import GARCHModel, GARCHParams
from repro.timeseries.kalman import KalmanFilter, KalmanParams
from repro.timeseries.series import TimeSeries
from repro.timeseries.stats import (
    RunningStats,
    acf,
    ljung_box,
    pacf,
    rolling_variance,
    sample_variance,
)

__all__ = [
    "ARMAModel",
    "ARMAParams",
    "GARCHModel",
    "GARCHParams",
    "KalmanFilter",
    "KalmanParams",
    "RunningStats",
    "TimeSeries",
    "acf",
    "ljung_box",
    "pacf",
    "rolling_variance",
    "sample_variance",
]
