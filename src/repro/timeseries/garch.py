"""GARCH(m, s) volatility model (paper Section IV-A, eqs. 4-6).

Given ARMA (or Kalman) residuals ``a_i``, the GARCH model expresses the
conditional variance as

    sigma^2_i = alpha_0 + sum_j alpha_j a^2_{i-j} + sum_j beta_j sigma^2_{i-j}

with ``alpha_0 > 0``, ``alpha_j, beta_j >= 0`` and persistence
``sum(alpha) + sum(beta) < 1``.  Estimation is Gaussian quasi-maximum
likelihood via L-BFGS-B with box bounds and a persistence penalty; when the
optimiser cannot improve on it (e.g. a near-constant window where the
likelihood is unidentified) the model falls back to a constant-variance
parameterisation so the metric pipeline never aborts mid-stream.  The paper
restricts experiments to GARCH(1,1); higher orders are supported and tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize, signal

from repro.exceptions import (
    EstimationError,
    InvalidParameterError,
    NotFittedError,
)
from repro.util.rng import ensure_rng
from repro.util.validation import require_finite_array

__all__ = ["GARCHModel", "GARCHParams"]

#: Hard floor applied to every conditional variance to keep the likelihood
#: finite on degenerate (constant) windows.
_VARIANCE_FLOOR = 1e-12

#: Upper bound on persistence enforced during estimation; the paper requires
#: strict stationarity (sum < 1).
_MAX_PERSISTENCE = 0.9995


@dataclass(frozen=True)
class GARCHParams:
    """Fitted GARCH coefficients ``(alpha_0, alpha_1.., beta_1..)``."""

    omega: float
    alpha: np.ndarray
    beta: np.ndarray

    @property
    def m(self) -> int:
        return int(np.size(self.alpha))

    @property
    def s(self) -> int:
        return int(np.size(self.beta))

    @property
    def persistence(self) -> float:
        """``sum(alpha) + sum(beta)``; < 1 for a stationary process."""
        return float(np.sum(self.alpha) + np.sum(self.beta))

    @property
    def unconditional_variance(self) -> float:
        """Long-run variance ``omega / (1 - persistence)``."""
        gap = 1.0 - self.persistence
        if gap <= 0:
            return float("inf")
        return self.omega / gap

    def validate(self) -> None:
        """Raise :class:`InvalidParameterError` unless the paper's constraints hold."""
        if self.omega <= 0:
            raise InvalidParameterError(f"omega must be > 0, got {self.omega}")
        if np.any(np.asarray(self.alpha) < 0) or np.any(np.asarray(self.beta) < 0):
            raise InvalidParameterError("alpha and beta coefficients must be >= 0")
        if self.persistence >= 1.0:
            raise InvalidParameterError(
                f"persistence must be < 1, got {self.persistence}"
            )


class GARCHModel:
    """GARCH(m, s) with Gaussian quasi-MLE estimation.

    Parameters
    ----------
    m:
        Number of ARCH (squared-shock) lags.
    s:
        Number of GARCH (variance) lags.

    Examples
    --------
    >>> import numpy as np
    >>> params = GARCHParams(omega=0.2, alpha=np.array([0.2]), beta=np.array([0.6]))
    >>> shocks = GARCHModel.simulate(params, 2000, rng=7)
    >>> model = GARCHModel().fit(shocks)
    >>> model.params_.persistence < 1.0
    True
    """

    def __init__(self, m: int = 1, s: int = 1) -> None:
        if m < 1:
            raise InvalidParameterError(f"m must be >= 1, got {m}")
        if s < 0:
            raise InvalidParameterError(f"s must be >= 0, got {s}")
        self.m = int(m)
        self.s = int(s)
        self.params_: GARCHParams | None = None
        self.conditional_variance_: np.ndarray | None = None
        self.loglik_: float | None = None
        self._residuals: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Estimation.
    # ------------------------------------------------------------------
    def fit(
        self, residuals: np.ndarray, *, warm_start: GARCHParams | None = None
    ) -> "GARCHModel":
        """Estimate GARCH parameters from mean-model residuals ``a_i``.

        Stores the fitted ``params_``, the filtered ``conditional_variance_``
        aligned with the input, and the achieved log-likelihood.

        ``warm_start`` seeds the optimiser with a previously fitted
        parameter vector *instead of* the multi-start heuristics; rolling
        applications over overlapping windows use this to cut the dominant
        estimation cost (consecutive windows share all but one value, so
        the previous optimum is an excellent start).
        """
        data = require_finite_array("residuals", residuals,
                                    min_len=max(self.m, self.s) + 2)
        base_variance = float(np.var(data))
        if base_variance < _VARIANCE_FLOOR:
            # Degenerate window: constant residuals carry no volatility
            # information.  Use a flat-variance parameterisation.
            self.params_ = self._constant_params(max(base_variance, _VARIANCE_FLOOR))
            self.conditional_variance_ = np.full(data.size,
                                                 max(base_variance, _VARIANCE_FLOOR))
            self.loglik_ = self._log_likelihood(data, self.params_)
            self._residuals = data
            return self

        best_params, best_loglik = self._optimize(data, base_variance, warm_start)
        self.params_ = best_params
        self.conditional_variance_ = self.filter_variance(data, best_params)
        self.loglik_ = best_loglik
        self._residuals = data
        return self

    def _constant_params(self, variance: float) -> GARCHParams:
        return GARCHParams(
            omega=variance,
            alpha=np.zeros(self.m),
            beta=np.zeros(self.s),
        )

    def _starting_points(self, base_variance: float) -> list[np.ndarray]:
        """Heuristic multi-start values spanning low and high persistence."""
        points = []
        for arch_total, garch_total in ((0.10, 0.80), (0.30, 0.50), (0.05, 0.00)):
            alpha = np.full(self.m, arch_total / self.m)
            beta = np.full(self.s, garch_total / self.s) if self.s else np.empty(0)
            omega = base_variance * max(1.0 - arch_total - garch_total, 0.05)
            points.append(np.concatenate(([omega], alpha, beta)))
        return points

    def _optimize(
        self,
        data: np.ndarray,
        base_variance: float,
        warm_start: GARCHParams | None = None,
    ) -> tuple[GARCHParams, float]:
        bounds = [(1e-10, None)]
        bounds += [(0.0, _MAX_PERSISTENCE)] * (self.m + self.s)

        analytic = self.m == 1 and self.s == 1

        def objective(theta: np.ndarray):
            params = self._unpack(theta)
            penalty = 0.0
            excess = params.persistence - _MAX_PERSISTENCE + 1e-6
            if excess > 0:
                # Smooth barrier steering the optimiser back inside the
                # stationarity region.
                penalty = 1e4 * excess**2
            if not analytic:
                return -self._log_likelihood(data, params) + penalty
            loglik, gradient = self._loglik_and_grad_11(data, params)
            gradient = -gradient
            if excess > 0:
                gradient[1] += 2e4 * excess
                gradient[2] += 2e4 * excess
            return -loglik + penalty, gradient

        if warm_start is not None and warm_start.m == self.m and warm_start.s == self.s:
            starting_points = [
                np.concatenate(
                    ([warm_start.omega], warm_start.alpha, warm_start.beta)
                )
            ]
        else:
            starting_points = self._starting_points(base_variance)
        best_theta: np.ndarray | None = None
        best_value = math.inf
        for start in starting_points:
            try:
                result = optimize.minimize(
                    objective, start, method="L-BFGS-B", bounds=bounds,
                    jac=analytic, options={"maxiter": 200},
                )
            except (ValueError, FloatingPointError):  # pragma: no cover - scipy guard.
                continue
            if np.all(np.isfinite(result.x)) and result.fun < best_value:
                best_value = float(result.fun)
                best_theta = result.x
        if best_theta is None:
            # Optimiser never produced finite parameters: flat fallback.
            params = self._constant_params(base_variance)
            return params, self._log_likelihood(data, params)
        params = self._unpack(best_theta)
        if params.persistence >= 1.0:
            # Clamp the rare boundary solution back into stationarity.
            scale = _MAX_PERSISTENCE / params.persistence
            params = GARCHParams(
                omega=params.omega,
                alpha=params.alpha * scale,
                beta=params.beta * scale,
            )
        return params, -best_value

    def _unpack(self, theta: np.ndarray) -> GARCHParams:
        omega = max(float(theta[0]), 1e-10)
        alpha = np.clip(theta[1 : 1 + self.m], 0.0, None)
        beta = np.clip(theta[1 + self.m :], 0.0, None)
        return GARCHParams(omega=omega, alpha=alpha, beta=beta)

    # ------------------------------------------------------------------
    # Filtering / likelihood.
    # ------------------------------------------------------------------
    def filter_variance(self, residuals: np.ndarray, params: GARCHParams) -> np.ndarray:
        """Run the variance recursion of eq. (5) over ``residuals``.

        Pre-sample terms are initialised with the sample variance, the
        standard convention for short-window estimation.  The recursion is a
        linear filter in the squared shocks, so for ``s <= 1`` (the paper
        only ever uses GARCH(1,1)) it runs through ``scipy.signal.lfilter``
        in C; higher ``s`` falls back to the straightforward loop.  The
        optimiser evaluates this on every likelihood call, making it the
        hot path of the whole metric pipeline.
        """
        data = np.asarray(residuals, dtype=float)
        n = data.size
        initial = max(float(np.var(data)), _VARIANCE_FLOOR)
        # Driving term x_i = omega + sum_j alpha_j * a^2_{i-j}, with
        # pre-sample squared shocks replaced by the initial variance.
        padded = np.concatenate((np.full(params.m, initial), data**2))
        drive = np.full(n, params.omega)
        for j in range(1, params.m + 1):
            drive += params.alpha[j - 1] * padded[params.m - j : params.m - j + n]
        if params.s == 0:
            return np.maximum(drive, _VARIANCE_FLOOR)
        if params.s == 1:
            beta = float(params.beta[0])
            variance, _state = signal.lfilter(
                [1.0], [1.0, -beta], drive, zi=np.array([beta * initial])
            )
            return np.maximum(variance, _VARIANCE_FLOOR)
        variance = np.empty(n)
        for i in range(n):
            value = drive[i]
            for j in range(1, params.s + 1):
                lagged = variance[i - j] if i - j >= 0 else initial
                value += params.beta[j - 1] * lagged
            variance[i] = max(value, _VARIANCE_FLOOR)
        return variance

    def _log_likelihood(self, residuals: np.ndarray, params: GARCHParams) -> float:
        variance = self.filter_variance(residuals, params)
        return float(
            -0.5 * np.sum(np.log(2.0 * np.pi * variance) + residuals**2 / variance)
        )

    @staticmethod
    def _loglik_and_grad_11(
        residuals: np.ndarray, params: GARCHParams
    ) -> tuple[float, np.ndarray]:
        """Gaussian log-likelihood and its gradient for GARCH(1,1).

        The variance recursion and each parameter sensitivity
        ``d sigma^2_i / d theta`` are linear filters, so the whole gradient
        evaluates in a handful of C-level passes — this is what makes the
        per-window MLE fast enough for the rolling experiments:

            d s2/d omega_i = 1            + beta * d s2/d omega_{i-1}
            d s2/d alpha_i = a^2_{i-1}    + beta * d s2/d alpha_{i-1}
            d s2/d beta_i  = sigma^2_{i-1}+ beta * d s2/d beta_{i-1}
        """
        data = np.asarray(residuals, dtype=float)
        n = data.size
        omega = params.omega
        alpha = float(params.alpha[0])
        beta = float(params.beta[0])
        initial = max(float(np.var(data)), _VARIANCE_FLOOR)
        squared = data**2
        lagged_sq = np.concatenate(([initial], squared[:-1]))
        drive = omega + alpha * lagged_sq
        denominator = np.array([1.0, -beta])
        variance, _ = signal.lfilter(
            [1.0], denominator, drive, zi=np.array([beta * initial])
        )
        variance = np.maximum(variance, _VARIANCE_FLOOR)
        lagged_var = np.concatenate(([initial], variance[:-1]))
        # Sensitivities (zero initial conditions: the pre-sample variance is
        # a data constant, not a parameter function).
        d_omega, _ = signal.lfilter([1.0], denominator, np.ones(n), zi=np.array([0.0]))
        d_alpha, _ = signal.lfilter([1.0], denominator, lagged_sq, zi=np.array([0.0]))
        d_beta, _ = signal.lfilter([1.0], denominator, lagged_var, zi=np.array([0.0]))
        loglik = -0.5 * float(
            np.sum(np.log(2.0 * np.pi * variance) + squared / variance)
        )
        # d loglik / d sigma^2_i = 0.5 * (a^2_i / sigma^2_i - 1) / sigma^2_i.
        weight = 0.5 * (squared / variance - 1.0) / variance
        gradient = np.array(
            [
                float(np.dot(weight, d_omega)),
                float(np.dot(weight, d_alpha)),
                float(np.dot(weight, d_beta)),
            ]
        )
        return loglik, gradient

    # ------------------------------------------------------------------
    # Forecasting.
    # ------------------------------------------------------------------
    def forecast_variance(self) -> float:
        """One-step-ahead conditional variance ``sigma_hat^2_t`` (eq. 6)."""
        if self.params_ is None or self._residuals is None:
            raise NotFittedError("call fit() before forecasting")
        assert self.conditional_variance_ is not None
        params = self.params_
        data = self._residuals
        variance = self.conditional_variance_
        value = params.omega
        for j in range(1, params.m + 1):
            value += params.alpha[j - 1] * data[-j] ** 2
        for j in range(1, params.s + 1):
            value += params.beta[j - 1] * variance[-j]
        return float(max(value, _VARIANCE_FLOOR))

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------
    @staticmethod
    def simulate(
        params: GARCHParams,
        n: int,
        rng: int | np.random.Generator | None = None,
        *,
        burn_in: int = 200,
        return_variance: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` GARCH shocks (optionally with their true variances).

        The generator follows eq. (5): ``a_i = sigma_i * eps_i`` with i.i.d.
        standard-normal ``eps``.  ``return_variance=True`` additionally
        returns the simulated ``sigma^2_i`` path, which the evaluation tests
        use as ground truth.
        """
        if n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {n}")
        params.validate()
        if params.persistence >= 1.0:
            raise EstimationError("cannot simulate a non-stationary GARCH process")
        generator = ensure_rng(rng)
        total = n + burn_in
        epsilon = generator.standard_normal(total)
        shocks = np.zeros(total)
        variance = np.full(total, params.unconditional_variance)
        for i in range(total):
            value = params.omega
            for j in range(1, params.m + 1):
                if i - j >= 0:
                    value += params.alpha[j - 1] * shocks[i - j] ** 2
                else:
                    value += params.alpha[j - 1] * params.unconditional_variance
            for j in range(1, params.s + 1):
                if i - j >= 0:
                    value += params.beta[j - 1] * variance[i - j]
                else:
                    value += params.beta[j - 1] * params.unconditional_variance
            variance[i] = max(value, _VARIANCE_FLOOR)
            shocks[i] = math.sqrt(variance[i]) * epsilon[i]
        if return_variance:
            return shocks[burn_in:], variance[burn_in:]
        return shocks[burn_in:]
