"""Pluggable executor backends for catalog-wide SELECT fan-out.

One :class:`~repro.service.executor.CatalogQueryService` delegates its
per-series work to an :class:`ExecutorBackend`.  Three implementations
cover the execution spectrum:

* :class:`SequentialBackend` — a plain loop, the parity reference every
  other backend must match bit-for-bit;
* :class:`ThreadBackend` — the historical default: one persistent
  :class:`~concurrent.futures.ThreadPoolExecutor` sharing the service's
  :class:`~repro.service.cache.MatrixCache`.  Scales where the per-task
  work releases the GIL (bulk numpy, file IO), serialises where it does
  not;
* :class:`ProcessBackend` — true multi-core execution over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Workers start under
  the ``spawn`` method (the only one safe on every platform and the
  default on macOS/Windows), warm a per-worker catalog cache via a
  spawn-safe initializer, and receive work as *chunks* of picklable
  :class:`~repro.service.planner.TaskEnvelope` objects so IPC overhead
  amortises across many series.  Combined with the store's layout-v2
  mmap segments, workers share page-cache pages instead of each
  rehydrating its own copy of every segment.

All backends consume envelopes and produce :class:`ResultEnvelope`
objects in input order; per-series failures travel *inside* the envelope
(as a message, never a pickled traceback) so one broken series aborts the
statement with a diagnostic naming that series.  A worker process dying
outright surfaces as :class:`~repro.exceptions.QueryError` naming every
series whose chunk was lost, and the pool is rebuilt lazily on the next
statement.
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Any

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import (
    InvalidParameterError,
    QueryError,
    ReproError,
)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.service.cache import MatrixCache
from repro.service.planner import KERNELS, TaskEnvelope
from repro.service.shm import (
    ArrayResult,
    ChunkDescriptor,
    PackedResult,
    ShmArena,
    compute_chunk,
    decode_result,
    pack_chunk,
    shm_available,
)
from repro.store.catalog import _load_view_from_segments

__all__ = [
    "BACKEND_NAMES",
    "ExecutorBackend",
    "ProcessBackend",
    "ResultEnvelope",
    "SequentialBackend",
    "ThreadBackend",
    "make_backend",
    "restrict_time_range",
    "run_envelope",
]

#: Histogram buckets for per-chunk shared-memory block sizes: the
#: default latency buckets top out at 60 (seconds) — useless for bytes.
_SHM_ALLOC_BUCKETS = (
    4096.0,
    65536.0,
    1048576.0,
    16777216.0,
    268435456.0,
)

#: Spellings accepted wherever a backend is selected by name (service
#: constructor, ``server serve --backend``, ``service query --backend``).
BACKEND_NAMES = ("sequential", "thread", "process")

#: Fault-injection hook for the crash tests: a worker *process* whose
#: chunk contains this series id exits hard before computing, simulating
#: an OOM kill / segfault mid-query.  Checked only on the process-pool
#: worker side — never in-process — so enabling it cannot kill the
#: service itself.
_CRASH_ENV = "REPRO_FAULT_WORKER_CRASH"


def restrict_time_range(
    view: ProbabilisticView, lo: float | None, hi: float | None
) -> ProbabilisticView:
    """The sub-view whose tuples satisfy ``lo <= t <= hi``.

    Returns the input unchanged when no bound cuts anything — the common
    unbounded query never copies columns.
    """
    if lo is None and hi is None:
        return view
    cols = view.columns
    mask = np.ones(cols.t.size, dtype=bool)
    if lo is not None:
        mask &= cols.t >= lo
    if hi is not None:
        mask &= cols.t <= hi
    if bool(mask.all()):
        return view
    indices = np.flatnonzero(mask)
    return ProbabilisticView.from_columns(
        view.name,
        cols.t[indices],
        cols.low[indices],
        cols.high[indices],
        cols.probability[indices],
        label_code=cols.label_code[indices],
        label_pool=cols.labels,
    )


@dataclass(frozen=True)
class ResultEnvelope:
    """What one envelope produced: a result or a one-line diagnostic.

    ``error`` carries the failure message instead of an exception object
    so the envelope pickles identically no matter which backend produced
    it — a worker process never ships a traceback across the pipe.

    ``load_s``/``compute_s``/``cache_hit`` are the worker-side trace
    span, carried as three plain numbers so it crosses a process
    boundary under any start method; the executor merges them into the
    parent :class:`~repro.obs.trace.QueryTrace`.  All three stay at
    their defaults when the producing backend ran with timings off.
    """

    series_id: str
    score: float
    result: Any
    error: str | None = None
    load_s: float = 0.0
    compute_s: float = 0.0
    cache_hit: bool = True


def run_envelope(
    envelope: TaskEnvelope,
    cache: MatrixCache,
    *,
    mmap: bool = False,
    timings: bool = True,
) -> ResultEnvelope:
    """Execute one envelope against a materialised-view cache.

    The single compute path every backend runs — sequentially, on a pool
    thread, or inside a worker process — which is what makes the parity
    guarantee (identical results across backends) structural rather than
    coincidental.  ``timings=True`` (the default) records the per-series
    load/compute split and cache outcome onto the result envelope;
    ``timings=False`` is the fully uninstrumented path the overhead
    benchmark baselines against.
    """
    spec = KERNELS[envelope.aggregate]
    hit = True
    load_s = 0.0
    compute_s = 0.0

    def _load() -> ProbabilisticView:
        nonlocal hit, load_s
        hit = False
        start = time.perf_counter() if timings else 0.0
        view = _load_view_from_segments(
            Path(envelope.directory),
            envelope.series_id,
            envelope.segments,
            mmap=mmap,
            shadows=envelope.shadows or None,
        )
        if timings:
            load_s = time.perf_counter() - start
        return view

    try:
        view = cache.get(envelope.cache_key, _load)
        start = time.perf_counter() if timings else 0.0
        view = restrict_time_range(view, envelope.time_lo, envelope.time_hi)
        result, score = spec.compute(
            view, envelope.arguments, envelope.series_id
        )
        if timings:
            compute_s = time.perf_counter() - start
    except (ReproError, OSError) as exc:
        # Loading counts too: in a fan-out over hundreds of series,
        # "which series is broken" is the whole diagnostic.
        return ResultEnvelope(
            series_id=envelope.series_id,
            score=0.0,
            result=None,
            error=(
                f"aggregate {envelope.aggregate!r} failed on series "
                f"{envelope.series_id!r}: {exc}"
            ),
            load_s=load_s,
            cache_hit=hit,
        )
    return ResultEnvelope(
        series_id=envelope.series_id,
        score=score,
        result=result,
        load_s=load_s,
        compute_s=compute_s,
        cache_hit=hit,
    )


class ExecutorBackend:
    """Strategy interface: run envelopes, return results in input order.

    Subclasses implement :meth:`_map`; the public :meth:`map` wraps it
    with the backend-tier instrumentation (task counter + fan-out latency
    histogram, labelled by backend name).  :meth:`close` releases any
    pool the backend holds and is idempotent.  ``name`` identifies the
    backend in stats output and benchmarks.
    """

    name: str = "abstract"
    max_workers: int = 1
    #: Worker-side load/compute timing on result envelopes (see
    #: :func:`run_envelope`); subclass ``__init__`` may turn it off.
    timings: bool = True
    #: How results travel from workers to the caller: ``"inline"`` for
    #: same-process backends, ``"shm"``/``"pickle"`` for the process
    #: backend depending on shared-memory availability.
    transport: str = "inline"

    def transport_stats(self) -> dict[str, Any]:
        """The transport mode and its counters (``server stats`` block)."""
        return {"mode": self.transport}

    def _init_metrics(self, registry: MetricsRegistry | None) -> None:
        """Bind this backend's metric families (call from ``__init__``)."""
        registry = default_registry() if registry is None else registry
        self.timings = bool(registry.enabled)
        self._obs_tasks = registry.counter(
            "repro_backend_tasks_total",
            "Per-series envelopes fanned out, by backend",
        )
        self._obs_map_seconds = registry.histogram(
            "repro_backend_map_seconds",
            "Wall time of one backend fan-out (map call), by backend",
        )

    def map(self, envelopes: list[TaskEnvelope]) -> list[ResultEnvelope]:
        start = time.perf_counter()
        try:
            return self._map(envelopes)
        finally:
            self._obs_tasks.inc(len(envelopes), backend=self.name)
            self._obs_map_seconds.observe(
                time.perf_counter() - start, backend=self.name
            )

    def _map(self, envelopes: list[TaskEnvelope]) -> list[ResultEnvelope]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default.
        pass

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"max_workers={self.max_workers})"
        )


class SequentialBackend(ExecutorBackend):
    """The parity reference: a plain in-order loop, no pool at all."""

    name = "sequential"

    def __init__(
        self,
        cache: MatrixCache,
        *,
        mmap: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.cache = cache
        self.mmap = bool(mmap)
        self.max_workers = 1
        self._init_metrics(registry)

    def _map(self, envelopes: list[TaskEnvelope]) -> list[ResultEnvelope]:
        return [
            run_envelope(
                envelope, self.cache, mmap=self.mmap, timings=self.timings
            )
            for envelope in envelopes
        ]


class ThreadBackend(ExecutorBackend):
    """Thread-pool fan-out sharing the service's matrix cache.

    The pool is created on first use and reused for the backend's
    lifetime — a warm statement must not pay pool setup.  A pool that was
    shut down underneath a live statement (a ``close()`` racing a late
    ``execute`` — the service-CLI shutdown path) surfaces as
    :class:`~repro.exceptions.QueryError` instead of a bare
    ``RuntimeError`` traceback.
    """

    name = "thread"

    def __init__(
        self,
        max_workers: int,
        cache: MatrixCache,
        *,
        mmap: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = int(max_workers)
        self.cache = cache
        self.mmap = bool(mmap)
        self._init_metrics(registry)
        # Lazy pool creation is locked: a server fans concurrent first
        # statements at one shared service, and an unsynchronised
        # check-then-set would build (and leak) duplicate pools.
        self._pool_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None

    def _map(self, envelopes: list[TaskEnvelope]) -> list[ResultEnvelope]:
        if self.max_workers == 1 or len(envelopes) <= 1:
            return [
                run_envelope(
                    envelope,
                    self.cache,
                    mmap=self.mmap,
                    timings=self.timings,
                )
                for envelope in envelopes
            ]
        try:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-service",
                    )
                pool = self._pool
            return list(
                pool.map(
                    lambda envelope: run_envelope(
                        envelope,
                        self.cache,
                        mmap=self.mmap,
                        timings=self.timings,
                    ),
                    envelopes,
                )
            )
        except RuntimeError as exc:
            # "cannot schedule new futures after (interpreter) shutdown".
            raise QueryError(
                f"catalog query service is shut down: {exc}"
            ) from exc

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Process backend: worker-process side.
# ----------------------------------------------------------------------
# Populated by _worker_init inside each worker process.  Module-level
# because ProcessPoolExecutor initializers cannot return state; spawn-safe
# because initialisation happens after the interpreter (re-)imports this
# module, never by inheriting parent memory.
_WORKER_CACHE: MatrixCache | None = None
_WORKER_MMAP: bool = False
_WORKER_TIMINGS: bool = True


def _worker_init(
    cache_budget_bytes: int, mmap: bool, timings: bool = True
) -> None:
    """Per-process warm state: one matrix cache, built once per worker."""
    global _WORKER_CACHE, _WORKER_MMAP, _WORKER_TIMINGS
    _WORKER_CACHE = MatrixCache(cache_budget_bytes)
    _WORKER_MMAP = bool(mmap)
    _WORKER_TIMINGS = bool(timings)


def _run_chunk(
    chunk: list[TaskEnvelope], shm_name: str | None = None
) -> "ChunkDescriptor | list[ArrayResult]":
    """Worker-side entry point: run one chunk against the warm cache.

    Results come back in array form (:func:`~repro.service.shm.compute_chunk`
    — batched kernels, no per-time boxing on the worker).  With a parent-
    assigned ``shm_name`` the arrays are packed into that shared-memory
    block and only the descriptor is pickled; without one — or when the
    block cannot be created (``/dev/shm`` full, platform without POSIX
    shm) — the array results themselves cross the pipe as the plain
    pickle fallback.  Either way the parent's decode builds identical
    result objects.
    """
    crash = os.environ.get(_CRASH_ENV)
    if crash and any(envelope.series_id == crash for envelope in chunk):
        os._exit(17)  # Fault injection: die like an OOM-killed worker.
    cache = _WORKER_CACHE
    if cache is None:  # pragma: no cover - initializer always ran.
        cache = MatrixCache()
    results = compute_chunk(
        chunk, cache, mmap=_WORKER_MMAP, timings=_WORKER_TIMINGS
    )
    if shm_name is not None:
        try:
            return pack_chunk(results, shm_name)
        except OSError:
            # Transport trouble must never change results: ship the
            # already-computed arrays through the pickle pipe instead.
            pass
    return results


def _envelope_from_arrays(
    packed: "PackedResult | ArrayResult", result: Any, score: float
) -> ResultEnvelope:
    """One decoded array-form result as the classic envelope."""
    if packed.error is not None:
        return ResultEnvelope(
            series_id=packed.series_id,
            score=0.0,
            result=None,
            error=packed.error,
            load_s=packed.load_s,
            cache_hit=packed.cache_hit,
        )
    return ResultEnvelope(
        series_id=packed.series_id,
        score=score,
        result=result,
        load_s=packed.load_s,
        compute_s=packed.compute_s,
        cache_hit=packed.cache_hit,
    )


class ProcessBackend(ExecutorBackend):
    """Process-pool fan-out: true multi-core, per-worker warm caches.

    Envelopes are batched into at most ``chunks_per_worker`` chunks per
    worker and each chunk crosses the pipe as one submission, so the
    per-task IPC cost amortises.  Workers always start under ``spawn`` —
    fork would duplicate the parent's pool locks and (on macOS) deadlock
    outright — and each builds its own :class:`MatrixCache`, so repeated
    statements hit worker-resident views exactly like the thread backend
    hits the shared one.

    Results come back through shared memory when the platform supports
    it (``transport == "shm"``): one block per chunk, allocated under a
    parent-assigned name from the backend's :class:`~repro.service.shm.ShmArena`
    so crashes can never orphan a block, with only a small descriptor
    pickled.  ``shm=None`` probes availability; ``shm=False`` (or
    ``REPRO_SHM_TRANSPORT=0``) forces the plain-pickle transport, and a
    worker that cannot allocate a block falls back per chunk — counted
    in :meth:`transport_stats`, never silently different results.

    ``mmap`` defaults to on: combined with layout-v2 segments the workers
    map the same bytes the page cache already holds.  The flag is a no-op
    for ``.npz`` segments.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int,
        *,
        cache_budget_bytes: int = 64 << 20,
        mmap: bool = True,
        chunks_per_worker: int = 2,
        shm: bool | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if chunks_per_worker < 1:
            raise InvalidParameterError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        self.max_workers = int(max_workers)
        self.cache_budget_bytes = int(cache_budget_bytes)
        self.mmap = bool(mmap)
        self.chunks_per_worker = int(chunks_per_worker)
        self.shm = shm_available() if shm is None else (
            bool(shm) and shm_available()
        )
        self.transport = "shm" if self.shm else "pickle"
        self._arena = ShmArena()
        self._transport_lock = threading.Lock()
        self._shm_chunks = 0
        self._pickle_chunks = 0
        self._shm_fallbacks = 0
        self._shm_bytes = 0
        self._init_metrics(registry)
        registry_resolved = (
            default_registry() if registry is None else registry
        )
        self._obs_shm_bytes = registry_resolved.counter(
            "repro_backend_shm_bytes_total",
            "Result bytes shipped through shared-memory blocks, by backend",
        )
        self._obs_shm_alloc = registry_resolved.histogram(
            "repro_backend_shm_alloc_bytes",
            "Size of one per-chunk shared-memory arena allocation",
            buckets=_SHM_ALLOC_BUCKETS,
        )
        # Locked for the same reason as ThreadBackend — doubly so here,
        # where a duplicate pool leaks whole worker *processes*.
        self._pool_lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None

    def transport_stats(self) -> dict[str, Any]:
        """Transport mode plus shm/pickle chunk counters for stats output."""
        with self._transport_lock:
            return {
                "mode": self.transport,
                "shm_chunks": self._shm_chunks,
                "pickle_chunks": self._pickle_chunks,
                "shm_fallbacks": self._shm_fallbacks,
                "shm_bytes": self._shm_bytes,
            }

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=get_context("spawn"),
                    initializer=_worker_init,
                    initargs=(
                        self.cache_budget_bytes,
                        self.mmap,
                        self.timings,
                    ),
                )
            return self._pool

    def _chunks(
        self, envelopes: list[TaskEnvelope]
    ) -> list[list[TaskEnvelope]]:
        size = max(
            1,
            math.ceil(
                len(envelopes) / (self.max_workers * self.chunks_per_worker)
            ),
        )
        return [
            envelopes[start : start + size]
            for start in range(0, len(envelopes), size)
        ]

    def _collect(
        self, outcome: "ChunkDescriptor | list[ArrayResult]", name: str | None
    ) -> list[ResultEnvelope]:
        """Rehydrate one chunk's worker outcome, whichever transport ran."""
        if isinstance(outcome, ChunkDescriptor):
            decoded = self._arena.unpack(outcome)
            with self._transport_lock:
                self._shm_chunks += 1
                self._shm_bytes += outcome.nbytes
            self._obs_shm_bytes.inc(outcome.nbytes, backend=self.name)
            self._obs_shm_alloc.observe(
                float(outcome.nbytes), backend=self.name
            )
            return [
                _envelope_from_arrays(packed, result, score)
                for packed, result, score in decoded
            ]
        envelopes: list[ResultEnvelope] = []
        for arrays in outcome:
            if arrays.error is not None:
                envelopes.append(_envelope_from_arrays(arrays, None, 0.0))
                continue
            result, score = decode_result(arrays)
            envelopes.append(_envelope_from_arrays(arrays, result, score))
        with self._transport_lock:
            self._pickle_chunks += 1
            if name is not None:
                # A block was assigned but the worker could not use it.
                self._shm_fallbacks += 1
        return envelopes

    def _map(self, envelopes: list[TaskEnvelope]) -> list[ResultEnvelope]:
        if not envelopes:
            return []
        chunks = self._chunks(envelopes)
        names: list[str | None] = [
            self._arena.next_name() if self.shm else None for _ in chunks
        ]
        # Every name a worker might have turned into a block; entries
        # leave the set once the parent has consumed (and unlinked) the
        # block, and the finally sweep reaps whatever remains — the
        # crash/error paths can never leak a segment.
        pending = {name for name in names if name is not None}
        try:
            try:
                pool = self._ensure_pool()
                futures = [
                    pool.submit(_run_chunk, chunk, name)
                    for chunk, name in zip(chunks, names)
                ]
            except RuntimeError as exc:
                raise QueryError(
                    f"catalog query service is shut down: {exc}"
                ) from exc
            results: list[ResultEnvelope] = []
            lost: list[str] = []
            broken: BaseException | None = None
            for future, chunk, name in zip(futures, chunks, names):
                try:
                    results.extend(self._collect(future.result(), name))
                except BrokenExecutor as exc:
                    broken = exc
                    lost.extend(envelope.series_id for envelope in chunk)
                    continue
                pending.discard(name)
            if broken is not None:
                # The pool is dead; drop it so the next statement
                # rebuilds a fresh one instead of failing forever.
                # Another statement may have raced to the same
                # conclusion — only tear down the pool this map used.
                with self._pool_lock:
                    if self._pool is pool:
                        self._pool = None
                pool.shutdown(wait=False, cancel_futures=True)
                raise QueryError(
                    f"worker process died while computing series "
                    f"{sorted(set(lost))}: {broken}"
                ) from broken
            return results
        finally:
            for name in pending:
                self._arena.reap(name)

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def make_backend(
    backend: "str | ExecutorBackend",
    *,
    max_workers: int | None = None,
    cache: MatrixCache,
    cache_budget_bytes: int = 64 << 20,
    mmap: bool | None = None,
    shm: bool | None = None,
    registry: MetricsRegistry | None = None,
) -> ExecutorBackend:
    """Resolve a backend spec (name or instance) into an instance.

    ``max_workers=None`` picks ``min(16, cpus + 4)`` for threads (IO-ish
    work overlaps beyond the core count) but exactly ``cpus`` for
    processes (a process per core is the point; more only costs memory).
    ``mmap=None`` resolves to on for the process backend and off
    otherwise.  ``shm`` (process backend only) selects the result
    transport: ``None`` probes shared-memory availability, ``False``
    forces the pickle fallback.  A ``max_workers=1`` thread backend
    degrades to the sequential reference — same per-task code, no pool.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    if backend not in BACKEND_NAMES:
        raise InvalidParameterError(
            f"unknown executor backend {backend!r}; "
            f"one of {', '.join(BACKEND_NAMES)}"
        )
    cpus = os.cpu_count() or 1
    if max_workers is None:
        max_workers = cpus if backend == "process" else min(16, cpus + 4)
    if max_workers < 1:
        raise InvalidParameterError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    if backend == "process":
        return ProcessBackend(
            max_workers,
            cache_budget_bytes=cache_budget_bytes,
            mmap=True if mmap is None else mmap,
            shm=shm,
            registry=registry,
        )
    mmap = False if mmap is None else mmap
    if backend == "sequential" or max_workers == 1:
        return SequentialBackend(cache, mmap=mmap, registry=registry)
    return ThreadBackend(max_workers, cache, mmap=mmap, registry=registry)
