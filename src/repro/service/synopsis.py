"""Zone-map pruning and synopsis-only APPROX estimation.

The planner consults this module twice:

* **Exact pruning** (:func:`prune_segments`) — given a series snapshot
  and a bound query, which segments can *provably* not contribute?  The
  rules are deliberately conservative so pruned execution is
  bit-identical to unpruned execution:

  - *Time pruning* (all aggregates): a segment whose ``[t_min, t_max]``
    misses the WHERE range entirely holds only rows
    :func:`~repro.service.backends.restrict_time_range` would discard.
    Each distinct time's tuples live in exactly one segment (appends emit
    whole-time matrix rows and times never repeat across appends; static
    views are single-segment), so dropping the segment removes no
    per-time result group and no surviving row.
  - *Probability pruning* (``threshold`` only): a segment with
    ``prob_max < tau`` holds no row satisfying ``probability >= tau``.
    The other aggregates return per-time mappings that include zero
    entries, so value-based dropping would change result *keys* — those
    aggregates only ever prune on time.

  A segment without a synopsis always survives — old catalogs run
  unpruned rather than wrongly.

* **APPROX estimation** (:func:`estimate_series`) — answer an aggregate
  from synopses alone, returning an interval ``[lower, upper]`` that
  provably contains the exact answer plus a point estimate inside it.
  The discipline throughout: *lower* bounds may only use segments fully
  covered by the WHERE range (their times are all guaranteed to
  contribute), while *upper* bounds take every intersecting segment;
  when no segment is fully covered the interval is widened to include
  0.0, because the exact result could be empty (score 0).  Since the
  estimate is clamped into the interval, ``|exact - estimate| <=
  error_bound`` where ``error_bound = max(estimate - lower,
  upper - estimate)``.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any

from repro.store.binary import PROB_HIST_BUCKETS
from repro.store.catalog import RevisionFrontier, SeriesSnapshot

__all__ = [
    "ApproxEstimate",
    "estimate_series",
    "prune_segments",
    "segment_contributes",
]

Synopsis = dict[str, Any]


# ----------------------------------------------------------------------
# Exact pruning.
# ----------------------------------------------------------------------
def _overlaps(synopsis: Synopsis, lo: float | None, hi: float | None) -> bool:
    """Whether the segment's time range intersects the inclusive WHERE range."""
    if lo is not None and synopsis["t_max"] < lo:
        return False
    if hi is not None and synopsis["t_min"] > hi:
        return False
    return True


def _covered(synopsis: Synopsis, lo: float | None, hi: float | None) -> bool:
    """Whether every time of the segment lies inside the WHERE range."""
    if lo is not None and synopsis["t_min"] < lo:
        return False
    if hi is not None and synopsis["t_max"] > hi:
        return False
    return True


def segment_contributes(
    synopsis: Synopsis | None,
    aggregate: str,
    arguments: tuple[float, ...],
    lo: float | None,
    hi: float | None,
) -> bool:
    """False only when the synopsis *proves* the segment cannot matter."""
    if synopsis is None:
        return True  # No synopsis, no proof: must scan.
    if not synopsis.get("rows"):
        return False  # A provably empty segment contributes nothing.
    if not _overlaps(synopsis, lo, hi):
        return False
    if aggregate == "threshold" and synopsis["prob_max"] < arguments[0]:
        return False
    return True


def prune_segments(
    source: SeriesSnapshot | RevisionFrontier,
    aggregate: str,
    arguments: tuple[float, ...],
    lo: float | None,
    hi: float | None,
) -> tuple[str, ...]:
    """The source's segments that must be scanned, in stored order.

    ``source`` is either a full :class:`SeriesSnapshot` or a resolved
    :class:`RevisionFrontier` (the AS OF view: only segments visible at
    the knowledge time, with their stored synopses).  Stored synopses
    stay conservative-safe for partially-shadowed segments — shadowing
    only *removes* rows, so a segment whose full synopsis proves
    non-contribution certainly cannot contribute after masking.

    Preserving the stored order matters: the surviving segments are
    column-concatenated exactly as the full list would be, so row order
    (and therefore ``threshold``'s tuple order) is unchanged.
    """
    getter = getattr(source, "segment_synopses", None)
    synopses = getter() if callable(getter) else source.synopses
    return tuple(
        name
        for name, synopsis in zip(source.segments, synopses)
        if segment_contributes(synopsis, aggregate, arguments, lo, hi)
    )


# ----------------------------------------------------------------------
# APPROX estimation.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ApproxEstimate:
    """A synopsis-only answer: a point estimate inside a proven interval."""

    estimate: float
    lower: float
    upper: float

    @property
    def error_bound(self) -> float:
        """``|exact - estimate|`` can never exceed this."""
        return max(self.estimate - self.lower, self.upper - self.estimate)

    def as_result(self) -> dict[str, float]:
        return {
            "estimate": self.estimate,
            "error_bound": self.error_bound,
            "lower": self.lower,
            "upper": self.upper,
        }


def _clamp(value: float, lo: float, hi: float) -> float:
    return min(max(value, lo), hi)


def _coverage_fraction(
    synopsis: Synopsis, lo: float | None, hi: float | None
) -> float:
    """Estimated fraction of the segment's times inside the WHERE range.

    Heuristic (times assumed uniform over the span) — used only for
    point estimates, never for bounds.
    """
    if _covered(synopsis, lo, hi):
        return 1.0
    t_min, t_max = synopsis["t_min"], synopsis["t_max"]
    span = t_max - t_min + 1
    inside_lo = t_min if lo is None else max(t_min, math.ceil(lo))
    inside_hi = t_max if hi is None else min(t_max, math.floor(hi))
    return max(0.0, (inside_hi - inside_lo + 1) / span)


def _threshold_counts(synopsis: Synopsis, tau: float) -> tuple[int, int, float]:
    """``(guaranteed, possible, estimated)`` tuples with ``p >= tau``.

    Bucket ``j`` of the probability histogram holds tuples with
    ``j/B <= p < (j+1)/B`` by *exact* float comparison (the writer
    bucketed against the same ``j/B`` values computed here), so
    ``guaranteed`` counts whole buckets at or above ``tau`` and
    ``possible`` adds the straddling bucket.  The estimate assumes the
    straddling bucket is uniformly filled.
    """
    if synopsis["prob_max"] < tau:
        return 0, 0, 0.0
    buckets = PROB_HIST_BUCKETS
    hist = synopsis["prob_hist"]
    guaranteed = possible = 0
    estimated = 0.0
    for j in range(buckets):
        lo_edge = j / buckets
        hi_edge = (j + 1) / buckets
        if lo_edge >= tau:
            guaranteed += hist[j]
            possible += hist[j]
            estimated += hist[j]
        elif j == buckets - 1 or tau < hi_edge:
            # Straddling bucket: members may sit on either side of tau.
            # (The last bucket is closed at 1.0, so it straddles whenever
            # prob_max allows — already ruled out above when it cannot.)
            possible += hist[j]
            fraction = (hi_edge - tau) * buckets
            estimated += hist[j] * _clamp(fraction, 0.0, 1.0)
    return guaranteed, possible, estimated


def _exceedance_bounds(
    synopsis: Synopsis, theta: float
) -> tuple[float, float, float]:
    """``(lower, upper, estimated)`` for ``max_t P(value > theta)``.

    Exceedance is non-increasing in ``theta``, so the sketch values at
    the grid edges bracketing ``theta`` bound the true maximum; the
    estimate interpolates linearly between them.
    """
    edges = synopsis["exc_edges"]
    values = synopsis["exc_max"]
    if theta <= edges[0]:
        # At or below the support: every range lies fully above, so the
        # per-time exceedance is exactly min(mass, 1).
        exact = min(synopsis["mass_max"], 1.0)
        return exact, exact, exact
    if theta > edges[-1]:
        return 0.0, 0.0, 0.0  # Above the support: exactly zero.
    if theta == edges[-1]:
        return values[-1], values[-1], values[-1]
    j = bisect_right(edges, theta) - 1  # edges[j] <= theta < edges[j+1]
    lower, upper = values[j + 1], values[j]
    width = edges[j + 1] - edges[j]
    if width <= 0.0:
        return lower, upper, upper
    estimated = upper + (lower - upper) * (theta - edges[j]) / width
    return lower, upper, _clamp(estimated, lower, upper)


def _estimate_threshold(
    segments: list[Synopsis],
    tau: float,
    lo: float | None,
    hi: float | None,
) -> ApproxEstimate:
    lower = upper = 0
    estimated = 0.0
    for synopsis in segments:
        guaranteed, possible, segment_est = _threshold_counts(synopsis, tau)
        if _covered(synopsis, lo, hi):
            lower += guaranteed
            estimated += segment_est
        else:
            estimated += segment_est * _coverage_fraction(synopsis, lo, hi)
        upper += possible
    return ApproxEstimate(
        estimate=_clamp(estimated, float(lower), float(upper)),
        lower=float(lower),
        upper=float(upper),
    )


def _estimate_expected_value(
    segments: list[Synopsis],
    lo: float | None,
    hi: float | None,
) -> ApproxEstimate:
    if not segments:
        return ApproxEstimate(0.0, 0.0, 0.0)
    lower = min(synopsis["ev_min"] for synopsis in segments)
    upper = max(synopsis["ev_max"] for synopsis in segments)
    if not any(_covered(synopsis, lo, hi) for synopsis in segments):
        # Possibly no time contributes at all: the exact score would be 0.
        lower = min(lower, 0.0)
        upper = max(upper, 0.0)
    weighted = count = 0.0
    for synopsis in segments:
        fraction = _coverage_fraction(synopsis, lo, hi)
        weighted += synopsis["ev_sum"] * fraction
        count += synopsis["times"] * fraction
    estimated = weighted / count if count > 0.0 else 0.0
    return ApproxEstimate(_clamp(estimated, lower, upper), lower, upper)


def _estimate_exceedance(
    segments: list[Synopsis],
    theta: float,
    lo: float | None,
    hi: float | None,
) -> ApproxEstimate:
    lower = upper = estimated = 0.0
    for synopsis in segments:
        seg_lower, seg_upper, seg_est = _exceedance_bounds(synopsis, theta)
        if _covered(synopsis, lo, hi):
            lower = max(lower, seg_lower)
        upper = max(upper, seg_upper)
        estimated = max(estimated, seg_est)
    return ApproxEstimate(_clamp(estimated, lower, upper), lower, upper)


def _estimate_time_above(
    segments: list[Synopsis],
    theta: float,
    window: int,
    lo: float | None,
    hi: float | None,
) -> ApproxEstimate:
    peak_upper = 0.0
    peak_lower = 0.0
    covered_times = 0
    for synopsis in segments:
        seg_lower, seg_upper, _ = _exceedance_bounds(synopsis, theta)
        if _covered(synopsis, lo, hi):
            peak_lower = max(peak_lower, seg_lower)
            covered_times += int(synopsis["times"])
        peak_upper = max(peak_upper, seg_upper)
    upper = min(float(window), window * peak_upper) if segments else 0.0
    # A window sum dominates the single best time only when at least one
    # full window of guaranteed-contributing times exists.
    lower = peak_lower if covered_times >= window else 0.0
    return ApproxEstimate((lower + upper) / 2.0, lower, upper)


def estimate_series(
    aggregate: str,
    arguments: tuple[float, ...],
    synopses: list[Synopsis],
    lo: float | None,
    hi: float | None,
) -> ApproxEstimate:
    """Estimate one series' score for ``aggregate`` from synopses alone.

    ``synopses`` must cover every segment (the executor computes missing
    ones lazily before calling).  The returned interval contains the
    exact score whenever the exact query is well-defined — ``time_above``
    raises on non-contiguous or too-short views, which no synopsis can
    detect; APPROX answers those with its interval instead of raising.
    """
    live = [
        synopsis
        for synopsis in synopses
        if synopsis.get("rows") and _overlaps(synopsis, lo, hi)
    ]
    if aggregate == "threshold":
        return _estimate_threshold(live, arguments[0], lo, hi)
    if aggregate == "expected_value":
        return _estimate_expected_value(live, lo, hi)
    if aggregate == "exceedance":
        return _estimate_exceedance(live, arguments[0], lo, hi)
    if aggregate == "time_above":
        return _estimate_time_above(
            live, arguments[0], int(arguments[1]), lo, hi
        )
    raise ValueError(f"no APPROX estimator for aggregate {aggregate!r}")
