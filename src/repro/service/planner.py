"""Physical planning: lower logical plans into per-series tasks.

A parsed :class:`~repro.view.sql.SelectQuery` /
:class:`~repro.view.sql.SimulateQuery` is inert text.  This module builds
its logical tree (:mod:`repro.service.plan`: scan → prune → kernels →
combine → finalize) and lowers it against a catalog: every kernel name
resolves against the registry (argument arity and domains checked up
front, not deep in a worker thread), the ``SERIES`` glob expands against
the catalog manifest, the prune node consults segment synopses, and each
matched series becomes one :class:`SeriesTask` carrying a read-only
:class:`~repro.store.catalog.SeriesSnapshot` plus its cache key.  The
executor (:mod:`repro.service.executor`) then runs tasks in any order, on
any thread or process, without touching shared catalog state.

Kernels map onto the one-shot query functions of :mod:`repro.db` — the
paper's point that standard probabilistic query machinery applies
directly.  Aggregate kernels also define a per-series *score*, the scalar
``TOP k`` ranks by; the ``simulate`` kernel samples possible worlds
(:mod:`repro.db.worlds`) under deterministic per-series seeding, and
``probability_of`` answers the BQL-style row expression exactly via
:func:`~repro.db.worlds.conjunctive_range_query`.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.db.queries import expected_value_query, threshold_query
from repro.db.stream_queries import (
    exceedance_probability,
    expected_time_above,
)
from repro.db.worlds import (
    WorldSampler,
    conjunctive_range_query,
    derive_series_seed,
)
from repro.exceptions import InvalidParameterError, QueryError
from repro.obs.trace import NULL_TRACE
from repro.service.plan import FinalizeNode, logical_plan
from repro.service.plan import explain as explain_logical
from repro.service.synopsis import prune_segments
from repro.store.catalog import Catalog, SeriesSnapshot
from repro.util.rng import DEFAULT_SEED
from repro.view.sql import SelectItem, SelectQuery, SimulateQuery

__all__ = [
    "AGGREGATES",
    "APPROX_KERNELS",
    "AggregateSpec",
    "ItemPlan",
    "KERNELS",
    "KernelSpec",
    "PlanStats",
    "QueryPlan",
    "SeriesTask",
    "TaskEnvelope",
    "plan_select",
    "plan_statement",
]


def _compute_threshold(
    view: ProbabilisticView, arguments: tuple[float, ...], series_id: str
) -> tuple[Any, float]:
    hits = threshold_query(view, arguments[0])
    return hits, float(len(hits))


def _compute_expected_value(
    view: ProbabilisticView, arguments: tuple[float, ...], series_id: str
) -> tuple[Any, float]:
    values = expected_value_query(view)
    score = sum(values.values()) / len(values) if values else 0.0
    return values, float(score)


def _compute_exceedance(
    view: ProbabilisticView, arguments: tuple[float, ...], series_id: str
) -> tuple[Any, float]:
    values = exceedance_probability(view, arguments[0])
    return values, float(max(values.values(), default=0.0))


def _compute_time_above(
    view: ProbabilisticView, arguments: tuple[float, ...], series_id: str
) -> tuple[Any, float]:
    values = expected_time_above(view, arguments[0], int(arguments[1]))
    return values, float(max(values.values(), default=0.0))


def _compute_probability_of(
    view: ProbabilisticView, arguments: tuple[float, ...], series_id: str
) -> tuple[Any, float]:
    """Per-time P(value in the half-open range) — the BQL row expression.

    Each time is one single-predicate
    :func:`~repro.db.worlds.conjunctive_range_query` over the view's
    block-independent-disjoint tuples, so the result is exact (the
    probability mass of every overlapping alternative, scaled by its
    overlap fraction) rather than a Monte Carlo estimate.
    """
    low, high = arguments
    values = {
        int(t): conjunctive_range_query(view, {int(t): (low, high)})
        for t in view.times
    }
    return values, float(max(values.values(), default=0.0))


def _compute_simulate(
    view: ProbabilisticView, arguments: tuple[float, ...], series_id: str
) -> tuple[Any, float]:
    """Draw ``n_worlds`` complete possible worlds for one series.

    The sampling stream is seeded from ``(seed, series_id)`` alone
    (:func:`~repro.db.worlds.derive_series_seed`), so the drawn worlds
    are bit-identical no matter which backend, worker, or fan-out order
    executed the series.  Each world serialises as ``[t, value]`` pairs
    in ascending time order, ``value`` ``None`` for the OUTSIDE
    alternative.
    """
    n_worlds = int(arguments[0])
    seed = int(arguments[1])
    rng = np.random.default_rng(derive_series_seed(seed, series_id))
    sampler = WorldSampler(view)
    times = [int(t) for t in view.times]
    worlds = []
    for _ in range(n_worlds):
        world = sampler.sample(rng)
        worlds.append([[t, world.values[t]] for t in times])
    return worlds, float(len(times))


def _check_tau(arguments: tuple[float, ...]) -> tuple[float, ...]:
    if not 0.0 <= arguments[0] <= 1.0:
        raise InvalidParameterError(
            f"threshold(tau) needs tau in [0, 1], got {arguments[0]}"
        )
    return arguments


def _check_window(arguments: tuple[float, ...]) -> tuple[float, ...]:
    window = arguments[1]
    if window != int(window) or window < 1:
        raise InvalidParameterError(
            f"time_above(threshold, window) needs an integer window >= 1, "
            f"got {window}"
        )
    return (arguments[0], float(int(window)))


def _check_value_range(arguments: tuple[float, ...]) -> tuple[float, ...]:
    if arguments[1] < arguments[0]:
        raise InvalidParameterError(
            f"probability_of(low, high) range is inverted: "
            f"[{arguments[0]}, {arguments[1]}]"
        )
    return arguments


def _check_simulate(arguments: tuple[float, ...]) -> tuple[float, ...]:
    n_worlds, seed = arguments
    if n_worlds != int(n_worlds) or n_worlds < 1:
        raise InvalidParameterError(
            f"simulate(n_worlds, seed) needs an integer n_worlds >= 1, "
            f"got {n_worlds}"
        )
    if seed != int(seed) or seed < 0:
        raise InvalidParameterError(
            f"simulate(n_worlds, seed) needs an integer seed >= 0, "
            f"got {seed}"
        )
    return (float(int(n_worlds)), float(int(seed)))


@dataclass(frozen=True)
class KernelSpec:
    """One per-series kernel: arity, domain checks, and computation.

    ``compute(view, arguments, series_id)`` returns ``(result, score)``
    where ``result`` is whatever the underlying one-shot query returns
    for that series and ``score`` the scalar used for ``TOP k`` ranking.
    ``empty`` synthesises the exact result the kernel returns over an
    empty restricted view — what the executor emits for series the prune
    phase skipped entirely.
    """

    name: str
    parameters: tuple[str, ...]
    compute: Callable[
        [ProbabilisticView, tuple[float, ...], str], tuple[Any, float]
    ]
    score_label: str
    validate: Callable[[tuple[float, ...]], tuple[float, ...]] | None = None
    empty: Callable[[tuple[float, ...]], Any] | None = None

    def bind(self, arguments: tuple[float, ...]) -> tuple[float, ...]:
        """Check arity and domains; returns the normalised arguments."""
        if len(arguments) != len(self.parameters):
            expected = ", ".join(self.parameters) or "no arguments"
            raise InvalidParameterError(
                f"{self.name} takes ({expected}), got {len(arguments)} "
                f"argument(s)"
            )
        return self.validate(arguments) if self.validate else arguments

    def empty_result(self, arguments: tuple[float, ...]) -> Any:
        """The exact result over an empty (fully pruned) view."""
        if self.empty is not None:
            return self.empty(arguments)
        return {}


#: Backwards-compatible alias: the registry entries used to be
#: aggregate-only, and external callers may still import the old name.
AggregateSpec = KernelSpec


#: Kernels usable in a SELECT list, keyed by grammar name.
AGGREGATES: dict[str, KernelSpec] = {
    spec.name: spec
    for spec in (
        KernelSpec(
            name="threshold",
            parameters=("tau",),
            compute=_compute_threshold,
            score_label="hits",
            validate=_check_tau,
            empty=lambda arguments: [],
        ),
        KernelSpec(
            name="expected_value",
            parameters=(),
            compute=_compute_expected_value,
            score_label="mean_ev",
        ),
        KernelSpec(
            name="exceedance",
            parameters=("threshold",),
            compute=_compute_exceedance,
            score_label="max_p",
        ),
        KernelSpec(
            name="time_above",
            parameters=("threshold", "window"),
            compute=_compute_time_above,
            score_label="max_expected_count",
            validate=_check_window,
        ),
        KernelSpec(
            name="probability_of",
            parameters=("low", "high"),
            compute=_compute_probability_of,
            score_label="max_p",
            validate=_check_value_range,
        ),
    )
}

#: The statement-level SIMULATE kernel (not addressable from a SELECT list).
SIMULATE_KERNEL = KernelSpec(
    name="simulate",
    parameters=("n_worlds", "seed"),
    compute=_compute_simulate,
    score_label="times",
    validate=_check_simulate,
    empty=lambda arguments: [[] for _ in range(int(arguments[0]))],
)

#: Every kernel a worker can be asked to run, keyed by envelope name.
KERNELS: dict[str, KernelSpec] = {
    **AGGREGATES,
    SIMULATE_KERNEL.name: SIMULATE_KERNEL,
}

#: Kernels with a synopsis-only estimator (``SELECT APPROX ...``).
APPROX_KERNELS = frozenset(
    ("threshold", "expected_value", "exceedance", "time_above")
)


@dataclass(frozen=True)
class PlanStats:
    """What the prune phase decided — the per-query observability record.

    ``segments_scanned + segments_pruned == segments_total`` for exact
    plans; APPROX plans report how many segments had to be *loaded* to
    compute a missing synopsis lazily (ideally zero on a synopsized
    catalog) under ``segments_scanned``.
    """

    series_matched: int = 0
    series_skipped: int = 0
    segments_total: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    approx: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "series_matched": self.series_matched,
            "series_skipped": self.series_skipped,
            "segments_total": self.segments_total,
            "segments_scanned": self.segments_scanned,
            "segments_pruned": self.segments_pruned,
            "approx": self.approx,
        }


@dataclass(frozen=True)
class SeriesTask:
    """One unit of fan-out work: a snapshot plus its cache identity.

    ``segments`` is the (possibly pruned) subset of the revision
    frontier's visible segments this task must actually scan;
    ``shadows`` aligns with it, carrying the valid-time intervals newer
    revisions override (empty everywhere on a never-revised series).
    The cache key's fourth component distinguishes pruned
    materialisations from the full visible list (``()`` marks the full
    list) and its fifth is the frontier token, so warm entries never
    leak across ``AS OF`` points.  ``synopses`` (frontier-aligned with
    ``segments``) feeds the APPROX estimator; exact tasks leave it
    empty.
    """

    snapshot: SeriesSnapshot
    segments: tuple[str, ...]
    cache_key: tuple[str, str, tuple, tuple, tuple]
    shadows: tuple[tuple[tuple[int, int], ...], ...] = ()
    synopses: tuple[dict[str, Any] | None, ...] = ()

    @property
    def series_id(self) -> str:
        return self.snapshot.series_id


@dataclass(frozen=True)
class TaskEnvelope:
    """The picklable, self-contained form of one per-series unit of work.

    Everything a worker — a pool thread *or a separate process* — needs to
    compute one series' contribution: where the (surviving) segments live,
    which kernel to run (by registry name, so the callable never crosses a
    process boundary), its already-validated arguments, and the cache key
    identifying the materialised view.  Plain strings/tuples throughout so
    the envelope pickles cheaply under any multiprocessing start method.
    """

    series_id: str
    directory: str
    segments: tuple[str, ...]
    cache_key: tuple[str, str, tuple, tuple, tuple]
    aggregate: str
    arguments: tuple[float, ...]
    time_lo: float | None
    time_hi: float | None
    #: Per-segment shadow intervals (aligned with ``segments``): rows at
    #: these valid times were superseded by newer visible revisions and
    #: are dropped at load.  All-empty on never-revised series, keeping
    #: that load path bit-identical.
    shadows: tuple[tuple[tuple[int, int], ...], ...] = ()


@dataclass(frozen=True)
class ItemPlan:
    """One kernel of a statement, bound and pruned: the per-item physical plan.

    The prune phase ran at planning time — per item, because kernels
    prune differently (``threshold`` drops segments on probability, the
    rest on time alone): ``tasks`` holds only series with at least one
    surviving segment, ``skipped`` the matched series whose every segment
    was proven irrelevant.  ``stats`` records what pruning did for *this*
    item, so a multi-aggregate statement reports exactly what each
    aggregate would report standalone.
    """

    kernel: KernelSpec
    arguments: tuple[float, ...]
    tasks: tuple[SeriesTask, ...]
    skipped: tuple[str, ...]
    stats: PlanStats
    time_lo: float | None = None
    time_hi: float | None = None
    column: str | None = None

    @property
    def series_ids(self) -> list[str]:
        """Every matched series id (scanned and skipped), sorted."""
        return sorted(
            [task.series_id for task in self.tasks] + list(self.skipped)
        )

    def envelope(self, task: SeriesTask) -> TaskEnvelope:
        """The backend-facing form of one of this item's tasks."""
        return TaskEnvelope(
            series_id=task.series_id,
            directory=str(task.snapshot.directory),
            segments=task.segments,
            cache_key=task.cache_key,
            aggregate=self.kernel.name,
            arguments=self.arguments,
            time_lo=self.time_lo,
            time_hi=self.time_hi,
            shadows=task.shadows,
        )

    def label(self) -> str:
        """The item as written: ``exceedance(21)``, ``PROBABILITY OF ...``."""
        if self.kernel.name == "probability_of":
            low, high = self.arguments
            column = self.column or "v"
            return f"PROBABILITY OF {column} BETWEEN {low:g} AND {high:g}"
        if self.kernel.name == "simulate":
            n_worlds, seed = self.arguments
            return f"simulate({int(n_worlds)} worlds, seed {int(seed)})"
        if self.arguments:
            rendered = ", ".join(f"{a:g}" for a in self.arguments)
            return f"{self.kernel.name}({rendered})"
        return self.kernel.name


@dataclass(frozen=True)
class QueryPlan:
    """A bound, executable form of one statement: the physical plan.

    ``items`` holds one :class:`ItemPlan` per kernel of the statement
    (one for a classic single-aggregate SELECT or a SIMULATE, several for
    a multi-aggregate select list); ``logical`` the inert logical tree it
    was lowered from.  The single-item accessors (``aggregate``,
    ``arguments``, ``tasks``, ``skipped``, ``stats``, ``envelope``) read
    the first item, keeping every pre-plan-tree caller working unchanged.
    """

    query: SelectQuery | SimulateQuery
    items: tuple[ItemPlan, ...]
    logical: FinalizeNode | None = field(
        default=None, compare=False, repr=False
    )

    # -- legacy single-item accessors ----------------------------------
    @property
    def aggregate(self) -> KernelSpec:
        return self.items[0].kernel

    @property
    def arguments(self) -> tuple[float, ...]:
        return self.items[0].arguments

    @property
    def tasks(self) -> tuple[SeriesTask, ...]:
        return self.items[0].tasks

    @property
    def skipped(self) -> tuple[str, ...]:
        return self.items[0].skipped

    @property
    def stats(self) -> PlanStats:
        return self.items[0].stats

    @property
    def series_ids(self) -> list[str]:
        """Every matched series id (scanned and skipped), sorted."""
        return self.items[0].series_ids

    def envelope(self, task: SeriesTask) -> TaskEnvelope:
        """The backend-facing form of one first-item task."""
        return self.items[0].envelope(task)

    def describe(self) -> str:
        first = self.items[0]
        labels = ", ".join(item.label() for item in self.items)
        mode = "APPROX " if first.stats.approx else ""
        return (
            f"{mode}{labels} over {len(first.tasks)} "
            f"series of {self.query.catalog_path} "
            f"({first.stats.segments_pruned} segments pruned, "
            f"{first.stats.series_skipped} series skipped)"
        )

    def explain(self) -> str:
        """The logical tree this plan was lowered from, rendered."""
        if self.logical is None:
            return self.describe()
        return explain_logical(self.logical)


def resolve_aggregate(name: str) -> KernelSpec:
    """The registered SELECT-list kernel for ``name`` (case already lowered)."""
    spec = AGGREGATES.get(name)
    if spec is None:
        raise QueryError(
            f"unknown aggregate {name!r}; one of {', '.join(sorted(AGGREGATES))}"
        )
    return spec


def _check_time_range(query: SelectQuery | SimulateQuery) -> None:
    """Guard programmatically built queries (the parser rejects earlier)."""
    if (
        query.time_lo is not None
        and query.time_hi is not None
        and query.time_hi < query.time_lo
    ):
        raise InvalidParameterError(
            f"empty time range: [{query.time_lo}, {query.time_hi}]"
        )


def _bound_items(
    query: SelectQuery | SimulateQuery,
) -> list[tuple[KernelSpec, tuple[float, ...], str | None]]:
    """Resolve and bind every kernel of the statement, up front."""
    if isinstance(query, SimulateQuery):
        seed = DEFAULT_SEED if query.seed is None else query.seed
        arguments = SIMULATE_KERNEL.bind(
            (float(query.n_worlds), float(seed))
        )
        return [(SIMULATE_KERNEL, arguments, None)]
    if query.approx and len(query.items) > 1:
        # The parser rejects this too; guard programmatically built
        # queries so the approx path can assume a single item.
        raise QueryError(
            f"APPROX supports a single aggregate, got a select list of "
            f"{len(query.items)} items"
        )
    bound: list[tuple[KernelSpec, tuple[float, ...], str | None]] = []
    for item in query.items:
        spec = resolve_aggregate(item.name)
        if query.approx and spec.name not in APPROX_KERNELS:
            raise QueryError(
                f"APPROX does not support {spec.name!r}; one of "
                f"{', '.join(sorted(APPROX_KERNELS))}"
            )
        bound.append((spec, spec.bind(item.arguments), item.column))
    return bound


def plan_statement(
    catalog: Catalog,
    query: SelectQuery | SimulateQuery,
    *,
    pruning: bool = True,
    trace: Any = NULL_TRACE,
) -> QueryPlan:
    """Lower a parsed statement's logical tree against a catalog.

    Raises :class:`~repro.exceptions.QueryError` for an unknown kernel or
    a pattern matching no series, and
    :class:`~repro.exceptions.InvalidParameterError` for argument arity
    or domain violations — all before any segment is read.

    For exact plans the prune phase runs here, **per item** (pure
    metadata work — snapshots carry their segment synopses): segments
    whose synopsis proves non-contribution are dropped from the item's
    task, and series with no surviving segment move to its ``skipped``
    list, exactly as they would for the same kernel planned standalone.
    ``pruning=False`` keeps the full scan — the parity reference the
    property tests compare against.  APPROX plans carry every snapshot;
    the executor answers them from synopses without backend fan-out.

    ``trace`` gets two spans: ``plan`` (binding, manifest expansion, task
    construction) and ``prune`` (the synopsis scans, summed across items)
    — split out because a slow plan and a slow prune point at different
    fixes.
    """
    plan_offset = trace.offset()
    plan_t0 = time.perf_counter()
    logical = logical_plan(query)
    bound = _bound_items(query)
    _check_time_range(query)
    root = str(catalog.root)
    snapshots = catalog.open_many(query.series_pattern)
    # Resolve each snapshot's revision frontier once (shared across
    # items): which segments are visible AS OF the query's knowledge
    # time, and which of their valid-time rows newer revisions shadow.
    # On never-revised series this is the full segment list with an
    # empty token, so cache keys and load paths stay bit-identical.
    as_of = getattr(query, "as_of", None)
    frontiers = [snapshot.as_of(as_of) for snapshot in snapshots]
    segments_total = sum(len(snapshot.segments) for snapshot in snapshots)
    if getattr(query, "approx", False):
        spec, arguments, column = bound[0]
        tasks = tuple(
            SeriesTask(
                snapshot=snapshot,
                segments=frontier.segments,
                cache_key=(
                    root,
                    snapshot.series_id,
                    snapshot.generation,
                    (),
                    frontier.token,
                ),
                shadows=frontier.shadows,
                synopses=frontier.synopses,
            )
            for snapshot, frontier in zip(snapshots, frontiers)
        )
        stats = PlanStats(
            series_matched=len(snapshots),
            segments_total=segments_total,
            approx=True,
        )
        item = ItemPlan(
            kernel=spec,
            arguments=arguments,
            tasks=tasks,
            skipped=(),
            stats=stats,
            time_lo=query.time_lo,
            time_hi=query.time_hi,
            column=column,
        )
        trace.add_stage("plan", plan_offset, time.perf_counter() - plan_t0)
        return QueryPlan(query=query, items=(item,), logical=logical)
    # Pass 1 — the prune phase proper, timed as its own span: every
    # item's surviving segment lists (or the full lists with pruning
    # off).  Pure metadata work against the segment synopses.
    prune_offset = trace.offset()
    prune_t0 = time.perf_counter()
    survivors_per_item: list[list[tuple[str, ...]]] = []
    for spec, arguments, _column in bound:
        if pruning:
            survivors_per_item.append(
                [
                    prune_segments(
                        frontier,
                        spec.name,
                        arguments,
                        query.time_lo,
                        query.time_hi,
                    )
                    for frontier in frontiers
                ]
            )
        else:
            # Pruning off still honours the frontier: segments invisible
            # at the AS OF point are a correctness matter, not an
            # optimisation.
            survivors_per_item.append(
                [frontier.segments for frontier in frontiers]
            )
    prune_s = time.perf_counter() - prune_t0
    # Pass 2 — task construction from the surviving lists (plan time).
    items: list[ItemPlan] = []
    for (spec, arguments, column), survivors in zip(
        bound, survivors_per_item
    ):
        tasks_list: list[SeriesTask] = []
        skipped: list[str] = []
        segments_scanned = 0
        for snapshot, frontier, surviving in zip(
            snapshots, frontiers, survivors
        ):
            if pruning and not surviving:
                skipped.append(snapshot.series_id)
                continue
            segments_scanned += len(surviving)
            subset = () if surviving == frontier.segments else surviving
            if subset == ():
                shadows = frontier.shadows
            else:
                keep = set(surviving)
                shadows = tuple(
                    shadow
                    for name, shadow in zip(
                        frontier.segments, frontier.shadows
                    )
                    if name in keep
                )
            tasks_list.append(
                SeriesTask(
                    snapshot=snapshot,
                    segments=surviving,
                    cache_key=(
                        root,
                        snapshot.series_id,
                        snapshot.generation,
                        subset,
                        frontier.token,
                    ),
                    shadows=shadows,
                )
            )
        stats = PlanStats(
            series_matched=len(snapshots),
            series_skipped=len(skipped),
            segments_total=segments_total,
            segments_scanned=segments_scanned,
            segments_pruned=segments_total - segments_scanned,
        )
        items.append(
            ItemPlan(
                kernel=spec,
                arguments=arguments,
                tasks=tuple(tasks_list),
                skipped=tuple(skipped),
                stats=stats,
                time_lo=query.time_lo,
                time_hi=query.time_hi,
                column=column,
            )
        )
    plan_s = time.perf_counter() - plan_t0
    trace.add_stage("plan", plan_offset, max(0.0, plan_s - prune_s))
    trace.add_stage("prune", prune_offset, prune_s)
    return QueryPlan(query=query, items=tuple(items), logical=logical)


def plan_select(
    catalog: Catalog,
    query: SelectQuery,
    *,
    pruning: bool = True,
    trace: Any = NULL_TRACE,
) -> QueryPlan:
    """Bind a parsed SELECT to a catalog (legacy name for SELECT-only callers).

    Identical to :func:`plan_statement`; kept because the SELECT planner
    predates the logical plan tree and external callers import it.
    """
    return plan_statement(catalog, query, pruning=pruning, trace=trace)
