"""Planning catalog-wide SELECT statements into per-series tasks.

A parsed :class:`~repro.view.sql.SelectQuery` is inert text; this module
binds it to reality: the aggregate name resolves against the registry of
known aggregates (argument arity and domains checked up front, not deep in
a worker thread), the ``SERIES`` glob expands against the catalog manifest,
and each matched series becomes one :class:`SeriesTask` carrying a
read-only :class:`~repro.store.catalog.SeriesSnapshot` plus its cache key.
The executor (:mod:`repro.service.executor`) then runs tasks in any order,
on any thread, without touching shared catalog state.

Aggregates map onto the one-shot query functions of :mod:`repro.db` — the
paper's point that standard probabilistic query machinery applies directly
— and each also defines a per-series *score*, the scalar ``TOP k`` ranks
by (hit count, max probability, mean expectation...).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.db.prob_view import ProbabilisticView
from repro.db.queries import expected_value_query, threshold_query
from repro.db.stream_queries import (
    exceedance_probability,
    expected_time_above,
)
from repro.exceptions import InvalidParameterError, QueryError
from repro.store.catalog import Catalog, SeriesSnapshot
from repro.view.sql import SelectQuery

__all__ = [
    "AGGREGATES",
    "AggregateSpec",
    "QueryPlan",
    "SeriesTask",
    "TaskEnvelope",
    "plan_select",
]


def _compute_threshold(
    view: ProbabilisticView, arguments: tuple[float, ...]
) -> tuple[Any, float]:
    hits = threshold_query(view, arguments[0])
    return hits, float(len(hits))


def _compute_expected_value(
    view: ProbabilisticView, arguments: tuple[float, ...]
) -> tuple[Any, float]:
    values = expected_value_query(view)
    score = sum(values.values()) / len(values) if values else 0.0
    return values, float(score)


def _compute_exceedance(
    view: ProbabilisticView, arguments: tuple[float, ...]
) -> tuple[Any, float]:
    values = exceedance_probability(view, arguments[0])
    return values, float(max(values.values(), default=0.0))


def _compute_time_above(
    view: ProbabilisticView, arguments: tuple[float, ...]
) -> tuple[Any, float]:
    values = expected_time_above(view, arguments[0], int(arguments[1]))
    return values, float(max(values.values(), default=0.0))


def _check_tau(arguments: tuple[float, ...]) -> tuple[float, ...]:
    if not 0.0 <= arguments[0] <= 1.0:
        raise InvalidParameterError(
            f"threshold(tau) needs tau in [0, 1], got {arguments[0]}"
        )
    return arguments


def _check_window(arguments: tuple[float, ...]) -> tuple[float, ...]:
    window = arguments[1]
    if window != int(window) or window < 1:
        raise InvalidParameterError(
            f"time_above(threshold, window) needs an integer window >= 1, "
            f"got {window}"
        )
    return (arguments[0], float(int(window)))


@dataclass(frozen=True)
class AggregateSpec:
    """One catalog-wide aggregate: arity, domain checks, and computation.

    ``compute(view, arguments)`` returns ``(result, score)`` where
    ``result`` is whatever the underlying one-shot query returns for that
    series and ``score`` the scalar used for ``TOP k`` ranking.
    """

    name: str
    parameters: tuple[str, ...]
    compute: Callable[
        [ProbabilisticView, tuple[float, ...]], tuple[Any, float]
    ]
    score_label: str
    validate: Callable[[tuple[float, ...]], tuple[float, ...]] | None = None

    def bind(self, arguments: tuple[float, ...]) -> tuple[float, ...]:
        """Check arity and domains; returns the normalised arguments."""
        if len(arguments) != len(self.parameters):
            expected = ", ".join(self.parameters) or "no arguments"
            raise InvalidParameterError(
                f"{self.name} takes ({expected}), got {len(arguments)} "
                f"argument(s)"
            )
        return self.validate(arguments) if self.validate else arguments


AGGREGATES: dict[str, AggregateSpec] = {
    spec.name: spec
    for spec in (
        AggregateSpec(
            name="threshold",
            parameters=("tau",),
            compute=_compute_threshold,
            score_label="hits",
            validate=_check_tau,
        ),
        AggregateSpec(
            name="expected_value",
            parameters=(),
            compute=_compute_expected_value,
            score_label="mean_ev",
        ),
        AggregateSpec(
            name="exceedance",
            parameters=("threshold",),
            compute=_compute_exceedance,
            score_label="max_p",
        ),
        AggregateSpec(
            name="time_above",
            parameters=("threshold", "window"),
            compute=_compute_time_above,
            score_label="max_expected_count",
            validate=_check_window,
        ),
    )
}


@dataclass(frozen=True)
class SeriesTask:
    """One unit of fan-out work: a snapshot plus its cache identity."""

    snapshot: SeriesSnapshot
    cache_key: tuple[str, str, tuple]

    @property
    def series_id(self) -> str:
        return self.snapshot.series_id


@dataclass(frozen=True)
class TaskEnvelope:
    """The picklable, self-contained form of one per-series unit of work.

    Everything a worker — a pool thread *or a separate process* — needs to
    compute one series' contribution: where the segments live, which
    aggregate to run (by registry name, so the callable never crosses a
    process boundary), its already-validated arguments, and the cache key
    identifying the materialised view.  Plain strings/tuples throughout so
    the envelope pickles cheaply under any multiprocessing start method.
    """

    series_id: str
    directory: str
    segments: tuple[str, ...]
    cache_key: tuple[str, str, tuple]
    aggregate: str
    arguments: tuple[float, ...]
    time_lo: float | None
    time_hi: float | None


@dataclass(frozen=True)
class QueryPlan:
    """A bound, executable form of one SELECT statement."""

    query: SelectQuery
    aggregate: AggregateSpec
    arguments: tuple[float, ...]
    tasks: tuple[SeriesTask, ...]

    @property
    def series_ids(self) -> list[str]:
        return [task.series_id for task in self.tasks]

    def envelope(self, task: SeriesTask) -> TaskEnvelope:
        """The backend-facing form of one of this plan's tasks."""
        return TaskEnvelope(
            series_id=task.series_id,
            directory=str(task.snapshot.directory),
            segments=task.snapshot.segments,
            cache_key=task.cache_key,
            aggregate=self.aggregate.name,
            arguments=self.arguments,
            time_lo=self.query.time_lo,
            time_hi=self.query.time_hi,
        )

    def describe(self) -> str:
        arguments = ", ".join(f"{a:g}" for a in self.arguments)
        suffix = f"({arguments})" if arguments else ""
        return (
            f"{self.aggregate.name}{suffix} over {len(self.tasks)} series "
            f"of {self.query.catalog_path}"
        )


def resolve_aggregate(name: str) -> AggregateSpec:
    """The registered aggregate for ``name`` (case already lowered)."""
    spec = AGGREGATES.get(name)
    if spec is None:
        raise QueryError(
            f"unknown aggregate {name!r}; one of {', '.join(sorted(AGGREGATES))}"
        )
    return spec


def plan_select(catalog: Catalog, query: SelectQuery) -> QueryPlan:
    """Bind a parsed SELECT to a catalog: aggregate + matched snapshots.

    Raises :class:`~repro.exceptions.QueryError` for an unknown aggregate
    or a pattern matching no series, and
    :class:`~repro.exceptions.InvalidParameterError` for argument arity or
    domain violations — all before any segment is read.
    """
    spec = resolve_aggregate(query.aggregate)
    arguments = spec.bind(query.arguments)
    if (
        query.time_lo is not None
        and query.time_hi is not None
        and query.time_hi < query.time_lo
    ):
        raise InvalidParameterError(
            f"empty time range: [{query.time_lo}, {query.time_hi}]"
        )
    root = str(catalog.root)
    tasks = tuple(
        SeriesTask(
            snapshot=snapshot,
            cache_key=(root, snapshot.series_id, snapshot.generation),
        )
        for snapshot in catalog.open_many(query.series_pattern)
    )
    return QueryPlan(
        query=query, aggregate=spec, arguments=arguments, tasks=tasks
    )
