"""Planning catalog-wide SELECT statements into per-series tasks.

A parsed :class:`~repro.view.sql.SelectQuery` is inert text; this module
binds it to reality: the aggregate name resolves against the registry of
known aggregates (argument arity and domains checked up front, not deep in
a worker thread), the ``SERIES`` glob expands against the catalog manifest,
and each matched series becomes one :class:`SeriesTask` carrying a
read-only :class:`~repro.store.catalog.SeriesSnapshot` plus its cache key.
The executor (:mod:`repro.service.executor`) then runs tasks in any order,
on any thread, without touching shared catalog state.

Aggregates map onto the one-shot query functions of :mod:`repro.db` — the
paper's point that standard probabilistic query machinery applies directly
— and each also defines a per-series *score*, the scalar ``TOP k`` ranks
by (hit count, max probability, mean expectation...).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.db.prob_view import ProbabilisticView
from repro.db.queries import expected_value_query, threshold_query
from repro.db.stream_queries import (
    exceedance_probability,
    expected_time_above,
)
from repro.exceptions import InvalidParameterError, QueryError
from repro.obs.trace import NULL_TRACE
from repro.service.synopsis import prune_segments
from repro.store.catalog import Catalog, SeriesSnapshot
from repro.view.sql import SelectQuery

__all__ = [
    "AGGREGATES",
    "AggregateSpec",
    "PlanStats",
    "QueryPlan",
    "SeriesTask",
    "TaskEnvelope",
    "plan_select",
]


def _compute_threshold(
    view: ProbabilisticView, arguments: tuple[float, ...]
) -> tuple[Any, float]:
    hits = threshold_query(view, arguments[0])
    return hits, float(len(hits))


def _compute_expected_value(
    view: ProbabilisticView, arguments: tuple[float, ...]
) -> tuple[Any, float]:
    values = expected_value_query(view)
    score = sum(values.values()) / len(values) if values else 0.0
    return values, float(score)


def _compute_exceedance(
    view: ProbabilisticView, arguments: tuple[float, ...]
) -> tuple[Any, float]:
    values = exceedance_probability(view, arguments[0])
    return values, float(max(values.values(), default=0.0))


def _compute_time_above(
    view: ProbabilisticView, arguments: tuple[float, ...]
) -> tuple[Any, float]:
    values = expected_time_above(view, arguments[0], int(arguments[1]))
    return values, float(max(values.values(), default=0.0))


def _check_tau(arguments: tuple[float, ...]) -> tuple[float, ...]:
    if not 0.0 <= arguments[0] <= 1.0:
        raise InvalidParameterError(
            f"threshold(tau) needs tau in [0, 1], got {arguments[0]}"
        )
    return arguments


def _check_window(arguments: tuple[float, ...]) -> tuple[float, ...]:
    window = arguments[1]
    if window != int(window) or window < 1:
        raise InvalidParameterError(
            f"time_above(threshold, window) needs an integer window >= 1, "
            f"got {window}"
        )
    return (arguments[0], float(int(window)))


@dataclass(frozen=True)
class AggregateSpec:
    """One catalog-wide aggregate: arity, domain checks, and computation.

    ``compute(view, arguments)`` returns ``(result, score)`` where
    ``result`` is whatever the underlying one-shot query returns for that
    series and ``score`` the scalar used for ``TOP k`` ranking.
    """

    name: str
    parameters: tuple[str, ...]
    compute: Callable[
        [ProbabilisticView, tuple[float, ...]], tuple[Any, float]
    ]
    score_label: str
    validate: Callable[[tuple[float, ...]], tuple[float, ...]] | None = None

    def bind(self, arguments: tuple[float, ...]) -> tuple[float, ...]:
        """Check arity and domains; returns the normalised arguments."""
        if len(arguments) != len(self.parameters):
            expected = ", ".join(self.parameters) or "no arguments"
            raise InvalidParameterError(
                f"{self.name} takes ({expected}), got {len(arguments)} "
                f"argument(s)"
            )
        return self.validate(arguments) if self.validate else arguments


AGGREGATES: dict[str, AggregateSpec] = {
    spec.name: spec
    for spec in (
        AggregateSpec(
            name="threshold",
            parameters=("tau",),
            compute=_compute_threshold,
            score_label="hits",
            validate=_check_tau,
        ),
        AggregateSpec(
            name="expected_value",
            parameters=(),
            compute=_compute_expected_value,
            score_label="mean_ev",
        ),
        AggregateSpec(
            name="exceedance",
            parameters=("threshold",),
            compute=_compute_exceedance,
            score_label="max_p",
        ),
        AggregateSpec(
            name="time_above",
            parameters=("threshold", "window"),
            compute=_compute_time_above,
            score_label="max_expected_count",
            validate=_check_window,
        ),
    )
}


@dataclass(frozen=True)
class PlanStats:
    """What the prune phase decided — the per-query observability record.

    ``segments_scanned + segments_pruned == segments_total`` for exact
    plans; APPROX plans report how many segments had to be *loaded* to
    compute a missing synopsis lazily (ideally zero on a synopsized
    catalog) under ``segments_scanned``.
    """

    series_matched: int = 0
    series_skipped: int = 0
    segments_total: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    approx: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "series_matched": self.series_matched,
            "series_skipped": self.series_skipped,
            "segments_total": self.segments_total,
            "segments_scanned": self.segments_scanned,
            "segments_pruned": self.segments_pruned,
            "approx": self.approx,
        }


@dataclass(frozen=True)
class SeriesTask:
    """One unit of fan-out work: a snapshot plus its cache identity.

    ``segments`` is the (possibly pruned) subset of the snapshot's
    segments this task must actually scan; the cache key's last component
    distinguishes pruned materialisations from the full view (``()``
    marks the full segment list).
    """

    snapshot: SeriesSnapshot
    segments: tuple[str, ...]
    cache_key: tuple[str, str, tuple, tuple]

    @property
    def series_id(self) -> str:
        return self.snapshot.series_id


@dataclass(frozen=True)
class TaskEnvelope:
    """The picklable, self-contained form of one per-series unit of work.

    Everything a worker — a pool thread *or a separate process* — needs to
    compute one series' contribution: where the (surviving) segments live,
    which aggregate to run (by registry name, so the callable never
    crosses a process boundary), its already-validated arguments, and the
    cache key identifying the materialised view.  Plain strings/tuples
    throughout so the envelope pickles cheaply under any multiprocessing
    start method.
    """

    series_id: str
    directory: str
    segments: tuple[str, ...]
    cache_key: tuple[str, str, tuple, tuple]
    aggregate: str
    arguments: tuple[float, ...]
    time_lo: float | None
    time_hi: float | None


@dataclass(frozen=True)
class QueryPlan:
    """A bound, executable form of one SELECT statement.

    The prune phase ran at planning time: ``tasks`` holds only series
    with at least one surviving segment, ``skipped`` the matched series
    whose every segment was proven irrelevant — the executor synthesises
    their (empty) results without reading anything.  ``stats`` records
    what pruning did, for the per-query observability counters.
    """

    query: SelectQuery
    aggregate: AggregateSpec
    arguments: tuple[float, ...]
    tasks: tuple[SeriesTask, ...]
    skipped: tuple[str, ...] = ()
    stats: PlanStats = PlanStats()

    @property
    def series_ids(self) -> list[str]:
        """Every matched series id (scanned and skipped), sorted."""
        return sorted(
            [task.series_id for task in self.tasks] + list(self.skipped)
        )

    def envelope(self, task: SeriesTask) -> TaskEnvelope:
        """The backend-facing form of one of this plan's tasks."""
        return TaskEnvelope(
            series_id=task.series_id,
            directory=str(task.snapshot.directory),
            segments=task.segments,
            cache_key=task.cache_key,
            aggregate=self.aggregate.name,
            arguments=self.arguments,
            time_lo=self.query.time_lo,
            time_hi=self.query.time_hi,
        )

    def describe(self) -> str:
        arguments = ", ".join(f"{a:g}" for a in self.arguments)
        suffix = f"({arguments})" if arguments else ""
        mode = "APPROX " if self.stats.approx else ""
        return (
            f"{mode}{self.aggregate.name}{suffix} over {len(self.tasks)} "
            f"series of {self.query.catalog_path} "
            f"({self.stats.segments_pruned} segments pruned, "
            f"{self.stats.series_skipped} series skipped)"
        )


def resolve_aggregate(name: str) -> AggregateSpec:
    """The registered aggregate for ``name`` (case already lowered)."""
    spec = AGGREGATES.get(name)
    if spec is None:
        raise QueryError(
            f"unknown aggregate {name!r}; one of {', '.join(sorted(AGGREGATES))}"
        )
    return spec


def plan_select(
    catalog: Catalog,
    query: SelectQuery,
    *,
    pruning: bool = True,
    trace: Any = NULL_TRACE,
) -> QueryPlan:
    """Bind a parsed SELECT to a catalog: aggregate + matched snapshots.

    Raises :class:`~repro.exceptions.QueryError` for an unknown aggregate
    or a pattern matching no series, and
    :class:`~repro.exceptions.InvalidParameterError` for argument arity or
    domain violations — all before any segment is read.

    For exact queries the prune phase runs here (pure metadata work —
    snapshots carry their segment synopses): segments whose synopsis
    proves non-contribution are dropped from the task, and series with no
    surviving segment move to ``plan.skipped``.  ``pruning=False`` keeps
    the full scan — the parity reference the property tests compare
    against.  APPROX plans carry every snapshot; the executor answers
    them from synopses without backend fan-out.

    ``trace`` gets two spans: ``plan`` (binding, manifest expansion, task
    construction) and ``prune`` (the synopsis scan) — split out because a
    slow plan and a slow prune point at different fixes.
    """
    plan_offset = trace.offset()
    plan_t0 = time.perf_counter()
    spec = resolve_aggregate(query.aggregate)
    arguments = spec.bind(query.arguments)
    if (
        query.time_lo is not None
        and query.time_hi is not None
        and query.time_hi < query.time_lo
    ):
        raise InvalidParameterError(
            f"empty time range: [{query.time_lo}, {query.time_hi}]"
        )
    root = str(catalog.root)
    snapshots = catalog.open_many(query.series_pattern)
    segments_total = sum(len(snapshot.segments) for snapshot in snapshots)
    if getattr(query, "approx", False):
        tasks = tuple(
            SeriesTask(
                snapshot=snapshot,
                segments=snapshot.segments,
                cache_key=(root, snapshot.series_id, snapshot.generation, ()),
            )
            for snapshot in snapshots
        )
        stats = PlanStats(
            series_matched=len(snapshots),
            segments_total=segments_total,
            approx=True,
        )
        trace.add_stage(
            "plan", plan_offset, time.perf_counter() - plan_t0
        )
        return QueryPlan(
            query=query,
            aggregate=spec,
            arguments=arguments,
            tasks=tasks,
            stats=stats,
        )
    # Pass 1 — the prune phase proper, timed as its own span: every
    # snapshot's surviving segment list (or the full list with pruning
    # off).  Pure metadata work against the segment synopses.
    prune_offset = trace.offset()
    prune_t0 = time.perf_counter()
    if pruning:
        survivors = [
            prune_segments(
                snapshot, spec.name, arguments, query.time_lo, query.time_hi
            )
            for snapshot in snapshots
        ]
    else:
        survivors = [snapshot.segments for snapshot in snapshots]
    prune_s = time.perf_counter() - prune_t0
    # Pass 2 — task construction from the surviving lists (plan time).
    tasks_list: list[SeriesTask] = []
    skipped: list[str] = []
    segments_scanned = 0
    for snapshot, surviving in zip(snapshots, survivors):
        if pruning and not surviving:
            skipped.append(snapshot.series_id)
            continue
        segments_scanned += len(surviving)
        subset = () if surviving == snapshot.segments else surviving
        tasks_list.append(
            SeriesTask(
                snapshot=snapshot,
                segments=surviving,
                cache_key=(
                    root,
                    snapshot.series_id,
                    snapshot.generation,
                    subset,
                ),
            )
        )
    stats = PlanStats(
        series_matched=len(snapshots),
        series_skipped=len(skipped),
        segments_total=segments_total,
        segments_scanned=segments_scanned,
        segments_pruned=segments_total - segments_scanned,
    )
    plan_s = time.perf_counter() - plan_t0
    trace.add_stage("plan", plan_offset, max(0.0, plan_s - prune_s))
    trace.add_stage("prune", prune_offset, prune_s)
    return QueryPlan(
        query=query,
        aggregate=spec,
        arguments=arguments,
        tasks=tuple(tasks_list),
        skipped=tuple(skipped),
        stats=stats,
    )
