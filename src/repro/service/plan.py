"""Logical query plans for catalog statements.

Every catalog statement — ``SELECT`` (single- or multi-item) and
``SIMULATE`` — lowers through the same five-node logical tree::

    Finalize(top_k)                  rank, truncate, wrap
      └─ Combine(mode)               one result column per kernel
           ├─ Kernel(name, args)     per-series compute (xN)
           └─ Prune(lo, hi)          zone-map segment pruning
                └─ Scan(catalog, pattern)

The logical form is *inert* — plain frozen dataclasses built from the
parsed statement alone, before the catalog is opened.  Physical lowering
(:func:`repro.service.planner.plan_statement`) binds it to reality:
``Scan`` expands the series glob against the manifest, ``Prune`` consults
segment synopses, each ``Kernel`` resolves against the registry and
becomes one :class:`~repro.service.planner.ItemPlan` worth of per-series
tasks, and ``Combine``/``Finalize`` steer how the executor stitches the
gathered results back together.

Keeping the tree explicit (rather than a flat aggregate registry) is the
stated unlock for GROUP BY / JOIN nodes and deeper synopsis pruning in
later growth steps: new logical nodes slot between ``Kernel`` and
``Finalize`` without touching the fan-out machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import DEFAULT_SEED
from repro.view.sql import SelectQuery, SimulateQuery

__all__ = [
    "CombineNode",
    "FinalizeNode",
    "KernelNode",
    "LogicalPlan",
    "PruneNode",
    "ScanNode",
    "explain",
    "logical_plan",
]


@dataclass(frozen=True)
class ScanNode:
    """Leaf: which catalog and which series glob to expand."""

    catalog_path: str
    series_pattern: str = "*"

    def label(self) -> str:
        return f"Scan({self.catalog_path!r}, series={self.series_pattern!r})"


@dataclass(frozen=True)
class PruneNode:
    """Zone-map segment pruning under an inclusive time window."""

    child: ScanNode
    time_lo: float | None = None
    time_hi: float | None = None

    def label(self) -> str:
        lo = "-inf" if self.time_lo is None else f"{self.time_lo:g}"
        hi = "+inf" if self.time_hi is None else f"{self.time_hi:g}"
        return f"Prune(t in [{lo}, {hi}])"


@dataclass(frozen=True)
class KernelNode:
    """One per-series computation: an aggregate, row expression, or sampler."""

    name: str
    arguments: tuple[float, ...] = ()
    #: Value-column identifier of a ``PROBABILITY OF`` item (display only).
    column: str | None = None

    def label(self) -> str:
        if self.name == "probability_of":
            low, high = self.arguments
            column = self.column or "v"
            return f"PROBABILITY OF {column} BETWEEN {low:g} AND {high:g}"
        if self.name == "simulate":
            n_worlds, seed = self.arguments
            return f"simulate({int(n_worlds)} worlds, seed {int(seed)})"
        if self.arguments:
            rendered = ", ".join(f"{a:g}" for a in self.arguments)
            return f"{self.name}({rendered})"
        return self.name


@dataclass(frozen=True)
class CombineNode:
    """Fan the pruned scan through every kernel; one result column each.

    ``mode`` selects the physical strategy: ``"exact"`` runs kernels on
    backend workers, ``"approx"`` answers from synopses without fan-out,
    ``"simulate"`` runs the possible-worlds sampler kernel.
    """

    source: PruneNode
    kernels: tuple[KernelNode, ...]
    mode: str = "exact"

    def label(self) -> str:
        return f"Combine[{self.mode}] x{len(self.kernels)}"


@dataclass(frozen=True)
class FinalizeNode:
    """Root: rank by per-kernel score, truncate to TOP k, wrap."""

    child: CombineNode
    top_k: int | None = None

    def label(self) -> str:
        if self.top_k is None:
            return "Finalize"
        return f"Finalize(top {self.top_k})"


#: The root node type — a logical plan *is* its finalize root.
LogicalPlan = FinalizeNode


def logical_plan(query: SelectQuery | SimulateQuery) -> FinalizeNode:
    """The logical tree of one parsed statement (no catalog access)."""
    scan = ScanNode(
        catalog_path=query.catalog_path,
        series_pattern=query.series_pattern,
    )
    prune = PruneNode(
        child=scan, time_lo=query.time_lo, time_hi=query.time_hi
    )
    if isinstance(query, SimulateQuery):
        seed = DEFAULT_SEED if query.seed is None else query.seed
        kernel = KernelNode(
            name="simulate",
            arguments=(float(query.n_worlds), float(seed)),
        )
        combine = CombineNode(source=prune, kernels=(kernel,), mode="simulate")
        return FinalizeNode(child=combine, top_k=None)
    kernels = tuple(
        KernelNode(name=item.name, arguments=item.arguments, column=item.column)
        for item in query.items
    )
    mode = "approx" if query.approx else "exact"
    combine = CombineNode(source=prune, kernels=kernels, mode=mode)
    return FinalizeNode(child=combine, top_k=query.top_k)


def explain(plan: FinalizeNode) -> str:
    """An indented, human-readable rendering of the logical tree."""
    lines = [plan.label()]
    combine = plan.child
    lines.append(f"  {combine.label()}")
    for kernel in combine.kernels:
        lines.append(f"    Kernel: {kernel.label()}")
    prune = combine.source
    lines.append(f"    {prune.label()}")
    lines.append(f"      {prune.child.label()}")
    return "\n".join(lines)
