"""Shared-memory result transport for the process backend.

The process backend's worker→parent hop used to pickle whole
:class:`~repro.service.backends.ResultEnvelope` objects — per-time dicts
with thousands of boxed floats, ``ProbTuple`` lists, world matrices —
through the pool's result pipe.  On CPU-bound catalog scans that
round-trip dominated: the numeric kernels are vectorised, the transport
was not.  This module moves the numeric payload out of the pickle stream:

* workers compute **array-form** results (:class:`ArrayResult`) — plain
  numpy arrays per series, no per-time dict or tuple materialisation on
  the worker at all;
* the per-time-dense aggregates (``exceedance``, ``expected_value``,
  ``time_above``) are additionally **batched per chunk**
  (:func:`compute_chunk`): the chunk's restricted views are stacked into
  one concatenated column set and each kernel runs as a single
  ``reduceat``/broadcast pass over the stack — one numpy dispatch per
  aggregate per chunk instead of one per series;
* each chunk's arrays land in **one**
  :class:`multiprocessing.shared_memory.SharedMemory` block
  (:func:`pack_chunk`), and only a small :class:`ChunkDescriptor`
  (block name, per-array dtype/shape/offset slices, scalar metadata)
  crosses the pipe;
* the parent rehydrates (:func:`decode_result`) into exactly the objects
  :func:`~repro.service.backends.run_envelope` would have produced —
  same dict keys, same ``ProbTuple`` values, same scores — so the
  cross-backend canonical-JSON bit-identity gate holds unchanged.

Lifecycle is crash-proof by construction: the **parent** names every
block before submitting the chunk (:class:`ShmArena`), so even when a
worker dies mid-chunk the parent can unlink the orphan by name.  Workers
unregister freshly created blocks from their resource tracker (the
parent owns the unlink), which keeps ``resource_tracker`` leak warnings
out of worker shutdown.  When shared memory is unavailable — platform
without POSIX shm, ``/dev/shm`` full, or ``REPRO_SHM_TRANSPORT=0`` —
everything degrades to the plain-pickle transport with identical
results; the fallback is recorded in the backend's transport stats,
never silent.
"""

from __future__ import annotations

import os
import secrets
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.db.prob_view import ProbTuple
from repro.db.stream_queries import _check_windowed
from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only.
    from repro.db.prob_view import ProbabilisticView
    from repro.service.planner import TaskEnvelope

__all__ = [
    "ArrayResult",
    "ArraySpec",
    "BATCHED_KERNELS",
    "ChunkDescriptor",
    "PackedResult",
    "ShmArena",
    "compute_chunk",
    "decode_result",
    "pack_chunk",
    "shm_available",
]

#: Kill switch: ``REPRO_SHM_TRANSPORT=0`` forces the pickle transport.
_SHM_ENV = "REPRO_SHM_TRANSPORT"

#: Aggregates computed as one stacked pass per chunk (per-time-dense
#: mapping kernels whose group reductions never cross series).
BATCHED_KERNELS = frozenset(("exceedance", "expected_value", "time_above"))

#: Array offsets inside a block are aligned to this many bytes so every
#: ``np.frombuffer`` view is safely aligned for its dtype.
_ALIGN = 16


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether this process can create POSIX shared-memory blocks.

    Probed once per process with a tiny create/unlink round-trip (the
    import alone does not prove ``/dev/shm`` is writable); the
    ``REPRO_SHM_TRANSPORT=0`` kill switch is consulted on every call so
    tests and operators can flip it without restarting.
    """
    if os.environ.get(_SHM_ENV, "").strip() == "0":
        return False
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            # Created and unlinked by this same process, so the default
            # resource-tracker flow (register on create, unregister on
            # unlink) is exactly right here — no _untrack.
            probe = shared_memory.SharedMemory(
                name=f"repro-probe-{os.getpid()}-{secrets.token_hex(4)}",
                create=True,
                size=_ALIGN,
            )
            probe.close()
            probe.unlink()
        except (ImportError, OSError):
            _AVAILABLE = False
        else:
            _AVAILABLE = True
    return _AVAILABLE


def _untrack(shm: Any) -> None:
    """Drop a block from this process's resource tracker.

    Creating a block registers it with the resource tracker; here the
    creating process is never the one that unlinks (workers create, the
    parent unlinks), so the registration must be withdrawn or the
    tracker prints "leaked shared_memory" warnings — and unlinks blocks
    out from under the parent — when the creator exits.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary.
        pass


# ----------------------------------------------------------------------
# Descriptors: what actually crosses the pipe.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArraySpec:
    """One array's slice of a chunk's block: offset, dtype, shape."""

    offset: int
    dtype: str
    shape: tuple[int, ...]

    @property
    def count(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def nbytes(self) -> int:
        return self.count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class PackedResult:
    """One series' descriptor entry: scalars inline, arrays by reference.

    ``kind`` selects the decode: ``"mapping"`` (per-time dict kernels),
    ``"rows"`` (``threshold``'s tuple list, with the label pool carried
    in ``meta``), ``"worlds"`` (``SIMULATE`` sample matrices), or
    ``"error"`` (no arrays; ``error`` carries the one-line diagnostic).
    ``arrays`` maps slot name → :class:`ArraySpec` into the chunk block.
    """

    series_id: str
    kernel: str
    kind: str
    arrays: dict[str, ArraySpec] = field(default_factory=dict)
    meta: tuple[Any, ...] = ()
    error: str | None = None
    load_s: float = 0.0
    compute_s: float = 0.0
    cache_hit: bool = True


@dataclass(frozen=True)
class ChunkDescriptor:
    """Everything the parent needs to rehydrate one chunk's results."""

    shm_name: str
    nbytes: int
    results: tuple[PackedResult, ...]


# ----------------------------------------------------------------------
# Array-form results (worker side, before packing).
# ----------------------------------------------------------------------
@dataclass
class ArrayResult:
    """One series' result as plain arrays, residence-agnostic.

    Produced by :func:`compute_chunk` on the worker; either packed into
    a shared-memory block (``arrays`` become :class:`ArraySpec` slices)
    or decoded locally when the transport falls back to pickle.  The
    decode is the single place result objects are built, so both
    transports produce identical values.
    """

    series_id: str
    kernel: str
    kind: str
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    meta: tuple[Any, ...] = ()
    error: str | None = None
    load_s: float = 0.0
    compute_s: float = 0.0
    cache_hit: bool = True


def _error_result(
    envelope: "TaskEnvelope",
    exc: Exception,
    *,
    load_s: float,
    cache_hit: bool,
) -> ArrayResult:
    """The array-form twin of ``run_envelope``'s error envelope."""
    return ArrayResult(
        series_id=envelope.series_id,
        kernel=envelope.aggregate,
        kind="error",
        error=(
            f"aggregate {envelope.aggregate!r} failed on series "
            f"{envelope.series_id!r}: {exc}"
        ),
        load_s=load_s,
        cache_hit=cache_hit,
    )


def _empty_mapping() -> dict[str, np.ndarray]:
    return {
        "times": np.empty(0, dtype=np.int64),
        "values": np.empty(0, dtype=np.float64),
    }


def _mapping_arrays(
    times: np.ndarray, values: np.ndarray
) -> dict[str, np.ndarray]:
    return {
        "times": np.ascontiguousarray(times, dtype=np.int64),
        "values": np.ascontiguousarray(values, dtype=np.float64),
    }


def _encode_mapping(result: dict[int, float]) -> dict[str, np.ndarray]:
    """A per-time dict as (times, values) arrays, insertion order kept."""
    times = np.fromiter(result.keys(), dtype=np.int64, count=len(result))
    values = np.fromiter(result.values(), dtype=np.float64, count=len(result))
    return {"times": times, "values": values}


def _encode_worlds(worlds: list, n_worlds: int) -> dict[str, np.ndarray]:
    """SIMULATE worlds as a value matrix plus an OUTSIDE mask.

    Every world of one series lists the same times in the same order;
    ``outside`` marks the alternatives whose value is ``None``.
    """
    length = len(worlds[0]) if worlds else 0
    if length:
        times = np.fromiter(
            (pair[0] for pair in worlds[0]), dtype=np.int64, count=length
        )
    else:
        times = np.empty(0, dtype=np.int64)
    values = np.zeros((n_worlds, length), dtype=np.float64)
    outside = np.zeros((n_worlds, length), dtype=np.uint8)
    for row, world in enumerate(worlds):
        for col, (_t, value) in enumerate(world):
            if value is None:
                outside[row, col] = 1
            else:
                values[row, col] = value
    return {"times": times, "values": values, "outside": outside}


# ----------------------------------------------------------------------
# Chunk computation: batched kernels over stacked columns.
# ----------------------------------------------------------------------
def _batched_mapping(
    kernel: str,
    arguments: tuple[float, ...],
    views: "list[ProbabilisticView]",
) -> list[np.ndarray]:
    """Per-series value vectors for one batched kernel, one numpy pass.

    The stacked computation is bit-identical to the per-series kernels in
    :mod:`repro.db.queries` / :mod:`repro.db.stream_queries`: every
    elementwise op produces the same element values on a concatenation,
    and the grouped ``reduceat`` boundaries are the per-series ``starts``
    shifted by each series' offset — groups never cross series.  Windowed
    post-passes (``time_above``'s cumulative sums) run on the per-series
    slices so float accumulation order matches the solo kernel exactly.
    """
    columns = [view.columns for view in views]
    sizes = [cols.t.size for cols in columns]
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    low = np.concatenate([cols.low for cols in columns])
    high = np.concatenate([cols.high for cols in columns])
    probability = np.concatenate([cols.probability for cols in columns])
    order = np.concatenate(
        [cols.order + offset for cols, offset in zip(columns, offsets)]
    )
    starts = np.concatenate(
        [cols.starts + offset for cols, offset in zip(columns, offsets)]
    )
    if kernel == "expected_value":
        weighted = (probability * 0.5 * (low + high))[order]
        masses = np.add.reduceat(probability[order], starts)
        sums = np.add.reduceat(weighted, starts)
        lows = np.minimum.reduceat(low[order], starts)
        highs = np.maximum.reduceat(high[order], starts)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.where(
                masses > 0.0,
                sums / np.where(masses > 0.0, masses, 1.0),
                0.5 * (lows + highs),
            )
    else:  # exceedance / time_above share the exceedance vector.
        threshold = arguments[0]
        fraction = np.clip((high - threshold) / (high - low), 0.0, 1.0)
        contribution = (probability * fraction)[order]
        values = np.minimum(np.add.reduceat(contribution, starts), 1.0)
    bounds = np.concatenate(
        ([0], np.cumsum([cols.times.size for cols in columns]))
    )
    per_series = [
        values[bounds[index] : bounds[index + 1]]
        for index in range(len(views))
    ]
    if kernel == "time_above":
        window = int(arguments[1])
        windowed: list[np.ndarray] = []
        for vector in per_series:
            csum = np.concatenate(([0.0], np.cumsum(vector)))
            windowed.append(csum[window:] - csum[:-window])
        per_series = windowed
    return per_series


def _mapping_times(
    cols: Any, kernel: str, arguments: tuple[float, ...]
) -> np.ndarray:
    if kernel == "time_above":
        return cols.times[int(arguments[1]) - 1 :]
    return cols.times


def compute_chunk(
    chunk: "list[TaskEnvelope]",
    cache: Any,
    *,
    mmap: bool = False,
    timings: bool = True,
) -> list[ArrayResult]:
    """Run one chunk of task envelopes into array-form results.

    The process-backend twin of running
    :func:`~repro.service.backends.run_envelope` per envelope: loads go
    through the same per-worker cache with the same per-series error
    isolation and trace timings, but results stay as arrays, and the
    per-time-dense kernels (:data:`BATCHED_KERNELS`) are computed as one
    stacked pass over the whole chunk.
    """
    from repro.service.backends import restrict_time_range
    from repro.service.planner import KERNELS
    from repro.store.catalog import _load_view_from_segments

    out: list[ArrayResult | None] = [None] * len(chunk)
    # (kernel, arguments) -> list of (chunk index, restricted view).
    batches: dict[
        tuple[str, tuple[float, ...]], list[tuple[int, Any]]
    ] = {}
    spans: dict[int, tuple[float, bool]] = {}
    for index, envelope in enumerate(chunk):
        hit = True
        load_s = 0.0

        def _load(envelope=envelope):
            nonlocal hit, load_s
            hit = False
            start = time.perf_counter() if timings else 0.0
            view = _load_view_from_segments(
                Path(envelope.directory),
                envelope.series_id,
                envelope.segments,
                mmap=mmap,
                shadows=envelope.shadows or None,
            )
            if timings:
                load_s = time.perf_counter() - start
            return view

        try:
            view = cache.get(envelope.cache_key, _load)
            start = time.perf_counter() if timings else 0.0
            view = restrict_time_range(
                view, envelope.time_lo, envelope.time_hi
            )
            if envelope.aggregate in BATCHED_KERNELS:
                # Windowed validation runs per series before the batch
                # forms, raising exactly what the solo kernel raises;
                # empty views take the solo kernels' empty-result path.
                if envelope.aggregate == "time_above":
                    batchable = _check_windowed(
                        view, int(envelope.arguments[1])
                    )
                else:
                    batchable = bool(view.columns.times.size)
                if batchable:
                    key = (envelope.aggregate, envelope.arguments)
                    batches.setdefault(key, []).append((index, view))
                    spans[index] = (load_s, hit)
                    continue
                result = ArrayResult(
                    series_id=envelope.series_id,
                    kernel=envelope.aggregate,
                    kind="mapping",
                    arrays=_empty_mapping(),
                )
            elif envelope.aggregate == "threshold":
                cols = view.columns
                hits = np.flatnonzero(
                    cols.probability >= envelope.arguments[0]
                )
                result = ArrayResult(
                    series_id=envelope.series_id,
                    kernel=envelope.aggregate,
                    kind="rows",
                    arrays={
                        "t": np.ascontiguousarray(cols.t[hits]),
                        "low": np.ascontiguousarray(cols.low[hits]),
                        "high": np.ascontiguousarray(cols.high[hits]),
                        "probability": np.ascontiguousarray(
                            cols.probability[hits]
                        ),
                        "code": np.ascontiguousarray(cols.label_code[hits]),
                    },
                    meta=(cols.labels,),
                )
            else:
                # probability_of / simulate: per-series kernels (python
                # loops / sequential rng draws) — run the registered
                # compute and encode its result object into arrays.
                spec = KERNELS[envelope.aggregate]
                value, _score = spec.compute(
                    view, envelope.arguments, envelope.series_id
                )
                if envelope.aggregate == "simulate":
                    n_worlds = int(envelope.arguments[0])
                    result = ArrayResult(
                        series_id=envelope.series_id,
                        kernel=envelope.aggregate,
                        kind="worlds",
                        arrays=_encode_worlds(value, n_worlds),
                        meta=(n_worlds,),
                    )
                else:
                    result = ArrayResult(
                        series_id=envelope.series_id,
                        kernel=envelope.aggregate,
                        kind="mapping",
                        arrays=_encode_mapping(value),
                    )
        except (ReproError, OSError) as exc:
            out[index] = _error_result(
                envelope, exc, load_s=load_s, cache_hit=hit
            )
            continue
        result.load_s = load_s
        result.cache_hit = hit
        if timings:
            result.compute_s = time.perf_counter() - start
        out[index] = result
    # One stacked pass per (kernel, arguments) group; the batch's wall
    # time is attributed evenly across its members.
    for (kernel, arguments), members in batches.items():
        start = time.perf_counter() if timings else 0.0
        vectors = _batched_mapping(
            kernel, arguments, [view for _index, view in members]
        )
        compute_s = (
            (time.perf_counter() - start) / len(members) if timings else 0.0
        )
        for (index, view), values in zip(members, vectors):
            envelope = chunk[index]
            load_s, hit = spans[index]
            times = _mapping_times(view.columns, kernel, arguments)
            out[index] = ArrayResult(
                series_id=envelope.series_id,
                kernel=kernel,
                kind="mapping",
                arrays=_mapping_arrays(times, values),
                load_s=load_s,
                compute_s=compute_s,
                cache_hit=hit,
            )
    return [result for result in out if result is not None]


# ----------------------------------------------------------------------
# Decode: arrays back into the objects run_envelope produces.
# ----------------------------------------------------------------------
def _score_of(kernel: str, result: Any) -> float:
    """The TOP-k score, recomputed exactly as the solo kernels do."""
    if kernel == "threshold":
        return float(len(result))
    if kernel == "expected_value":
        return float(
            sum(result.values()) / len(result) if result else 0.0
        )
    return float(max(result.values(), default=0.0))


def decode_result(
    packed: "PackedResult | ArrayResult", buffer: Any = None
) -> tuple[Any, float]:
    """Rehydrate one series' ``(result, score)`` from its arrays.

    ``packed.arrays`` holds live numpy arrays (:class:`ArrayResult`, the
    pickle fallback) or :class:`ArraySpec` slices into ``buffer`` (the
    shared-memory path).  Either way the objects built here are
    value-identical to what the per-series kernels return, which is what
    keeps both transports inside the bit-identity gate.
    """

    def _array(name: str) -> np.ndarray:
        entry = packed.arrays[name]
        if isinstance(entry, ArraySpec):
            return np.frombuffer(
                buffer,
                dtype=np.dtype(entry.dtype),
                count=entry.count,
                offset=entry.offset,
            ).reshape(entry.shape)
        return entry

    if packed.kind == "mapping":
        result: Any = {
            int(t): float(v)
            for t, v in zip(
                _array("times").tolist(), _array("values").tolist()
            )
        }
    elif packed.kind == "rows":
        # Mirrors ProbabilisticView.take: the vectorised per-tuple checks
        # ran at view construction, so __post_init__ is safely skipped.
        pool = packed.meta[0]
        new = ProbTuple.__new__
        assign = object.__setattr__
        result = []
        for t, low, high, probability, code in zip(
            _array("t").tolist(),
            _array("low").tolist(),
            _array("high").tolist(),
            _array("probability").tolist(),
            _array("code").tolist(),
        ):
            item = new(ProbTuple)
            assign(item, "t", t)
            assign(item, "low", low)
            assign(item, "high", high)
            assign(item, "probability", probability)
            assign(item, "label", pool[code])
            result.append(item)
    elif packed.kind == "worlds":
        times = _array("times").tolist()
        values = _array("values")
        outside = _array("outside")
        n_worlds = int(packed.meta[0])
        result = [
            [
                [t, None if outside[row, col] else float(values[row, col])]
                for col, t in enumerate(times)
            ]
            for row in range(n_worlds)
        ]
        # The simulate score is the series' time count, not a result
        # reduction — settle it here where the time axis is at hand.
        return result, float(len(times))
    else:  # pragma: no cover - "error" results never reach decode.
        raise ValueError(f"cannot decode result kind {packed.kind!r}")
    return result, _score_of(packed.kernel, result)


# ----------------------------------------------------------------------
# Packing: one block per chunk.
# ----------------------------------------------------------------------
def pack_chunk(results: list[ArrayResult], shm_name: str) -> ChunkDescriptor:
    """Copy one chunk's arrays into a named block; return its descriptor.

    Creates the block under the parent-chosen ``shm_name`` (collisions
    are impossible: the parent numbers names from a per-backend arena),
    unregisters it from this process's resource tracker (the parent owns
    the unlink), and closes the local handle.  On any failure after
    creation the block is unlinked here and the error propagates — the
    caller falls back to the pickle transport.
    """
    from multiprocessing import shared_memory

    offset = 0
    specs: list[dict[str, ArraySpec]] = []
    for result in results:
        entry: dict[str, ArraySpec] = {}
        for name, array in result.arrays.items():
            array = np.ascontiguousarray(array)
            result.arrays[name] = array
            entry[name] = ArraySpec(
                offset=offset, dtype=array.dtype.str, shape=array.shape
            )
            offset = _aligned(offset + array.nbytes)
        specs.append(entry)
    nbytes = max(offset, _ALIGN)
    shm = shared_memory.SharedMemory(name=shm_name, create=True, size=nbytes)
    try:
        for result, entry in zip(results, specs):
            for name, spec in entry.items():
                array = result.arrays[name]
                if not array.size:
                    continue
                target = np.frombuffer(
                    shm.buf,
                    dtype=array.dtype,
                    count=array.size,
                    offset=spec.offset,
                ).reshape(array.shape)
                target[...] = array
                del target
        packed = tuple(
            PackedResult(
                series_id=result.series_id,
                kernel=result.kernel,
                kind=result.kind,
                arrays=entry,
                meta=result.meta,
                error=result.error,
                load_s=result.load_s,
                compute_s=result.compute_s,
                cache_hit=result.cache_hit,
            )
            for result, entry in zip(results, specs)
        )
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except OSError:  # pragma: no cover - already gone.
            pass
        raise
    _untrack(shm)
    shm.close()
    return ChunkDescriptor(shm_name=shm_name, nbytes=nbytes, results=packed)


class ShmArena:
    """Parent-side block lifecycle: naming, rehydration, reaping.

    Names are generated *before* chunks are submitted, so every block a
    worker might create is known to the parent up front — the invariant
    that makes cleanup total: on success :meth:`unpack` unlinks inside
    its ``finally``; on worker crash or fallback :meth:`reap` unlinks by
    name, tolerating blocks that were never created.
    """

    def __init__(self) -> None:
        self._prefix = f"repro-{os.getpid()}-{secrets.token_hex(4)}"
        self._lock = threading.Lock()
        self._counter = 0

    def next_name(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self._prefix}-{self._counter}"

    def unpack(
        self, descriptor: ChunkDescriptor
    ) -> list[tuple[PackedResult, Any, float]]:
        """Attach, decode every series, and always close + unlink.

        Returns ``(packed, result, score)`` triples in chunk order;
        error entries decode to ``(packed, None, 0.0)``.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
        try:
            out = []
            for packed in descriptor.results:
                if packed.error is not None:
                    out.append((packed, None, 0.0))
                    continue
                result, score = decode_result(packed, buffer=shm.buf)
                out.append((packed, result, score))
            return out
        finally:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - stray array view.
                pass
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def reap(self, name: str) -> None:
        """Unlink a block that may or may not exist (idempotent)."""
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive.
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
