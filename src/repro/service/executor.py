"""Parallel execution of planned catalog-wide SELECT statements.

One :class:`CatalogQueryService` owns a catalog, a worker pool width, and a
:class:`~repro.service.cache.MatrixCache`.  Executing a statement fans the
plan's per-series tasks over a :class:`~concurrent.futures.ThreadPoolExecutor`
— the work is numpy (``.npz`` decoding, vectorised validation, grouped
reductions), which releases the GIL, so the fan-out scales with cores on
cold reads and stays overhead-free on warm ones.  Results come back in
deterministic order: series id, or score-descending when ``TOP k`` ranks.

The sequential path (``max_workers=1``) runs the exact same per-task code
in a plain loop; the parity tests pin the two paths — and the ad-hoc
one-series-at-a-time loop they replace — to identical results.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import (
    InvalidParameterError,
    QueryError,
    ReproError,
)
from repro.service.cache import MatrixCache
from repro.service.planner import QueryPlan, SeriesTask, plan_select
from repro.store.catalog import Catalog
from repro.view.sql import SelectQuery, parse_statement

__all__ = [
    "CatalogQueryService",
    "SelectResult",
    "SeriesResult",
    "execute_select",
    "restrict_time_range",
]


def restrict_time_range(
    view: ProbabilisticView, lo: float | None, hi: float | None
) -> ProbabilisticView:
    """The sub-view whose tuples satisfy ``lo <= t <= hi``.

    Returns the input unchanged when no bound cuts anything — the common
    unbounded query never copies columns.
    """
    if lo is None and hi is None:
        return view
    cols = view.columns
    mask = np.ones(cols.t.size, dtype=bool)
    if lo is not None:
        mask &= cols.t >= lo
    if hi is not None:
        mask &= cols.t <= hi
    if bool(mask.all()):
        return view
    indices = np.flatnonzero(mask)
    return ProbabilisticView.from_columns(
        view.name,
        cols.t[indices],
        cols.low[indices],
        cols.high[indices],
        cols.probability[indices],
        label_code=cols.label_code[indices],
        label_pool=cols.labels,
    )


@dataclass(frozen=True)
class SeriesResult:
    """One series' contribution to a catalog-wide SELECT.

    ``result`` is whatever the aggregate's underlying one-shot query
    returns for this series (a tuple list for ``threshold``, a per-time
    dict otherwise); ``score`` is the scalar ``TOP k`` ranked by.
    """

    series_id: str
    score: float
    result: Any

    @property
    def size(self) -> int:
        return len(self.result)


@dataclass(frozen=True)
class SelectResult:
    """Everything one SELECT statement produced.

    ``results`` holds the (possibly TOP-k-truncated) per-series results in
    result order; ``matched`` every series id the SERIES pattern selected,
    so a truncated result still reports what was scanned.
    """

    aggregate: str
    score_label: str
    results: tuple[SeriesResult, ...]
    matched: tuple[str, ...]

    def scores(self) -> dict[str, float]:
        return {entry.series_id: entry.score for entry in self.results}

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"SelectResult(aggregate={self.aggregate!r}, "
            f"series={len(self.results)}/{len(self.matched)})"
        )


class CatalogQueryService:
    """Set-oriented query engine over one persistent catalog.

    Parameters
    ----------
    catalog:
        A :class:`~repro.store.catalog.Catalog` or the path of one (opened
        read-only style: missing catalogs raise instead of being created).
    max_workers:
        Fan-out width; ``1`` runs sequentially (the parity reference),
        ``None`` picks ``min(16, cpus + 4)``.
    cache_budget_bytes:
        Byte budget of the materialised-view cache; repeated statements on
        an unchanged catalog skip every ``.npz`` reload.
    cache:
        Share an existing :class:`MatrixCache` between services instead.

    Examples
    --------
    >>> # service = CatalogQueryService("/data/catalogs/main")
    >>> # service.execute("SELECT exceedance(21.0) FROM CATALOG "
    >>> #                 "'/data/catalogs/main' SERIES 'room*' TOP 3")
    """

    def __init__(
        self,
        catalog: Catalog | str | Path,
        *,
        max_workers: int | None = None,
        cache_budget_bytes: int = 64 << 20,
        cache: MatrixCache | None = None,
    ) -> None:
        if not isinstance(catalog, Catalog):
            catalog = Catalog(catalog, create=False)
        self.catalog = catalog
        if max_workers is None:
            max_workers = min(16, (os.cpu_count() or 1) + 4)
        if max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = int(max_workers)
        self.cache = cache if cache is not None else MatrixCache(
            cache_budget_bytes
        )
        # Resolved once: statement/catalog matching happens per request,
        # and the bound root never changes for the service's lifetime.
        self._root_resolved = Path(self.catalog.root).resolve()
        # Created on first parallel statement, reused for the service's
        # lifetime: a warm query must not pay pool setup/teardown.
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------
    def execute(self, statement: str | SelectQuery) -> SelectResult:
        """Parse (if needed), plan, and run one SELECT statement.

        The statement's own ``FROM CATALOG`` path is checked against this
        service's catalog so a statement aimed elsewhere fails loudly
        instead of silently querying the wrong data.
        """
        return self.execute_plan(
            plan_select(self.catalog, self._coerce(statement))
        )

    def execute_many(
        self, statements: "list[str | SelectQuery] | tuple"
    ) -> list[SelectResult]:
        """Batch entry point: run several SELECTs as one fan-out.

        Duplicate statements (after parsing) are planned and executed
        **once** and their result shared across the answer list — the
        synchronous counterpart of the server's per-statement request
        coalescing, for callers holding a whole batch up front (the CLI
        accepts several statements per invocation; library users get one
        warm-cache fan-out instead of N).  The per-series tasks of every
        distinct plan are flattened into a single pool pass, so a batch
        keeps all workers busy even when its individual statements match
        only a few series each.  Results come back in request order.
        """
        queries = [self._coerce(statement) for statement in statements]
        plans: dict[SelectQuery, QueryPlan] = {}
        for query in queries:
            if query not in plans:
                plans[query] = plan_select(self.catalog, query)
        jobs = [
            (plan, task) for plan in plans.values() for task in plan.tasks
        ]
        outcomes = self._map_tasks(jobs)
        results: dict[SelectQuery, SelectResult] = {}
        offset = 0
        for query, plan in plans.items():
            count = len(plan.tasks)
            results[query] = self._finalize(
                plan, outcomes[offset : offset + count]
            )
            offset += count
        return [results[query] for query in queries]

    def execute_plan(self, plan: QueryPlan) -> SelectResult:
        """Run an already-bound plan: fan out, gather, rank."""
        gathered = self._map_tasks([(plan, task) for task in plan.tasks])
        return self._finalize(plan, gathered)

    def accepts(self, query: SelectQuery) -> bool:
        """Whether a parsed statement addresses this service's catalog."""
        return Path(query.catalog_path).resolve() == self._root_resolved

    def _coerce(self, statement: str | SelectQuery) -> SelectQuery:
        """Parse if needed and pin the statement to this catalog."""
        if isinstance(statement, str):
            parsed = parse_statement(statement)
            if not isinstance(parsed, SelectQuery):
                raise QueryError(
                    "CatalogQueryService executes SELECT statements; use "
                    "Database.execute for CREATE VIEW"
                )
            statement = parsed
        if not self.accepts(statement):
            raise QueryError(
                f"statement addresses catalog {statement.catalog_path!r} "
                f"but this service is bound to {str(self.catalog.root)!r}"
            )
        return statement

    def _map_tasks(
        self, jobs: list[tuple[QueryPlan, SeriesTask]]
    ) -> list[SeriesResult]:
        """Run ``(plan, task)`` jobs, parallel when it can pay off.

        A pool that was shut down concurrently (a ``close()`` racing a
        late statement — the service-CLI shutdown path) surfaces as
        :class:`~repro.exceptions.QueryError` instead of a bare
        ``RuntimeError`` traceback.
        """
        if self.max_workers == 1 or len(jobs) <= 1:
            return [self._run_task(plan, task) for plan, task in jobs]
        try:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-service",
                )
            return list(
                self._pool.map(lambda job: self._run_task(*job), jobs)
            )
        except RuntimeError as exc:
            # "cannot schedule new futures after (interpreter) shutdown".
            raise QueryError(
                f"catalog query service is shut down: {exc}"
            ) from exc

    @staticmethod
    def _finalize(
        plan: QueryPlan, gathered: list[SeriesResult]
    ) -> SelectResult:
        """Rank, truncate, and wrap one plan's gathered results."""
        if plan.query.top_k is not None:
            gathered = sorted(
                gathered, key=lambda entry: (-entry.score, entry.series_id)
            )[: plan.query.top_k]
        return SelectResult(
            aggregate=plan.aggregate.name,
            score_label=plan.aggregate.score_label,
            results=tuple(gathered),
            matched=tuple(plan.series_ids),
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent; service stays usable —
        the next parallel statement simply builds a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CatalogQueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Per-series work (runs on pool threads).
    # ------------------------------------------------------------------
    def _run_task(self, plan: QueryPlan, task: SeriesTask) -> SeriesResult:
        try:
            view = self.cache.get(task.cache_key, task.snapshot.load_view)
            view = restrict_time_range(
                view, plan.query.time_lo, plan.query.time_hi
            )
            result, score = plan.aggregate.compute(view, plan.arguments)
        except (ReproError, OSError) as exc:
            # Loading counts too: in a fan-out over hundreds of series,
            # "which series is broken" is the whole diagnostic.
            raise QueryError(
                f"aggregate {plan.aggregate.name!r} failed on series "
                f"{task.series_id!r}: {exc}"
            ) from exc
        return SeriesResult(
            series_id=task.series_id, score=score, result=result
        )


def execute_select(
    statement: str | SelectQuery,
    *,
    max_workers: int | None = None,
    cache_budget_bytes: int = 64 << 20,
) -> SelectResult:
    """One-shot convenience: open the statement's catalog and execute.

    The ergonomic path for ``Database.execute`` and the CLI; long-lived
    callers should hold a :class:`CatalogQueryService` so the matrix cache
    survives between statements.
    """
    if isinstance(statement, str):
        parsed = parse_statement(statement)
        if not isinstance(parsed, SelectQuery):
            raise QueryError(
                "execute_select handles SELECT statements; use "
                "Database.execute for CREATE VIEW"
            )
        statement = parsed
    with CatalogQueryService(
        statement.catalog_path,
        max_workers=max_workers,
        cache_budget_bytes=cache_budget_bytes,
    ) as service:
        return service.execute(statement)
