"""Parallel execution of planned catalog-wide SELECT statements.

One :class:`CatalogQueryService` owns a catalog, a worker pool width, and a
:class:`~repro.service.cache.MatrixCache`.  Executing a statement fans the
plan's per-series tasks over a :class:`~concurrent.futures.ThreadPoolExecutor`
— the work is numpy (``.npz`` decoding, vectorised validation, grouped
reductions), which releases the GIL, so the fan-out scales with cores on
cold reads and stays overhead-free on warm ones.  Results come back in
deterministic order: series id, or score-descending when ``TOP k`` ranks.

The sequential path (``max_workers=1``) runs the exact same per-task code
in a plain loop; the parity tests pin the two paths — and the ad-hoc
one-series-at-a-time loop they replace — to identical results.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import (
    InvalidParameterError,
    QueryError,
    ReproError,
)
from repro.service.cache import MatrixCache
from repro.service.planner import QueryPlan, SeriesTask, plan_select
from repro.store.catalog import Catalog
from repro.view.sql import SelectQuery, parse_statement

__all__ = [
    "CatalogQueryService",
    "SelectResult",
    "SeriesResult",
    "execute_select",
    "restrict_time_range",
]


def restrict_time_range(
    view: ProbabilisticView, lo: float | None, hi: float | None
) -> ProbabilisticView:
    """The sub-view whose tuples satisfy ``lo <= t <= hi``.

    Returns the input unchanged when no bound cuts anything — the common
    unbounded query never copies columns.
    """
    if lo is None and hi is None:
        return view
    cols = view.columns
    mask = np.ones(cols.t.size, dtype=bool)
    if lo is not None:
        mask &= cols.t >= lo
    if hi is not None:
        mask &= cols.t <= hi
    if bool(mask.all()):
        return view
    indices = np.flatnonzero(mask)
    return ProbabilisticView.from_columns(
        view.name,
        cols.t[indices],
        cols.low[indices],
        cols.high[indices],
        cols.probability[indices],
        label_code=cols.label_code[indices],
        label_pool=cols.labels,
    )


@dataclass(frozen=True)
class SeriesResult:
    """One series' contribution to a catalog-wide SELECT.

    ``result`` is whatever the aggregate's underlying one-shot query
    returns for this series (a tuple list for ``threshold``, a per-time
    dict otherwise); ``score`` is the scalar ``TOP k`` ranked by.
    """

    series_id: str
    score: float
    result: Any

    @property
    def size(self) -> int:
        return len(self.result)


@dataclass(frozen=True)
class SelectResult:
    """Everything one SELECT statement produced.

    ``results`` holds the (possibly TOP-k-truncated) per-series results in
    result order; ``matched`` every series id the SERIES pattern selected,
    so a truncated result still reports what was scanned.
    """

    aggregate: str
    score_label: str
    results: tuple[SeriesResult, ...]
    matched: tuple[str, ...]

    def scores(self) -> dict[str, float]:
        return {entry.series_id: entry.score for entry in self.results}

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"SelectResult(aggregate={self.aggregate!r}, "
            f"series={len(self.results)}/{len(self.matched)})"
        )


class CatalogQueryService:
    """Set-oriented query engine over one persistent catalog.

    Parameters
    ----------
    catalog:
        A :class:`~repro.store.catalog.Catalog` or the path of one (opened
        read-only style: missing catalogs raise instead of being created).
    max_workers:
        Fan-out width; ``1`` runs sequentially (the parity reference),
        ``None`` picks ``min(16, cpus + 4)``.
    cache_budget_bytes:
        Byte budget of the materialised-view cache; repeated statements on
        an unchanged catalog skip every ``.npz`` reload.
    cache:
        Share an existing :class:`MatrixCache` between services instead.

    Examples
    --------
    >>> # service = CatalogQueryService("/data/catalogs/main")
    >>> # service.execute("SELECT exceedance(21.0) FROM CATALOG "
    >>> #                 "'/data/catalogs/main' SERIES 'room*' TOP 3")
    """

    def __init__(
        self,
        catalog: Catalog | str | Path,
        *,
        max_workers: int | None = None,
        cache_budget_bytes: int = 64 << 20,
        cache: MatrixCache | None = None,
    ) -> None:
        if not isinstance(catalog, Catalog):
            catalog = Catalog(catalog, create=False)
        self.catalog = catalog
        if max_workers is None:
            max_workers = min(16, (os.cpu_count() or 1) + 4)
        if max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = int(max_workers)
        self.cache = cache if cache is not None else MatrixCache(
            cache_budget_bytes
        )
        # Created on first parallel statement, reused for the service's
        # lifetime: a warm query must not pay pool setup/teardown.
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------
    def execute(self, statement: str | SelectQuery) -> SelectResult:
        """Parse (if needed), plan, and run one SELECT statement.

        The statement's own ``FROM CATALOG`` path is checked against this
        service's catalog so a statement aimed elsewhere fails loudly
        instead of silently querying the wrong data.
        """
        if isinstance(statement, str):
            parsed = parse_statement(statement)
            if not isinstance(parsed, SelectQuery):
                raise QueryError(
                    "CatalogQueryService executes SELECT statements; use "
                    "Database.execute for CREATE VIEW"
                )
            statement = parsed
        if Path(statement.catalog_path).resolve() != Path(
            self.catalog.root
        ).resolve():
            raise QueryError(
                f"statement addresses catalog {statement.catalog_path!r} "
                f"but this service is bound to {str(self.catalog.root)!r}"
            )
        return self.execute_plan(plan_select(self.catalog, statement))

    def execute_plan(self, plan: QueryPlan) -> SelectResult:
        """Run an already-bound plan: fan out, gather, rank."""
        if self.max_workers == 1 or len(plan.tasks) <= 1:
            gathered = [self._run_task(plan, task) for task in plan.tasks]
        else:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-service",
                )
            gathered = list(
                self._pool.map(lambda task: self._run_task(plan, task),
                               plan.tasks)
            )
        if plan.query.top_k is not None:
            gathered.sort(key=lambda entry: (-entry.score, entry.series_id))
            gathered = gathered[: plan.query.top_k]
        return SelectResult(
            aggregate=plan.aggregate.name,
            score_label=plan.aggregate.score_label,
            results=tuple(gathered),
            matched=tuple(plan.series_ids),
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent; service stays usable —
        the next parallel statement simply builds a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CatalogQueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Per-series work (runs on pool threads).
    # ------------------------------------------------------------------
    def _run_task(self, plan: QueryPlan, task: SeriesTask) -> SeriesResult:
        try:
            view = self.cache.get(task.cache_key, task.snapshot.load_view)
            view = restrict_time_range(
                view, plan.query.time_lo, plan.query.time_hi
            )
            result, score = plan.aggregate.compute(view, plan.arguments)
        except (ReproError, OSError) as exc:
            # Loading counts too: in a fan-out over hundreds of series,
            # "which series is broken" is the whole diagnostic.
            raise QueryError(
                f"aggregate {plan.aggregate.name!r} failed on series "
                f"{task.series_id!r}: {exc}"
            ) from exc
        return SeriesResult(
            series_id=task.series_id, score=score, result=result
        )


def execute_select(
    statement: str | SelectQuery,
    *,
    max_workers: int | None = None,
    cache_budget_bytes: int = 64 << 20,
) -> SelectResult:
    """One-shot convenience: open the statement's catalog and execute.

    The ergonomic path for ``Database.execute`` and the CLI; long-lived
    callers should hold a :class:`CatalogQueryService` so the matrix cache
    survives between statements.
    """
    if isinstance(statement, str):
        parsed = parse_statement(statement)
        if not isinstance(parsed, SelectQuery):
            raise QueryError(
                "execute_select handles SELECT statements; use "
                "Database.execute for CREATE VIEW"
            )
        statement = parsed
    with CatalogQueryService(
        statement.catalog_path,
        max_workers=max_workers,
        cache_budget_bytes=cache_budget_bytes,
    ) as service:
        return service.execute(statement)
