"""Parallel execution of planned catalog-wide SELECT statements.

One :class:`CatalogQueryService` owns a catalog, an executor backend, and
a :class:`~repro.service.cache.MatrixCache`.  Executing a statement turns
the plan's per-series tasks into picklable envelopes and hands them to
the backend (:mod:`repro.service.backends`): ``sequential`` is the parity
reference, ``thread`` fans out over a shared-memory pool, ``process``
runs on true multi-core worker processes with per-worker warm caches and
(with layout-v2 segments) zero-copy mmap reads.  Results come back in
deterministic order: series id, or score-descending when ``TOP k`` ranks.

Every backend runs the exact same per-task code
(:func:`repro.service.backends.run_envelope`); the parity tests pin all
of them — and the ad-hoc one-series-at-a-time loop they replaced — to
identical results.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.exceptions import (
    InvalidParameterError,
    QueryError,
    ReproError,
)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.slowlog import DEFAULT_SLOW_QUERY_MS, SlowQueryLog
from repro.obs.trace import NULL_TRACE, QueryTrace
from repro.service.backends import (
    ExecutorBackend,
    make_backend,
    restrict_time_range,
)
from repro.service.cache import MatrixCache
from repro.service.planner import (
    ItemPlan,
    PlanStats,
    QueryPlan,
    SeriesTask,
    plan_statement,
)
from repro.service.synopsis import estimate_series
from repro.store.binary import compute_view_synopsis, load_view_columns
from repro.store.catalog import Catalog, _apply_shadow_mask
from repro.util.jsonio import canonical_dumps
from repro.view.sql import (
    SelectQuery,
    SimulateQuery,
    parse_statement,
    render_statement,
)

__all__ = [
    "ApproxResult",
    "CatalogQueryService",
    "MultiSelectResult",
    "SelectResult",
    "SeriesResult",
    "SimulateResult",
    "execute_select",
    "restrict_time_range",
]


# The statement renderer moved next to the grammar; the old private
# names stay importable because tests and the slow log use them.
_statement_text = render_statement


def _scalar_time(value: Any) -> int | float:
    """JSON-safe time key: integral times stay ints, others floats."""
    number = float(value)
    integral = int(number)
    return integral if number == integral else number


def _serialize_rows(result: Any) -> list[list[Any]]:
    """One series' per-query payload as a deterministic row list.

    ``threshold`` returns :class:`ProbTuple` lists (5-column rows); every
    other aggregate returns a per-time mapping (2-column rows, sorted by
    time so dict ordering can never leak into the payload).
    """
    if isinstance(result, list):
        return [
            [
                _scalar_time(tup.t),
                float(tup.low),
                float(tup.high),
                float(tup.probability),
                str(tup.label),
            ]
            for tup in result
        ]
    return [
        [_scalar_time(t), float(v)] for t, v in sorted(result.items())
    ]


@dataclass(frozen=True)
class SeriesResult:
    """One series' contribution to a catalog-wide SELECT.

    ``result`` is whatever the aggregate's underlying one-shot query
    returns for this series (a tuple list for ``threshold``, a per-time
    dict otherwise); ``score`` is the scalar ``TOP k`` ranked by.
    """

    series_id: str
    score: float
    result: Any

    @property
    def size(self) -> int:
        return len(self.result)


@dataclass(frozen=True)
class SelectResult:
    """Everything one SELECT statement produced.

    ``results`` holds the (possibly TOP-k-truncated) per-series results in
    result order; ``matched`` every series id the SERIES pattern selected,
    so a truncated result still reports what was scanned.  ``stats``
    carries the pruning counters of this query; for ``approx=True``
    results every entry's ``result`` is an estimate/error-bound mapping
    instead of exact rows.  ``trace`` is the query's
    :class:`~repro.obs.trace.QueryTrace` when one was recorded (excluded
    from equality — two runs of the same statement are the same result).
    """

    aggregate: str
    score_label: str
    results: tuple[SeriesResult, ...]
    matched: tuple[str, ...]
    stats: PlanStats | None = None
    approx: bool = False
    trace: Any = field(default=None, compare=False, repr=False)

    def scores(self) -> dict[str, float]:
        return {entry.series_id: entry.score for entry in self.results}

    @property
    def kind(self) -> str:
        """Uniform result discriminator: ``"approx"`` or ``"select"``."""
        return "approx" if self.approx else "select"

    def to_dict(self) -> dict[str, Any]:
        """This result as the JSON-ready payload the wire protocol sends.

        APPROX results carry per-series ``approx`` mappings (estimate
        plus its proven interval) instead of exact ``rows``; exact
        results with plan statistics additionally carry a ``pruning``
        block so clients see how much work the zone maps saved.  The
        payload's ``kind`` stays ``"select"`` with an ``approx`` flag —
        the wire shape predates :attr:`kind` and is pinned by clients.
        """
        if self.approx:
            entries = [
                {
                    "series": entry.series_id,
                    "score": float(entry.score),
                    "approx": {
                        key: float(value)
                        for key, value in sorted(entry.result.items())
                    },
                }
                for entry in self.results
            ]
        else:
            entries = [
                {
                    "series": entry.series_id,
                    "score": float(entry.score),
                    "rows": _serialize_rows(entry.result),
                }
                for entry in self.results
            ]
        payload: dict[str, Any] = {
            "kind": "select",
            "aggregate": self.aggregate,
            "score_label": self.score_label,
            "matched": [str(series_id) for series_id in self.matched],
            "results": entries,
        }
        if self.approx:
            payload["approx"] = True
        if self.stats is not None:
            payload["pruning"] = self.stats.as_dict()
        return payload

    def json(self) -> str:
        """Canonical JSON of :meth:`to_dict` (deterministic bytes)."""
        return canonical_dumps(self.to_dict())

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"SelectResult(aggregate={self.aggregate!r}, "
            f"series={len(self.results)}/{len(self.matched)})"
        )


#: APPROX answers reuse :class:`SelectResult` with ``approx=True`` (the
#: per-series payloads are estimate/interval mappings); the alias gives
#: the uniform result family its fourth name without forking the type.
ApproxResult = SelectResult


@dataclass(frozen=True)
class SimulateResult:
    """Everything one SIMULATE statement produced.

    ``results`` holds one :class:`SeriesResult` per matched series (in
    series-id order) whose ``result`` is the list of sampled worlds —
    each world a ``[t, value]`` list in ascending time order, ``value``
    ``None`` for the OUTSIDE alternative.  ``seed`` is the *resolved*
    statement seed (the default seed when the statement omitted ``SEED``),
    so re-running ``SIMULATE {n} SEED {seed}`` reproduces the result
    bit-for-bit on any backend.
    """

    n_worlds: int
    seed: int
    results: tuple[SeriesResult, ...]
    matched: tuple[str, ...]
    stats: PlanStats | None = None
    trace: Any = field(default=None, compare=False, repr=False)

    @property
    def aggregate(self) -> str:
        return "simulate"

    @property
    def kind(self) -> str:
        return "simulate"

    def to_dict(self) -> dict[str, Any]:
        """This result as the JSON-ready payload the wire protocol sends.

        Per series, ``worlds`` is a list of sampled worlds; each world
        lists ``[t, value]`` pairs in ascending time order with ``null``
        marking the OUTSIDE (off-grid) alternative.  ``seed`` is the
        resolved statement seed, so the payload names its own
        reproduction recipe.
        """
        entries = [
            {
                "series": entry.series_id,
                "worlds": [
                    [
                        [_scalar_time(t), None if v is None else float(v)]
                        for t, v in world
                    ]
                    for world in entry.result
                ],
            }
            for entry in self.results
        ]
        payload: dict[str, Any] = {
            "kind": "simulate",
            "n_worlds": int(self.n_worlds),
            "seed": int(self.seed),
            "matched": [str(series_id) for series_id in self.matched],
            "results": entries,
        }
        if self.stats is not None:
            payload["pruning"] = self.stats.as_dict()
        return payload

    def json(self) -> str:
        """Canonical JSON of :meth:`to_dict` (deterministic bytes)."""
        return canonical_dumps(self.to_dict())

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"SimulateResult(n_worlds={self.n_worlds}, seed={self.seed}, "
            f"series={len(self.results)})"
        )


@dataclass(frozen=True)
class MultiSelectResult:
    """A multi-aggregate select list's results, one entry per item.

    ``items`` holds one complete :class:`SelectResult` per select-list
    item, in select-list order — each bit-identical to running that item
    as its own single-aggregate statement (same pruning, same ranking,
    same stats), they merely shared one scan.
    """

    items: tuple[SelectResult, ...]
    trace: Any = field(default=None, compare=False, repr=False)

    @property
    def aggregate(self) -> str:
        return ", ".join(item.aggregate for item in self.items)

    @property
    def stats(self) -> PlanStats | None:
        """No single pruning record exists — read ``items[*].stats``."""
        return None

    @property
    def kind(self) -> str:
        return "multi_select"

    def to_dict(self) -> dict[str, Any]:
        """This result as the JSON-ready payload the wire protocol sends.

        ``statements`` holds one full :meth:`SelectResult.to_dict`
        payload per select-list item, in list order — byte-for-byte the
        payload each item would produce as its own statement, which is
        exactly the bit-identity the acceptance tests pin.
        """
        return {
            "kind": "multi_select",
            "statements": [item.to_dict() for item in self.items],
        }

    def json(self) -> str:
        """Canonical JSON of :meth:`to_dict` (deterministic bytes)."""
        return canonical_dumps(self.to_dict())

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __repr__(self) -> str:
        return f"MultiSelectResult(aggregates={self.aggregate!r})"


class CatalogQueryService:
    """Set-oriented query engine over one persistent catalog.

    Parameters
    ----------
    catalog:
        A :class:`~repro.store.catalog.Catalog` or the path of one (opened
        read-only style: missing catalogs raise instead of being created).
    max_workers:
        Fan-out width; ``1`` runs sequentially (the parity reference),
        ``None`` picks ``min(16, cpus + 4)`` for threads and ``cpus`` for
        processes.
    cache_budget_bytes:
        Byte budget of the materialised-view cache; repeated statements on
        an unchanged catalog skip every segment reload.  The process
        backend grants the same budget to each worker's private cache.
    cache:
        Share an existing :class:`MatrixCache` between services instead.
    backend:
        ``"thread"`` (default), ``"process"``, ``"sequential"``, or an
        :class:`~repro.service.backends.ExecutorBackend` instance.
    mmap:
        Memory-map layout-v2 segments instead of copying them
        (``None``: on for the process backend, off otherwise; ignored
        for ``.npz`` segments).
    pruning:
        Use segment synopses to skip provably-irrelevant segments and
        series (default).  ``False`` forces the full scan — results are
        identical either way; the flag exists for benchmarking and the
        parity property tests.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` this service's
        counters and latency histograms land in (``None``: the
        process-wide default registry, so one scrape sees every
        service).  Pass a :class:`~repro.obs.metrics.NullRegistry` to
        strip instrumentation entirely — the overhead-benchmark
        baseline and the opt-out for latency-critical embedders.
    slow_query_ms:
        Statements at or over this wall time land in ``self.slow_log``
        (default 500ms; ``0`` records everything).

    Examples
    --------
    >>> # service = CatalogQueryService("/data/catalogs/main",
    >>> #                               backend="process")
    >>> # service.execute("SELECT exceedance(21.0) FROM CATALOG "
    >>> #                 "'/data/catalogs/main' SERIES 'room*' TOP 3")
    """

    def __init__(
        self,
        catalog: Catalog | str | Path,
        *,
        max_workers: int | None = None,
        cache_budget_bytes: int = 64 << 20,
        cache: MatrixCache | None = None,
        backend: "str | ExecutorBackend" = "thread",
        mmap: bool | None = None,
        pruning: bool = True,
        registry: MetricsRegistry | None = None,
        slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
    ) -> None:
        if not isinstance(catalog, Catalog):
            catalog = Catalog(catalog, create=False)
        self.catalog = catalog
        self.pruning = bool(pruning)
        # Cumulative pruning/approx counters across this service's
        # lifetime, surfaced by execution_stats() and `server stats`.
        # Kept as a plain per-service dict (the registry may be shared
        # process-wide; these must reset with the service, not outlive
        # it) — the registry gets the same increments under stable
        # metric names.
        self._stats_lock = threading.Lock()
        self._counters = {
            "queries": 0,
            "approx_queries": 0,
            "segments_scanned": 0,
            "segments_pruned": 0,
            "series_skipped": 0,
        }
        self.registry = (
            default_registry() if registry is None else registry
        )
        self._instrumented = bool(self.registry.enabled)
        self.slow_log = SlowQueryLog(threshold_ms=slow_query_ms)
        self._obs_queries = self.registry.counter(
            "repro_queries_total",
            "SELECT statements executed, by aggregate and mode",
        )
        self._obs_segments_scanned = self.registry.counter(
            "repro_segments_scanned_total",
            "Segments the prune phase kept for scanning",
        )
        self._obs_segments_pruned = self.registry.counter(
            "repro_segments_pruned_total",
            "Segments proven irrelevant and skipped",
        )
        self._obs_series_skipped = self.registry.counter(
            "repro_series_skipped_total",
            "Series skipped whole (every segment pruned)",
        )
        self._obs_query_seconds = self.registry.histogram(
            "repro_query_seconds",
            "End-to-end SELECT latency in seconds, by aggregate",
        )
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.cache = cache if cache is not None else MatrixCache(
            cache_budget_bytes
        )
        self._backend = make_backend(
            backend,
            max_workers=max_workers,
            cache=self.cache,
            cache_budget_bytes=cache_budget_bytes,
            mmap=mmap,
            registry=self.registry,
        )
        self.max_workers = self._backend.max_workers
        self._cache_collector = self.cache.register_metrics(
            self.registry, scope="service"
        )
        # Resolved once: statement/catalog matching happens per request,
        # and the bound root never changes for the service's lifetime.
        self._root_resolved = Path(self.catalog.root).resolve()
        self._closed = False

    @property
    def backend(self) -> ExecutorBackend:
        """The live executor backend (read-only)."""
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------
    def execute(
        self,
        statement: str | SelectQuery | SimulateQuery,
        *,
        trace: QueryTrace | None = None,
    ) -> "SelectResult | SimulateResult | MultiSelectResult":
        """Parse (if needed), plan, and run one SELECT/SIMULATE statement.

        The statement's own ``FROM CATALOG`` path is checked against this
        service's catalog so a statement aimed elsewhere fails loudly
        instead of silently querying the wrong data.

        ``trace=None`` (the default) records into a service-owned
        :class:`~repro.obs.trace.QueryTrace` (attached to the result as
        ``result.trace`` and finished here); a caller-supplied trace is
        recorded into but *not* finished — whoever created it owns the
        wall clock, so a server can still time its serialize stage.
        """
        own = trace is None
        if own:
            trace = QueryTrace() if self._instrumented else NULL_TRACE
        if trace.enabled and trace.statement is None:
            trace.statement = (
                statement
                if isinstance(statement, str)
                else _statement_text(statement)
            )
        # An already-parsed statement (the engine parses before routing
        # here) is only re-validated — keep the span contiguous but do
        # not report a second "parse".
        stage = "parse" if isinstance(statement, str) else "validate"
        with trace.stage(stage):
            query = self._coerce(statement)
        plan = plan_statement(
            self.catalog, query, pruning=self.pruning, trace=trace
        )
        return self._execute_traced(plan, trace, own)

    def execute_many(
        self, statements: "list[str | SelectQuery | SimulateQuery] | tuple"
    ) -> "list[SelectResult | SimulateResult | MultiSelectResult]":
        """Batch entry point: run several statements as one fan-out.

        Duplicate statements (after parsing) are planned and executed
        **once** and their result shared across the answer list — the
        synchronous counterpart of the server's per-statement request
        coalescing, for callers holding a whole batch up front (the CLI
        accepts several statements per invocation; library users get one
        warm-cache fan-out instead of N).  The per-series tasks of every
        item of every distinct exact plan are flattened into a single
        pool pass, so a batch keeps all workers busy even when its
        individual statements match only a few series each; APPROX
        statements are answered from synopses without entering the pool
        at all.  Results come back in request order.
        """
        queries = [self._coerce(statement) for statement in statements]
        plans: dict[SelectQuery | SimulateQuery, QueryPlan] = {}
        for query in queries:
            if query not in plans:
                plans[query] = plan_statement(
                    self.catalog, query, pruning=self.pruning
                )
        exact = [
            plan for plan in plans.values() if not plan.stats.approx
        ]
        jobs = [
            (item, task)
            for plan in exact
            for item in plan.items
            for task in item.tasks
        ]
        outcomes = self._map_tasks(jobs)
        results: dict[
            SelectQuery | SimulateQuery,
            SelectResult | SimulateResult | MultiSelectResult,
        ] = {}
        offset = 0
        for plan in exact:
            per_item: list[SelectResult] = []
            for item in plan.items:
                count = len(item.tasks)
                per_item.append(
                    self._finalize_item(
                        plan.query, item, outcomes[offset : offset + count]
                    )
                )
                offset += count
            results[plan.query] = self._wrap(plan, per_item, NULL_TRACE)
        for plan in plans.values():
            if plan.stats.approx:
                results[plan.query] = self._execute_approx(plan)
        return [results[query] for query in queries]

    def execute_plan(
        self, plan: QueryPlan, *, trace: QueryTrace | None = None
    ) -> "SelectResult | SimulateResult | MultiSelectResult":
        """Run an already-bound plan: fan out, gather, rank.

        APPROX plans never reach the backend: they are answered inline
        from the snapshots' synopses — per series a handful of float
        comparisons, independent of the stored tuple count.
        """
        own = trace is None
        if own:
            trace = QueryTrace() if self._instrumented else NULL_TRACE
        return self._execute_traced(plan, trace, own)

    def _execute_traced(
        self, plan: QueryPlan, trace: QueryTrace, own: bool
    ) -> "SelectResult | SimulateResult | MultiSelectResult":
        """Run a plan under a trace; finish the trace only when owned."""
        if trace.enabled:
            trace.backend = self._backend.name
            trace.transport = self._backend.transport
        if plan.stats.approx:
            result = self._execute_approx(plan, trace=trace)
        else:
            # One fan-out for the whole statement: every item's tasks in
            # one pool pass, so a multi-aggregate select list shares the
            # warm cache (and, per cache key, the materialised views)
            # its items would otherwise each load alone.
            jobs = [
                (item, task)
                for item in plan.items
                for task in item.tasks
            ]
            with trace.stage("fan_out"):
                gathered = self._map_tasks(jobs, trace=trace)
            with trace.stage("finalize"):
                per_item = []
                offset = 0
                for item in plan.items:
                    count = len(item.tasks)
                    per_item.append(
                        self._finalize_item(
                            plan.query,
                            item,
                            gathered[offset : offset + count],
                        )
                    )
                    offset += count
            result = self._wrap(plan, per_item, trace)
        self._observe_query(trace, result)
        if own:
            trace.finish()
        return result

    def accepts(self, query: SelectQuery | SimulateQuery) -> bool:
        """Whether a parsed statement addresses this service's catalog."""
        return Path(query.catalog_path).resolve() == self._root_resolved

    def _coerce(
        self, statement: str | SelectQuery | SimulateQuery
    ) -> SelectQuery | SimulateQuery:
        """Parse if needed and pin the statement to this catalog."""
        if isinstance(statement, str):
            parsed = parse_statement(statement)
            if not isinstance(parsed, (SelectQuery, SimulateQuery)):
                raise QueryError(
                    "CatalogQueryService executes SELECT and SIMULATE "
                    "statements; use Database.execute for CREATE VIEW"
                )
            statement = parsed
        if not self.accepts(statement):
            raise QueryError(
                f"statement addresses catalog {statement.catalog_path!r} "
                f"but this service is bound to {str(self.catalog.root)!r}"
            )
        return statement

    def _map_tasks(
        self,
        jobs: list[tuple[ItemPlan, SeriesTask]],
        *,
        trace: QueryTrace = NULL_TRACE,
    ) -> list[SeriesResult]:
        """Run ``(item, task)`` jobs through the backend.

        A closed service refuses new statements with a clear
        :class:`~repro.exceptions.QueryError` on *every* backend — the
        process pool in particular must never surface a pickled
        ``BrokenProcessPool`` traceback for a deliberate ``close()``.

        Worker-side per-series spans come back on the result envelopes
        and are merged into ``trace`` here, on the driving thread — the
        merge looks identical whether the work ran inline, on pool
        threads, or in spawn-started worker processes.
        """
        if self._closed:
            raise QueryError(
                "service closed: CatalogQueryService.close() was called; "
                "create a new service to keep querying"
            )
        envelopes = [item.envelope(task) for item, task in jobs]
        gathered = self._backend.map(envelopes)
        merge = trace.enabled
        results: list[SeriesResult] = []
        for outcome in gathered:
            if outcome.error is not None:
                raise QueryError(outcome.error)
            if merge:
                trace.add_series(
                    outcome.series_id,
                    outcome.load_s,
                    outcome.compute_s,
                    outcome.cache_hit,
                )
            results.append(
                SeriesResult(
                    series_id=outcome.series_id,
                    score=outcome.score,
                    result=outcome.result,
                )
            )
        return results

    def _finalize_item(
        self,
        query: SelectQuery | SimulateQuery,
        item: ItemPlan,
        gathered: list[SeriesResult],
    ) -> SelectResult:
        """Rank, truncate, and wrap one item's gathered results.

        Series the prune phase skipped entirely contribute their
        synthesised empty result (the exact value the kernel returns
        over an empty restricted view) at the correct position — callers
        cannot tell a skipped series from a scanned-and-empty one.
        """
        if item.skipped:
            empty = item.kernel.empty_result(item.arguments)
            by_id = {entry.series_id: entry for entry in gathered}
            for series_id in item.skipped:
                by_id[series_id] = SeriesResult(
                    series_id=series_id, score=0.0, result=empty
                )
            gathered = [by_id[series_id] for series_id in item.series_ids]
        top_k = getattr(query, "top_k", None)
        if top_k is not None:
            gathered = sorted(
                gathered,
                key=lambda entry: (-entry.score, entry.series_id),
            )[:top_k]
        self._record_stats(item.stats, item.kernel.name)
        return SelectResult(
            aggregate=item.kernel.name,
            score_label=item.kernel.score_label,
            results=tuple(gathered),
            matched=tuple(item.series_ids),
            stats=item.stats,
        )

    def _wrap(
        self,
        plan: QueryPlan,
        per_item: list[SelectResult],
        trace: QueryTrace,
    ) -> "SelectResult | SimulateResult | MultiSelectResult":
        """Combine finalized items into the statement's result shape."""
        attached = trace if trace.enabled else None
        if isinstance(plan.query, SimulateQuery):
            inner = per_item[0]
            n_worlds, seed = plan.items[0].arguments
            return SimulateResult(
                n_worlds=int(n_worlds),
                seed=int(seed),
                results=inner.results,
                matched=inner.matched,
                stats=inner.stats,
                trace=attached,
            )
        if len(per_item) == 1:
            return replace(per_item[0], trace=attached)
        return MultiSelectResult(items=tuple(per_item), trace=attached)

    def _execute_approx(
        self, plan: QueryPlan, *, trace: QueryTrace = NULL_TRACE
    ) -> SelectResult:
        """Answer an APPROX plan from synopses alone (no backend fan-out).

        Segments without a stored synopsis — catalogs written before this
        build and never ``synopsize``d — are loaded once and their
        synopsis computed in memory, so old catalogs degrade to a scan
        instead of erroring; the count of such lazy loads is reported as
        ``segments_scanned``.  Partially-shadowed segments (some of their
        valid times superseded by newer visible revisions) get the same
        treatment: their stored synopsis covers rows the AS OF view
        excludes, so the bounds are recomputed from the masked columns —
        segments invisible at the AS OF point never reach this loop at
        all (the planner's frontier already excluded them).
        """
        if self._closed:
            raise QueryError(
                "service closed: CatalogQueryService.close() was called; "
                "create a new service to keep querying"
            )
        lazy_loads = 0
        gathered: list[SeriesResult] = []
        with trace.stage("compute"):
            for task in plan.tasks:
                snapshot = task.snapshot
                shadows = task.shadows or ((),) * len(task.segments)
                stored = (
                    task.synopses
                    if len(task.synopses) == len(task.segments)
                    else snapshot.segment_synopses()
                )
                synopses = []
                try:
                    for name, shadow, synopsis in zip(
                        task.segments, shadows, stored
                    ):
                        if synopsis is None or shadow:
                            columns = load_view_columns(
                                snapshot.directory / name
                            )
                            if shadow:
                                columns = _apply_shadow_mask(columns, shadow)
                            synopsis = compute_view_synopsis(
                                columns["t"],
                                columns["low"],
                                columns["high"],
                                columns["probability"],
                            )
                            lazy_loads += 1
                        synopses.append(synopsis)
                    estimate = estimate_series(
                        plan.aggregate.name,
                        plan.arguments,
                        synopses,
                        plan.query.time_lo,
                        plan.query.time_hi,
                    )
                except (ReproError, OSError) as exc:
                    raise QueryError(
                        f"APPROX {plan.aggregate.name!r} failed on series "
                        f"{task.series_id!r}: {exc}"
                    ) from exc
                gathered.append(
                    SeriesResult(
                        series_id=task.series_id,
                        score=estimate.estimate,
                        result=estimate.as_result(),
                    )
                )
        with trace.stage("finalize"):
            if plan.query.top_k is not None:
                gathered = sorted(
                    gathered,
                    key=lambda entry: (-entry.score, entry.series_id),
                )[: plan.query.top_k]
            stats = replace(plan.stats, segments_scanned=lazy_loads)
            self._record_stats(stats, plan.aggregate.name)
        return SelectResult(
            aggregate=plan.aggregate.name,
            score_label=plan.aggregate.score_label,
            results=tuple(gathered),
            matched=tuple(plan.series_ids),
            stats=stats,
            approx=True,
            trace=trace if trace.enabled else None,
        )

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def _record_stats(self, stats: PlanStats, aggregate: str) -> None:
        with self._stats_lock:
            self._counters["queries"] += 1
            if stats.approx:
                self._counters["approx_queries"] += 1
            self._counters["segments_scanned"] += stats.segments_scanned
            self._counters["segments_pruned"] += stats.segments_pruned
            self._counters["series_skipped"] += stats.series_skipped
        if self._instrumented:
            self._obs_queries.inc(
                aggregate=aggregate,
                mode="approx" if stats.approx else "exact",
            )
            if stats.segments_scanned:
                self._obs_segments_scanned.inc(stats.segments_scanned)
            if stats.segments_pruned:
                self._obs_segments_pruned.inc(stats.segments_pruned)
            if stats.series_skipped:
                self._obs_series_skipped.inc(stats.series_skipped)

    def _observe_query(
        self,
        trace: QueryTrace,
        result: "SelectResult | SimulateResult | MultiSelectResult",
    ) -> None:
        """Latency histogram + slow-query log for one finished statement.

        ``execute_many`` bypasses this (its statements share one fan-out,
        so no per-statement wall time exists) — batch statements count in
        every counter but not in the latency histogram or slow log.
        """
        if not trace.enabled:
            return
        elapsed = trace.elapsed()
        self._obs_query_seconds.observe(elapsed, aggregate=result.aggregate)
        extra = (
            result.stats.as_dict() if result.stats is not None else None
        )
        self.slow_log.observe(trace, extra=extra)

    def execution_stats(self) -> dict[str, int]:
        """Cumulative pruning/approx counters since the service started."""
        with self._stats_lock:
            return dict(self._counters)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the backend and refuse further statements.

        Idempotent.  Subsequent ``execute``/``execute_many`` calls raise
        ``QueryError("service closed: ...")`` — uniformly across thread
        and process backends, never a pool-internal traceback.
        """
        self._closed = True
        self.registry.unregister_collector(self._cache_collector)
        self._backend.close()

    def __enter__(self) -> "CatalogQueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def execute_select(
    statement: str | SelectQuery | SimulateQuery,
    *,
    max_workers: int | None = None,
    cache_budget_bytes: int = 64 << 20,
    backend: str = "thread",
    mmap: bool | None = None,
    pruning: bool = True,
    registry: MetricsRegistry | None = None,
    trace: QueryTrace | None = None,
) -> "SelectResult | SimulateResult | MultiSelectResult":
    """One-shot convenience: open the statement's catalog and execute.

    The ergonomic path for ``Database.execute`` and the CLI; long-lived
    callers should hold a :class:`CatalogQueryService` so the matrix cache
    (and, for the process backend, the worker pool) survives between
    statements.
    """
    if isinstance(statement, str):
        parsed = parse_statement(statement)
        if not isinstance(parsed, (SelectQuery, SimulateQuery)):
            raise QueryError(
                "execute_select handles SELECT and SIMULATE statements; "
                "use Database.execute for CREATE VIEW"
            )
        statement = parsed
    with CatalogQueryService(
        statement.catalog_path,
        max_workers=max_workers,
        cache_budget_bytes=cache_budget_bytes,
        backend=backend,
        mmap=mmap,
        pruning=pruning,
        registry=registry,
    ) as service:
        return service.execute(statement, trace=trace)
