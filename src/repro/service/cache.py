"""Byte-budgeted LRU cache of materialised view column-matrices.

The catalog stores each series as immutable ``.npz`` segments; a query
touching a series pays one :func:`np.load` per segment plus the columnar
view construction (validation, sort index, per-time grouping).  Repeated
catalog-wide queries would pay that again for every series on every
statement.  :class:`MatrixCache` keeps the materialised
:class:`~repro.db.prob_view.ProbabilisticView` objects — their column
arrays are the dominant cost — under a byte budget with LRU eviction, so a
warm query is pure numpy over already-resident arrays.

Keys carry the snapshot *generation* (segment count, tuple count, last
segment name), which changes whenever a series' stored contents change:
an append makes the old entry unreachable, and inserting the new
generation drops any stale entries for the same series.  Entries are
immutable once cached (views are read-only), so handing the same object
to many threads is safe; the cache itself is guarded by a lock, while
loader callables run *outside* it so cold misses on different series
materialise in parallel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import InvalidParameterError

__all__ = ["CacheStats", "MatrixCache"]

#: Key layout: (catalog root, series id, generation token, segment
#: subset, revision-frontier token).  The subset component is ``()`` for
#: the full visible segment list; a pruned plan materialises only its
#: surviving segments under the subset's names, so differently-pruned
#: views of the same generation coexist instead of evicting each other.
#: The frontier token is ``()`` on never-revised series and
#: ``("k", effective_knowledge_time)`` otherwise, so warm entries never
#: leak across ``AS OF`` points while all AS OF values that resolve to
#: the same frontier share one entry.
CacheKey = tuple[str, str, tuple, tuple, tuple]

#: Fixed per-entry overhead estimate (view object, index dict slots, key).
_ENTRY_OVERHEAD = 512


def view_nbytes(view: ProbabilisticView) -> int:
    """Approximate resident size of one materialised view.

    Counts the five tuple columns, the sort index and per-time grouping
    arrays, the sorted-probability shadow used for mass checks, and the
    label pool — everything :class:`ProbabilisticView` keeps per tuple.
    """
    cols = view.columns
    arrays = (
        cols.t, cols.low, cols.high, cols.probability, cols.label_code,
        cols.order, cols.times, cols.starts, cols.counts,
    )
    total = sum(a.nbytes for a in arrays)
    total += cols.probability.nbytes  # The _prob_sorted shadow column.
    total += sum(64 + 2 * len(label) for label in cols.labels)
    # The lazy ProbTuple slot list: one pointer per tuple.
    total += 8 * len(view)
    return total + _ENTRY_OVERHEAD


@dataclass
class CacheStats:
    """Counters exposed for benchmarks and the CLI's ``--stats`` output."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    oversize_skips: int = 0
    current_bytes: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MatrixCache:
    """LRU cache of materialised views under a byte budget.

    Parameters
    ----------
    budget_bytes:
        Total resident budget.  An entry that alone exceeds the budget is
        returned to the caller but not cached (counted in
        ``stats.oversize_skips``), so one giant series cannot wipe the
        cache for everything else.

    Examples
    --------
    >>> cache = MatrixCache(64 << 20)
    >>> # view = cache.get(("/cat", "room", generation, ()),
    >>> #                  snapshot.load_view)
    """

    def __init__(self, budget_bytes: int = 64 << 20) -> None:
        if budget_bytes < 1:
            raise InvalidParameterError(
                f"cache budget must be >= 1 byte, got {budget_bytes}"
            )
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, tuple[ProbabilisticView, int]] = (
            OrderedDict()
        )
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def get(
        self, key: CacheKey, loader: Callable[[], ProbabilisticView]
    ) -> ProbabilisticView:
        """The cached view for ``key``, loading (and caching) on a miss.

        ``loader`` runs outside the lock: concurrent misses on *different*
        keys load in parallel.  Two threads racing on the *same* key may
        both load; the second insert simply replaces the first with an
        identical value — wasted work, never inconsistency.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return entry[0]
            self._stats.misses += 1
        view = loader()
        self._insert(key, view)
        return view

    def _insert(self, key: CacheKey, view: ProbabilisticView) -> None:
        nbytes = view_nbytes(view)
        with self._lock:
            if nbytes > self.budget_bytes:
                self._stats.oversize_skips += 1
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._stats.current_bytes -= old[1]
            # An append produced a new generation: any older generation of
            # the same series is unreachable garbage — drop it now rather
            # than waiting for LRU pressure.  Same-generation entries with
            # a different segment subset stay: a pruned view and the full
            # view of one generation are both reachable.
            stale = [
                other
                for other in self._entries
                if other[0] == key[0]
                and other[1] == key[1]
                and other[2] != key[2]
            ]
            for other in stale:
                _, old_bytes = self._entries.pop(other)
                self._stats.current_bytes -= old_bytes
                self._stats.evictions += 1
            self._entries[key] = (view, nbytes)
            self._stats.current_bytes += nbytes
            while self._stats.current_bytes > self.budget_bytes:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._stats.current_bytes -= evicted_bytes
                self._stats.evictions += 1
            self._stats.entries = len(self._entries)

    # ------------------------------------------------------------------
    # Introspection / maintenance.
    # ------------------------------------------------------------------
    def register_metrics(self, registry, *, scope: str = "service"):
        """Export this cache's counters as scrape-time gauges.

        Registers a collector on ``registry`` that copies the current
        :class:`CacheStats` into ``repro_cache_*`` gauges (labelled by
        ``scope``) right before every snapshot/exposition — cache state
        is external fact, not an event stream, so it is sampled rather
        than incremented.  Returns the collector; pass it to
        ``registry.unregister_collector`` when the cache's owner shuts
        down, or the shared registry keeps scraping a dead cache.
        """
        hits = registry.gauge(
            "repro_cache_hits", "Matrix-cache lookup hits"
        )
        misses = registry.gauge(
            "repro_cache_misses", "Matrix-cache lookup misses"
        )
        evictions = registry.gauge(
            "repro_cache_evictions", "Matrix-cache LRU/stale evictions"
        )
        entries = registry.gauge(
            "repro_cache_entries", "Matrix-cache resident entries"
        )
        resident = registry.gauge(
            "repro_cache_bytes", "Matrix-cache resident bytes"
        )

        def collect() -> None:
            stats = self.stats
            hits.set(stats.hits, scope=scope)
            misses.set(stats.misses, scope=scope)
            evictions.set(stats.evictions, scope=scope)
            entries.set(stats.entries, scope=scope)
            resident.set(stats.current_bytes, scope=scope)

        registry.register_collector(collect)
        return collect

    @property
    def stats(self) -> CacheStats:
        """A consistent copy of the counters (safe to read while queried)."""
        with self._lock:
            return CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                evictions=self._stats.evictions,
                oversize_skips=self._stats.oversize_skips,
                current_bytes=self._stats.current_bytes,
                entries=len(self._entries),
            )

    def clear(self) -> None:
        """Drop every entry (counters other than bytes/entries persist)."""
        with self._lock:
            self._entries.clear()
            self._stats.current_bytes = 0
            self._stats.entries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"MatrixCache(budget={self.budget_bytes}, "
            f"entries={stats.entries}, bytes={stats.current_bytes}, "
            f"hit_rate={stats.hit_rate:.1%})"
        )
