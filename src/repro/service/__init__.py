"""Catalog-wide query service: plan, fan out, cache, rank.

The layer that turns a directory of persisted probabilistic views
(:mod:`repro.store`) into something queryable *as a database*: one
``SELECT`` statement evaluates an aggregate over every (or a glob-selected
subset of) series in a catalog, per-series work fans out over a pluggable
executor backend (sequential / thread pool / spawn-safe process pool with
zero-copy mmap segment reads), and materialised view matrices are kept
warm in a byte-budgeted LRU cache so repeated statements never reload a
segment.

* :mod:`repro.service.plan` — the logical plan tree every statement
  lowers through (scan → prune → kernels → combine → finalize);
* :mod:`repro.service.planner` — physical lowering: kernel resolution +
  argument checks + snapshot fan-out list per select-list item, plus
  the picklable per-series task envelopes backends consume;
* :mod:`repro.service.backends` — the executor backends and the single
  per-envelope compute path they all share;
* :mod:`repro.service.shm` — the shared-memory result transport the
  process backend ships numeric result columns through (descriptor
  pickling, chunk-batched kernels, crash-safe arena lifecycle);
* :mod:`repro.service.executor` — runs the plan through the selected
  backend and ranks the per-series results;
* :mod:`repro.service.cache` — the shared materialised-view cache.
"""

from repro.service.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    make_backend,
)
from repro.service.cache import CacheStats, MatrixCache
from repro.service.executor import (
    ApproxResult,
    CatalogQueryService,
    MultiSelectResult,
    SelectResult,
    SeriesResult,
    SimulateResult,
    execute_select,
)
from repro.service.plan import LogicalPlan, explain, logical_plan
from repro.service.planner import (
    AGGREGATES,
    KERNELS,
    ItemPlan,
    QueryPlan,
    plan_select,
    plan_statement,
)
from repro.service.shm import ChunkDescriptor, ShmArena, shm_available

__all__ = [
    "AGGREGATES",
    "ApproxResult",
    "BACKEND_NAMES",
    "CacheStats",
    "CatalogQueryService",
    "ChunkDescriptor",
    "ExecutorBackend",
    "ItemPlan",
    "KERNELS",
    "LogicalPlan",
    "MatrixCache",
    "MultiSelectResult",
    "ProcessBackend",
    "QueryPlan",
    "SelectResult",
    "SequentialBackend",
    "SeriesResult",
    "ShmArena",
    "SimulateResult",
    "ThreadBackend",
    "execute_select",
    "explain",
    "logical_plan",
    "make_backend",
    "plan_select",
    "plan_statement",
    "shm_available",
]
