"""Catalog-wide query service: plan, fan out, cache, rank.

The layer that turns a directory of persisted probabilistic views
(:mod:`repro.store`) into something queryable *as a database*: one
``SELECT`` statement evaluates an aggregate over every (or a glob-selected
subset of) series in a catalog, per-series work fans out over a thread
pool, and materialised view matrices are kept warm in a byte-budgeted LRU
cache so repeated statements never reload a segment.

* :mod:`repro.service.planner` — binds a parsed statement to a catalog:
  aggregate resolution + argument checks + snapshot fan-out list;
* :mod:`repro.service.executor` — runs the plan (parallel or sequential)
  and ranks the per-series results;
* :mod:`repro.service.cache` — the shared materialised-view cache.
"""

from repro.service.cache import CacheStats, MatrixCache
from repro.service.executor import (
    CatalogQueryService,
    SelectResult,
    SeriesResult,
    execute_select,
)
from repro.service.planner import AGGREGATES, QueryPlan, plan_select

__all__ = [
    "AGGREGATES",
    "CacheStats",
    "CatalogQueryService",
    "MatrixCache",
    "QueryPlan",
    "SelectResult",
    "SeriesResult",
    "execute_select",
    "plan_select",
]
