"""Catalog-wide query service: plan, fan out, cache, rank.

The layer that turns a directory of persisted probabilistic views
(:mod:`repro.store`) into something queryable *as a database*: one
``SELECT`` statement evaluates an aggregate over every (or a glob-selected
subset of) series in a catalog, per-series work fans out over a pluggable
executor backend (sequential / thread pool / spawn-safe process pool with
zero-copy mmap segment reads), and materialised view matrices are kept
warm in a byte-budgeted LRU cache so repeated statements never reload a
segment.

* :mod:`repro.service.planner` — binds a parsed statement to a catalog:
  aggregate resolution + argument checks + snapshot fan-out list, plus
  the picklable per-series task envelopes backends consume;
* :mod:`repro.service.backends` — the executor backends and the single
  per-envelope compute path they all share;
* :mod:`repro.service.executor` — runs the plan through the selected
  backend and ranks the per-series results;
* :mod:`repro.service.cache` — the shared materialised-view cache.
"""

from repro.service.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    make_backend,
)
from repro.service.cache import CacheStats, MatrixCache
from repro.service.executor import (
    CatalogQueryService,
    SelectResult,
    SeriesResult,
    execute_select,
)
from repro.service.planner import AGGREGATES, QueryPlan, plan_select

__all__ = [
    "AGGREGATES",
    "BACKEND_NAMES",
    "CacheStats",
    "CatalogQueryService",
    "ExecutorBackend",
    "MatrixCache",
    "ProcessBackend",
    "QueryPlan",
    "SelectResult",
    "SequentialBackend",
    "SeriesResult",
    "ThreadBackend",
    "execute_select",
    "make_backend",
    "plan_select",
]
