"""Density distance — the paper's quality measure for density metrics (eq. 1).

The empirical CDF ``Q_Z`` of the probability integral transforms is
estimated with a histogram; the density distance is the Euclidean distance
between ``Q_Z`` and the ideal uniform CDF ``U_Z(z) = z``, accumulated over
the histogram grid on (0, 1):

    d(U_Z, Q_Z) = sqrt( sum_x (U_Z(x) - Q_Z(x))^2 )

Lower is better; zero means the transforms are exactly uniform at the grid
resolution.  The grid size (``n_bins``) matches the paper's histogram
approximation and defaults to 100 cells.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.histogram import HistogramDistribution
from repro.exceptions import DataError, InvalidParameterError
from repro.metrics.base import DensitySeries
from repro.timeseries.series import TimeSeries
from repro.util.validation import require_finite_array

__all__ = ["density_distance", "density_distance_from_pit"]

#: Histogram resolution for the Q_Z estimate.
DEFAULT_BINS = 100


def density_distance_from_pit(z: np.ndarray, n_bins: int = DEFAULT_BINS) -> float:
    """Density distance of pre-computed probability integral transforms.

    ``z`` must lie in ``[0, 1]``.  The empirical CDF is evaluated at the
    ``n_bins`` interior grid points ``x = k / n_bins`` and compared with the
    uniform CDF there.

    >>> uniform = np.linspace(0.005, 0.995, 100)
    >>> density_distance_from_pit(uniform) < 0.1
    True
    >>> clumped = np.full(100, 0.5)
    >>> density_distance_from_pit(clumped) > 2.0
    True
    """
    data = require_finite_array("z", z)
    if n_bins < 2:
        raise InvalidParameterError(f"n_bins must be >= 2, got {n_bins}")
    if np.any((data < 0.0) | (data > 1.0)):
        raise DataError("probability integral transforms must lie in [0, 1]")
    histogram = HistogramDistribution.from_samples(
        data, n_bins=n_bins, support=(0.0, 1.0)
    )
    grid = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]  # Interior grid points.
    observed = np.asarray(histogram.cdf(grid))
    ideal = grid  # U_Z(x) = x on (0, 1).
    return math.sqrt(float(np.sum((ideal - observed) ** 2)))


def density_distance(
    forecasts: DensitySeries,
    series: TimeSeries,
    n_bins: int = DEFAULT_BINS,
) -> float:
    """Density distance of a metric's forecasts against realised values.

    Convenience wrapper: computes the probability integral transforms of
    ``forecasts`` against ``series`` and scores them with
    :func:`density_distance_from_pit`.
    """
    return density_distance_from_pit(forecasts.pit(series), n_bins=n_bins)
