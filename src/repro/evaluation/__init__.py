"""Quality evaluation of dynamic density metrics (paper Section II-B, VII-D).

Because the true densities are unobservable, quality is measured indirectly:
the probability integral transform maps realised values through their
forecast CDFs; if the forecasts equal the truth, the transforms are i.i.d.
uniform, and the *density distance* (eq. 1) measures the departure from
uniformity.  The Engle ARCH test of Section VII-D verifies that a series
exhibits the time-varying volatility that justifies the GARCH machinery.
"""

from repro.evaluation.density_distance import density_distance, density_distance_from_pit
from repro.evaluation.pit import probability_integral_transform
from repro.evaluation.volatility_test import ArchTestResult, engle_arch_test, rolling_arch_test

__all__ = [
    "ArchTestResult",
    "density_distance",
    "density_distance_from_pit",
    "engle_arch_test",
    "probability_integral_transform",
    "rolling_arch_test",
]
