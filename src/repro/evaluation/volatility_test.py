"""Engle-style ARCH-effect test (paper Section VII-D, eqs. 15-16).

Tests the null hypothesis that mean-model errors ``a_i`` are i.i.d. — i.e.
that the squared errors carry no serial dependence — via the auxiliary
regression

    a^2_i = xi_0 + xi_1 a^2_{i-1} + ... + xi_m a^2_{i-m} + e_i .

The statistic

    Phi(m) = ((gamma_0 - gamma_1) / m) / (gamma_1 / (K - 2m - 1))

(with ``gamma_0`` the total and ``gamma_1`` the residual sum of squares of
the regression) is asymptotically chi-square with ``m`` degrees of freedom
under the null; rejecting it establishes time-varying volatility and
justifies the GARCH metric.  The paper's Fig. 15 averages ``Phi(m)`` over
1800 windows of ``H = 180`` samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.exceptions import DataError, InvalidParameterError
from repro.timeseries.arma import ARMAModel
from repro.timeseries.series import TimeSeries
from repro.util.validation import require_finite_array

__all__ = ["ArchTestResult", "engle_arch_test", "rolling_arch_test"]


@dataclass(frozen=True)
class ArchTestResult:
    """Result of one ARCH-effect test.

    Attributes
    ----------
    statistic:
        The paper's ``Phi(m)``.
    critical_value:
        ``chi^2_m(alpha)`` — the upper 100*(1-alpha) percentile.
    p_value:
        Tail probability of ``statistic`` under ``chi^2_m``.
    m:
        Number of squared-error lags in the auxiliary regression.
    alpha:
        Significance level used for ``critical_value``.
    """

    statistic: float
    critical_value: float
    p_value: float
    m: int
    alpha: float

    @property
    def reject_iid(self) -> bool:
        """True when the i.i.d. null is rejected (volatility is time-varying)."""
        return self.statistic > self.critical_value


def engle_arch_test(
    errors: np.ndarray, m: int, alpha: float = 0.05
) -> ArchTestResult:
    """Run the ARCH test on mean-model errors ``a_i``.

    Parameters
    ----------
    errors:
        Residuals from an ARMA (or other mean) model; they are squared
        internally.
    m:
        Number of lags ``m >= 1`` in the auxiliary regression (eq. 15).
    alpha:
        Significance level (the paper uses 0.05).
    """
    data = require_finite_array("errors", errors)
    if m < 1:
        raise InvalidParameterError(f"m must be >= 1, got {m}")
    if not 0.0 < alpha < 1.0:
        raise InvalidParameterError(f"alpha must be in (0, 1), got {alpha}")
    squared = data**2
    n = squared.size
    if n < 2 * m + 3:
        raise DataError(
            f"need at least 2m + 3 = {2 * m + 3} errors for m={m}, got {n}"
        )
    # Auxiliary regression of a^2_i on its m lags (eq. 15).
    rows = n - m
    design = np.empty((rows, m + 1))
    design[:, 0] = 1.0
    for j in range(1, m + 1):
        design[:, j] = squared[m - j : n - j]
    target = squared[m:]
    coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    fitted = design @ coefficients
    residual_ss = float(np.sum((target - fitted) ** 2))
    total_ss = float(np.sum((target - target.mean()) ** 2))
    dof = rows - m - 1  # K - 2m - 1 with K = n - m regression rows + m.
    if dof <= 0:
        raise DataError(f"not enough observations for m={m}")
    if residual_ss <= 0.0:
        # Perfect fit (degenerate window): infinitely strong rejection.
        statistic = float("inf")
    else:
        statistic = ((total_ss - residual_ss) / m) / (residual_ss / dof)
    critical = float(scipy_stats.chi2.ppf(1.0 - alpha, df=m))
    p_value = float(scipy_stats.chi2.sf(statistic, df=m)) if np.isfinite(statistic) else 0.0
    return ArchTestResult(
        statistic=statistic,
        critical_value=critical,
        p_value=p_value,
        m=m,
        alpha=alpha,
    )


def rolling_arch_test(
    series: TimeSeries,
    m: int,
    *,
    H: int = 180,
    n_windows: int = 1800,
    p: int = 1,
    q: int = 0,
    alpha: float = 0.05,
) -> ArchTestResult:
    """Average ``Phi(m)`` over rolling windows — the paper's Fig. 15 protocol.

    Fits an ARMA(p, q) on each of ``n_windows`` windows of size ``H``
    (evenly spaced over the series), runs the ARCH test on the residuals,
    and reports the *average* statistic against the same critical value.
    Windows where the test is degenerate (non-finite statistic) are skipped.
    """
    if H < 2 * m + 6:
        raise InvalidParameterError(
            f"window H={H} too small for the m={m} ARCH test"
        )
    n = len(series)
    if n < H + 1:
        raise DataError(f"series of length {n} has no windows of size {H}")
    n_windows = max(1, min(n_windows, n - H))
    starts = np.unique(
        np.linspace(0, n - H - 1, n_windows).astype(int)
    )
    statistics = []
    for start in starts:
        window = series.values[start : start + H]
        arma = ARMAModel(p, q).fit(window)
        residuals = arma.residuals_[max(p, q):]
        try:
            result = engle_arch_test(residuals, m, alpha=alpha)
        except DataError:
            continue
        if np.isfinite(result.statistic):
            statistics.append(result.statistic)
    if not statistics:
        raise DataError("every window produced a degenerate ARCH test")
    mean_statistic = float(np.mean(statistics))
    critical = float(scipy_stats.chi2.ppf(1.0 - alpha, df=m))
    return ArchTestResult(
        statistic=mean_statistic,
        critical_value=critical,
        p_value=float(scipy_stats.chi2.sf(mean_statistic, df=m)),
        m=m,
        alpha=alpha,
    )
