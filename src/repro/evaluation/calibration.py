"""Calibration diagnostics beyond the scalar density distance.

The density distance (eq. 1) compresses forecast quality into one number;
this module provides the richer diagnostics an operator would look at when
a metric scores badly:

* :func:`pit_histogram` — the shape of the PIT distribution (U-shaped =
  over-confident, hump-shaped = under-confident, sloped = biased);
* :func:`coverage_curve` — empirical vs nominal coverage of central
  intervals over a grid of kappa values (the paper's "kappa = 3 covers
  ~99.73%" claim, checked);
* :func:`ks_uniformity_test` — the Kolmogorov-Smirnov test against
  uniformity, a classical complement to the histogram-based density
  distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.exceptions import DataError, InvalidParameterError
from repro.metrics.base import DensitySeries
from repro.timeseries.series import TimeSeries
from repro.util.validation import require_finite_array

__all__ = [
    "CalibrationReport",
    "pit_histogram",
    "coverage_curve",
    "ks_uniformity_test",
    "calibration_report",
]


def pit_histogram(z: np.ndarray, n_bins: int = 10) -> np.ndarray:
    """Normalised PIT histogram: bin frequencies that sum to one.

    A calibrated metric yields approximately ``1 / n_bins`` everywhere.
    """
    data = require_finite_array("z", z)
    if n_bins < 2:
        raise InvalidParameterError(f"n_bins must be >= 2, got {n_bins}")
    if np.any((data < 0.0) | (data > 1.0)):
        raise DataError("PIT values must lie in [0, 1]")
    counts, _ = np.histogram(data, bins=np.linspace(0.0, 1.0, n_bins + 1))
    return counts / data.size


def coverage_curve(
    forecasts: DensitySeries,
    series: TimeSeries,
    kappas: tuple[float, ...] = (1.0, 2.0, 3.0),
) -> list[dict[str, float]]:
    """Empirical vs nominal central-interval coverage per kappa.

    For each kappa, the nominal coverage is that of ``mean +- kappa *
    sigma`` under the forecast distribution itself; the empirical coverage
    is the fraction of realised values inside that interval.  Calibrated
    forecasts put the two within sampling noise of each other.
    """
    if not kappas:
        raise InvalidParameterError("provide at least one kappa")
    rows = []
    for kappa in kappas:
        if kappa <= 0:
            raise InvalidParameterError(f"kappa must be > 0, got {kappa}")
        hits = 0
        nominal_total = 0.0
        for forecast in forecasts:
            sigma = forecast.distribution.std()
            low = forecast.mean - kappa * sigma
            high = forecast.mean + kappa * sigma
            nominal_total += forecast.distribution.prob(low, high)
            if low <= series[forecast.t] <= high:
                hits += 1
        rows.append(
            {
                "kappa": float(kappa),
                "nominal": nominal_total / len(forecasts),
                "empirical": hits / len(forecasts),
            }
        )
    return rows


def ks_uniformity_test(z: np.ndarray) -> tuple[float, float]:
    """Kolmogorov-Smirnov test of the PIT against U(0, 1).

    Returns ``(statistic, p_value)``; small p-values reject calibration.
    """
    data = require_finite_array("z", z, min_len=2)
    if np.any((data < 0.0) | (data > 1.0)):
        raise DataError("PIT values must lie in [0, 1]")
    result = scipy_stats.kstest(data, "uniform")
    return float(result.statistic), float(result.pvalue)


@dataclass(frozen=True)
class CalibrationReport:
    """Bundled calibration diagnostics for one metric run."""

    density_distance: float
    ks_statistic: float
    ks_p_value: float
    histogram: np.ndarray
    coverage: tuple[dict[str, float], ...]

    @property
    def is_calibrated(self) -> bool:
        """Convenience: KS does not reject at the 1% level."""
        return self.ks_p_value > 0.01

    def worst_coverage_gap(self) -> float:
        """Largest |empirical - nominal| coverage discrepancy."""
        return max(abs(row["empirical"] - row["nominal"]) for row in self.coverage)


def calibration_report(
    forecasts: DensitySeries,
    series: TimeSeries,
    *,
    n_bins: int = 10,
    kappas: tuple[float, ...] = (1.0, 2.0, 3.0),
) -> CalibrationReport:
    """Compute every diagnostic in one pass over the forecasts."""
    from repro.evaluation.density_distance import density_distance_from_pit

    z = forecasts.pit(series)
    statistic, p_value = ks_uniformity_test(z)
    return CalibrationReport(
        density_distance=density_distance_from_pit(z),
        ks_statistic=statistic,
        ks_p_value=p_value,
        histogram=pit_histogram(z, n_bins=n_bins),
        coverage=tuple(coverage_curve(forecasts, series, kappas)),
    )
