"""Probability integral transform (paper Section II-B).

For each realised raw value ``r_i`` and its inferred density ``p_i(R_i)``,
the transform is ``z_i = integral_{-inf}^{r_i} p_i(u) du = P_i(r_i)``.  The
Diebold-Gunther-Tay result the paper invokes: the ``z_i`` are i.i.d. uniform
on (0, 1) if and only if every inferred density equals the true one.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DensitySeries
from repro.timeseries.series import TimeSeries

__all__ = ["probability_integral_transform"]


def probability_integral_transform(
    forecasts: DensitySeries, series: TimeSeries
) -> np.ndarray:
    """Return ``z_i = P_i(r_i)`` for every forecast in ``forecasts``.

    ``series`` is the raw series the forecasts were computed on; the
    realised value for forecast time ``t`` is ``series[t]``.  Output values
    lie in ``[0, 1]``.
    """
    return forecasts.pit(series)
