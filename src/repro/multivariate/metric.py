"""Vector density metrics: one univariate metric per axis.

Positioning noise on different axes is modelled as independent (the
standard assumption for the paper's indoor-tracking scenario), so the joint
density factorises and the probability of an axis-aligned region is the
product of per-axis range probabilities.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import DataError, InvalidParameterError
from repro.metrics.base import DensityForecast, DynamicDensityMetric
from repro.multivariate.regions import Region
from repro.multivariate.series import MultiSeries

__all__ = ["VectorDensityForecast", "VectorDensityMetric", "VectorDensitySeries"]


@dataclass(frozen=True)
class VectorDensityForecast:
    """Per-axis density forecasts for one inference time.

    The joint density is the product of the axis marginals.
    """

    t: int
    marginals: Mapping[str, DensityForecast]

    @property
    def axes(self) -> tuple[str, ...]:
        return tuple(self.marginals)

    def mean(self) -> dict[str, float]:
        """The expected true position (one value per axis)."""
        return {axis: forecast.mean for axis, forecast in self.marginals.items()}

    def region_probability(self, region: Region) -> float:
        """P(point in region) under independent axis marginals.

        Axes the region does not bound contribute a factor of one.
        """
        probability = 1.0
        for axis, (low, high) in region.bounds.items():
            forecast = self.marginals.get(axis)
            if forecast is None:
                raise InvalidParameterError(
                    f"region {region.label!r} bounds axis {axis!r} but the "
                    f"forecast only has axes {list(self.axes)}"
                )
            probability *= forecast.distribution.prob(low, high)
        return probability


class VectorDensitySeries:
    """An ordered collection of :class:`VectorDensityForecast`."""

    def __init__(self, forecasts: Sequence[VectorDensityForecast]) -> None:
        times = [f.t for f in forecasts]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise DataError("forecasts must be in strictly increasing time order")
        self._forecasts = list(forecasts)

    def __len__(self) -> int:
        return len(self._forecasts)

    def __iter__(self) -> Iterator[VectorDensityForecast]:
        return iter(self._forecasts)

    def __getitem__(self, index: int) -> VectorDensityForecast:
        return self._forecasts[index]

    @property
    def times(self) -> list[int]:
        return [f.t for f in self._forecasts]


class VectorDensityMetric:
    """Applies one univariate dynamic density metric per axis.

    Parameters
    ----------
    metrics:
        Either one metric instance (cloned conceptually across axes — the
        same object is reused, so stateless or per-axis-reset metrics are
        expected) or an explicit axis-to-metric mapping.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.metrics import VariableThresholdingMetric
    >>> ms = MultiSeries({"x": np.cumsum(np.ones(50)), "y": np.ones(50) * 2})
    >>> metric = VectorDensityMetric(VariableThresholdingMetric())
    >>> forecasts = metric.run(ms, H=20)
    >>> sorted(forecasts[0].axes)
    ['x', 'y']
    """

    def __init__(
        self,
        metrics: DynamicDensityMetric | Mapping[str, DynamicDensityMetric],
    ) -> None:
        self._shared = metrics if isinstance(metrics, DynamicDensityMetric) else None
        self._per_axis = (
            dict(metrics) if not isinstance(metrics, DynamicDensityMetric) else {}
        )
        if self._shared is None and not self._per_axis:
            raise InvalidParameterError("provide at least one metric")

    def metric_for(self, axis: str) -> DynamicDensityMetric:
        if self._shared is not None:
            return self._shared
        if axis not in self._per_axis:
            raise InvalidParameterError(
                f"no metric configured for axis {axis!r}; configured axes: "
                f"{list(self._per_axis)}"
            )
        return self._per_axis[axis]

    def run(
        self,
        series: MultiSeries,
        H: int,
        *,
        step: int = 1,
    ) -> VectorDensitySeries:
        """Roll every axis metric over its series and zip the results."""
        per_axis: dict[str, list[DensityForecast]] = {}
        for axis in series.axes:
            metric = self.metric_for(axis)
            forecasts = metric.run(series.axis(axis), H, step=step)
            per_axis[axis] = list(forecasts)
        lengths = {axis: len(fs) for axis, fs in per_axis.items()}
        if len(set(lengths.values())) != 1:
            raise DataError(f"axis runs produced unequal lengths: {lengths}")
        count = next(iter(lengths.values()))
        combined = [
            VectorDensityForecast(
                t=per_axis[series.axes[0]][index].t,
                marginals={axis: per_axis[axis][index] for axis in series.axes},
            )
            for index in range(count)
        ]
        return VectorDensitySeries(combined)
