"""Labelled box regions over named axes (the rooms of the paper's Fig. 1)."""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

from repro.exceptions import DataError, InvalidParameterError

__all__ = ["Region", "RegionSet"]


class Region:
    """An axis-aligned box with a label.

    >>> room = Region("room 1", {"x": (0.0, 2.0), "y": (2.0, 4.0)})
    >>> room.contains({"x": 1.0, "y": 3.0})
    True
    """

    def __init__(self, label: str, bounds: Mapping[str, tuple[float, float]]) -> None:
        if not label:
            raise InvalidParameterError("region label must be non-empty")
        if not bounds:
            raise InvalidParameterError("region needs at least one axis bound")
        self.label = str(label)
        self.bounds: dict[str, tuple[float, float]] = {}
        for axis, (low, high) in bounds.items():
            low, high = float(low), float(high)
            if high <= low:
                raise InvalidParameterError(
                    f"region {label!r} axis {axis!r}: upper bound {high} "
                    f"must exceed lower bound {low}"
                )
            self.bounds[axis] = (low, high)

    @property
    def axes(self) -> tuple[str, ...]:
        return tuple(self.bounds)

    def contains(self, point: Mapping[str, float]) -> bool:
        """True when ``point`` lies inside the box on every bounded axis."""
        for axis, (low, high) in self.bounds.items():
            if axis not in point:
                raise InvalidParameterError(
                    f"point is missing axis {axis!r} required by region "
                    f"{self.label!r}"
                )
            if not low <= point[axis] <= high:
                return False
        return True

    def overlaps(self, other: "Region") -> bool:
        """True when the two boxes share volume on their common axes.

        Regions bounding disjoint axis sets are conservatively considered
        overlapping (neither constrains the other's free axes).
        """
        for axis in set(self.bounds) & set(other.bounds):
            a_low, a_high = self.bounds[axis]
            b_low, b_high = other.bounds[axis]
            if a_high <= b_low or b_high <= a_low:
                return False
        return True

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{axis}=[{low}, {high}]" for axis, (low, high) in self.bounds.items()
        )
        return f"Region({self.label!r}, {parts})"


class RegionSet:
    """An ordered collection of uniquely labelled regions.

    ``require_disjoint=True`` (the default) rejects overlapping regions so
    per-time probabilities are mutually exclusive — the tuple-independent
    semantics the paper's ``prob_view`` assumes.
    """

    def __init__(self, regions: Sequence[Region], *, require_disjoint: bool = True) -> None:
        if not regions:
            raise InvalidParameterError("RegionSet needs at least one region")
        labels = [region.label for region in regions]
        if len(set(labels)) != len(labels):
            raise InvalidParameterError(f"duplicate region labels in {labels}")
        if require_disjoint:
            for index, first in enumerate(regions):
                for second in regions[index + 1:]:
                    if first.overlaps(second):
                        raise DataError(
                            f"regions {first.label!r} and {second.label!r} "
                            "overlap; pass require_disjoint=False to allow"
                        )
        self._regions = list(regions)

    @classmethod
    def grid2d(
        cls,
        x_edges: Sequence[float],
        y_edges: Sequence[float],
        *,
        x_axis: str = "x",
        y_axis: str = "y",
        label_format: str = "cell({i},{j})",
    ) -> "RegionSet":
        """A rectangular grid of cells — e.g. the 2x2 rooms of Fig. 1.

        >>> rooms = RegionSet.grid2d([0, 2, 4], [0, 2, 4])
        >>> len(rooms)
        4
        """
        if len(x_edges) < 2 or len(y_edges) < 2:
            raise InvalidParameterError("grid needs at least two edges per axis")
        regions = []
        for i in range(len(x_edges) - 1):
            for j in range(len(y_edges) - 1):
                regions.append(
                    Region(
                        label_format.format(i=i, j=j),
                        {
                            x_axis: (float(x_edges[i]), float(x_edges[i + 1])),
                            y_axis: (float(y_edges[j]), float(y_edges[j + 1])),
                        },
                    )
                )
        return cls(regions)

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __getitem__(self, index: int) -> Region:
        return self._regions[index]

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(region.label for region in self._regions)

    def by_label(self, label: str) -> Region:
        for region in self._regions:
            if region.label == label:
                return region
        raise InvalidParameterError(
            f"no region labelled {label!r}; labels are {list(self.labels)}"
        )
