"""Multivariate extension: densities and views for vector-valued streams.

The paper's motivating example (Fig. 1) is two-dimensional — Alice's
``(x, y)`` position against a floor plan of rooms — but its machinery is
presented univariately.  This subpackage provides the natural product
construction: one dynamic density metric per axis (axis noise is treated
as independent, the standard assumption for positioning error), labelled
box regions, and a view builder producing per-region probability tuples —
the exact ``prob_view`` table of Fig. 1.
"""

from repro.multivariate.builder import RegionView, RegionViewBuilder, RegionTuple
from repro.multivariate.metric import (
    VectorDensityForecast,
    VectorDensityMetric,
    VectorDensitySeries,
)
from repro.multivariate.regions import Region, RegionSet
from repro.multivariate.series import MultiSeries

__all__ = [
    "MultiSeries",
    "Region",
    "RegionSet",
    "RegionTuple",
    "RegionView",
    "RegionViewBuilder",
    "VectorDensityForecast",
    "VectorDensityMetric",
    "VectorDensitySeries",
]
