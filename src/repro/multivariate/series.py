"""Vector-valued time series: named axes over one shared time base."""

from __future__ import annotations

from collections.abc import Iterator, Mapping

import numpy as np

from repro.exceptions import DataError, InvalidParameterError
from repro.timeseries.series import TimeSeries

__all__ = ["MultiSeries"]


class MultiSeries:
    """Parallel :class:`TimeSeries` sharing one time axis.

    Axes are named (``"x"``, ``"y"``, ...) and index-aligned: position
    ``i`` of every axis belongs to the same observation, as in the paper's
    ``raw_values(time, x, y)`` relation.

    >>> import numpy as np
    >>> ms = MultiSeries({"x": np.array([1.0, 2.0]), "y": np.array([5.0, 6.0])})
    >>> ms.axes
    ('x', 'y')
    >>> ms.point(1)
    {'x': 2.0, 'y': 6.0}
    """

    def __init__(
        self,
        axes: Mapping[str, np.ndarray],
        timestamps: np.ndarray | None = None,
        name: str = "multiseries",
    ) -> None:
        if not axes:
            raise InvalidParameterError("MultiSeries needs at least one axis")
        self.name = str(name)
        self._series: dict[str, TimeSeries] = {}
        shared_timestamps: np.ndarray | None = None
        length: int | None = None
        for axis, values in axes.items():
            series = TimeSeries(values, timestamps, name=f"{name}.{axis}")
            if length is None:
                length = len(series)
                shared_timestamps = series.timestamps
            elif len(series) != length:
                raise DataError(
                    f"axis {axis!r} has {len(series)} values but "
                    f"previous axes have {length}"
                )
            self._series[axis] = series
        assert shared_timestamps is not None
        self._timestamps = shared_timestamps

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    @property
    def axes(self) -> tuple[str, ...]:
        return tuple(self._series)

    @property
    def timestamps(self) -> np.ndarray:
        return self._timestamps

    def __len__(self) -> int:
        return len(self._timestamps)

    def axis(self, name: str) -> TimeSeries:
        """The univariate series of one axis."""
        if name not in self._series:
            raise InvalidParameterError(
                f"no axis {name!r}; axes are {list(self.axes)}"
            )
        return self._series[name]

    def point(self, index: int) -> dict[str, float]:
        """All axis values of observation ``index``."""
        return {axis: series[index] for axis, series in self._series.items()}

    def iter_points(self) -> Iterator[dict[str, float]]:
        """Yield observations as axis dicts, in time order."""
        for index in range(len(self)):
            yield self.point(index)

    def slice(self, start: int, stop: int) -> "MultiSeries":
        """Positional sub-series across every axis."""
        return MultiSeries(
            {axis: series.slice(start, stop).values.copy()
             for axis, series in self._series.items()},
            self.axis(self.axes[0]).slice(start, stop).timestamps.copy(),
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"MultiSeries(name={self.name!r}, axes={list(self.axes)}, "
            f"n={len(self)})"
        )
