"""Region view builder: the paper's Fig. 1 ``prob_view`` as a first-class type.

Turns a :class:`~repro.multivariate.metric.VectorDensitySeries` plus a
:class:`~repro.multivariate.regions.RegionSet` into a table of
``(time, region, probability)`` tuples — "the probability of finding Alice
in a particular room at a given time".
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import DataError, InvalidParameterError, QueryError
from repro.multivariate.metric import VectorDensitySeries
from repro.multivariate.regions import RegionSet

__all__ = ["RegionTuple", "RegionView", "RegionViewBuilder"]

_MASS_TOLERANCE = 1e-6


@dataclass(frozen=True)
class RegionTuple:
    """One row of a region view: P(entity in ``region``) at time ``t``."""

    t: int
    region: str
    probability: float

    def __post_init__(self) -> None:
        if not -_MASS_TOLERANCE <= self.probability <= 1.0 + _MASS_TOLERANCE:
            raise InvalidParameterError(
                f"probability must be in [0, 1], got {self.probability}"
            )


class RegionView:
    """A tuple-independent view over labelled regions."""

    def __init__(self, name: str, tuples: Sequence[RegionTuple],
                 labels: Sequence[str]) -> None:
        self.name = str(name)
        self.labels = tuple(labels)
        self._tuples = list(tuples)
        self._by_time: dict[int, dict[str, float]] = {}
        for tup in self._tuples:
            bucket = self._by_time.setdefault(tup.t, {})
            if tup.region in bucket:
                raise DataError(
                    f"duplicate region {tup.region!r} at time {tup.t}"
                )
            bucket[tup.region] = tup.probability
        for t, bucket in self._by_time.items():
            mass = sum(bucket.values())
            if mass > 1.0 + _MASS_TOLERANCE * max(len(bucket), 1):
                raise DataError(
                    f"region probabilities at time {t} sum to {mass:.6f} > 1"
                )

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[RegionTuple]:
        return iter(self._tuples)

    @property
    def times(self) -> list[int]:
        return sorted(self._by_time)

    def probabilities_at(self, t: int) -> dict[str, float]:
        """Region-label to probability map for time ``t``."""
        if t not in self._by_time:
            raise QueryError(f"view {self.name!r} has no tuples at time {t}")
        return dict(self._by_time[t])

    def most_probable_at(self, t: int) -> RegionTuple:
        """The modal region at time ``t`` — "which room is Alice in?"."""
        bucket = self.probabilities_at(t)
        label = max(bucket, key=bucket.get)
        return RegionTuple(t=t, region=label, probability=bucket[label])

    def trajectory(self) -> list[RegionTuple]:
        """The modal region at every time, in order."""
        return [self.most_probable_at(t) for t in self.times]

    def __repr__(self) -> str:
        return (
            f"RegionView(name={self.name!r}, tuples={len(self)}, "
            f"times={len(self._by_time)}, regions={len(self.labels)})"
        )


class RegionViewBuilder:
    """Evaluates the probability value generation query over regions."""

    def __init__(self, regions: RegionSet) -> None:
        self.regions = regions

    def build_view(
        self, forecasts: VectorDensitySeries, name: str = "region_view"
    ) -> RegionView:
        """One tuple per (time, region) — the paper's Fig. 1 table."""
        tuples = [
            RegionTuple(
                t=forecast.t,
                region=region.label,
                probability=min(max(forecast.region_probability(region), 0.0), 1.0),
            )
            for forecast in forecasts
            for region in self.regions
        ]
        return RegionView(name, tuples, self.regions.labels)
