"""SQL-like language for probabilistic view generation (paper Fig. 7).

The paper's offline mode lets users create probabilistic views with a
declarative query::

    CREATE VIEW prob_view AS DENSITY r OVER t
        OMEGA delta=2, n=2
        FROM raw_values
        WHERE t >= 1 AND t <= 3

This module implements a tokenizer and recursive-descent parser for that
syntax plus the natural extensions the framework needs (all optional):

* ``METRIC arma_garch (p=1, kappa=3.0)`` — which dynamic density metric to
  use and its parameters (default: ``arma_garch``);
* ``WINDOW 60``                        — sliding-window size ``H``;
* ``CACHE (distance=0.01)`` / ``CACHE (memory=32)`` — sigma-cache
  constraints (omitting the clause disables the cache);
* ``PERSIST INTO '/path/to/catalog'`` — additionally store the created
  view in the :class:`repro.store.catalog.Catalog` at that path, where it
  survives the process.

A second statement queries every stored view of a catalog at once::

    SELECT exceedance(21.0), expected_value
        FROM CATALOG '/data/catalogs/main'
        SERIES 'sensor-*'
        WHERE t BETWEEN 100 AND 500
        TOP 5

The select list holds one or more comma-separated items, each either an
aggregate — ``threshold(tau)``, ``expected_value``,
``exceedance(threshold)``, ``time_above(threshold, window)`` — or the
possible-worlds row expression ``PROBABILITY OF <column> BETWEEN a AND
b`` (the exact per-time probability that the value lies in the half-open
range ``[a, b)``, answered via
:func:`repro.db.worlds.conjunctive_range_query`).  ``SERIES``
glob-selects the series ids (default: all); ``TOP k`` keeps the k
highest-scoring series.  An optional ``APPROX`` modifier directly after
``SELECT`` answers a single aggregate from stored segment synopses alone
— per series an ``(estimate, error_bound)`` pair instead of exact rows,
in time independent of the stored tuple count.  An optional ``AS OF
<knowledge_time>`` clause (after WHERE, before TOP) replays the catalog
as known at that knowledge time: revisions recorded later are invisible
(see :meth:`repro.store.catalog.SeriesSnapshot.as_of`).  Parsing yields
an inert :class:`SelectQuery`; planning and execution belong to
:mod:`repro.service`.

A third statement samples complete possible worlds from every matched
series (the MCDB-style ``SIMULATE`` of BQL)::

    SIMULATE 32 SEED 7 FROM CATALOG '/data/catalogs/main'
        SERIES 'sensor-*'
        WHERE t BETWEEN 100 AND 500

``SEED`` pins the deterministic per-series sampling streams (omitted: the
framework default seed); the result is bit-identical across executor
backends.  Parsing yields an inert :class:`SimulateQuery`.

Keywords are case-insensitive; identifiers and numbers follow Python rules.
Parsing produces an inert :class:`ViewQuery` / :class:`SelectQuery` /
:class:`SimulateQuery`; execution belongs to
:class:`repro.db.engine.Database`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ParseError
from repro.view.omega import OmegaGrid

__all__ = [
    "SelectItem",
    "SelectQuery",
    "SimulateQuery",
    "ViewQuery",
    "parse_select_query",
    "parse_statement",
    "parse_view_query",
    "render_statement",
    "with_as_of",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?)
  | (?P<string>'[^']*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<op><=|>=|=|,|\(|\)|<|>)
    """,
    re.VERBOSE,
)

# Reserved words rejected where an identifier is expected.  The SELECT
# statement's own keywords (select/catalog/series/top) are deliberately
# NOT in this set: they are matched positionally by the select grammar,
# so CREATE VIEW statements can keep using words like ``series`` as
# table or column names.
_KEYWORDS = {
    "create", "view", "as", "density", "over", "omega", "metric",
    "window", "cache", "from", "where", "and", "between", "persist",
    "into",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "string" | "ident" | "op" | "end"
    text: str
    position: int

    @property
    def lowered(self) -> str:
        return self.text.lower()


@dataclass
class ViewQuery:
    """Parsed form of a ``CREATE VIEW ... AS DENSITY ...`` statement."""

    view_name: str
    value_column: str
    time_column: str
    delta: float
    n: int
    table_name: str
    metric_name: str = "arma_garch"
    metric_params: dict[str, Any] = field(default_factory=dict)
    window: int | None = None
    cache_distance: float | None = None
    cache_memory: int | None = None
    time_lo: float | None = None
    time_hi: float | None = None
    persist_path: str | None = None

    @property
    def uses_cache(self) -> bool:
        return self.cache_distance is not None or self.cache_memory is not None

    def grid(self) -> OmegaGrid:
        """The ``(Delta, n)`` view parameters of the OMEGA clause.

        The engine hands this to :meth:`ViewBuilder.build_matrix` and
        ``ProbabilisticView.from_matrix`` when executing the statement
        through the columnar batch path.
        """
        return OmegaGrid(delta=self.delta, n=self.n)


@dataclass(frozen=True)
class SelectItem:
    """One entry of a SELECT list, exactly as written.

    ``name`` is the kernel the planner resolves (an aggregate name, or
    ``"probability_of"`` for the ``PROBABILITY OF`` row expression) and
    ``arguments`` its positional numeric arguments — validating them
    against the known kernels is the planner's job
    (:mod:`repro.service.planner`), keeping this form inert.  ``column``
    carries the value-column identifier of a ``PROBABILITY OF`` item
    (``None`` for plain aggregates).
    """

    name: str
    arguments: tuple[float, ...] = ()
    column: str | None = None


@dataclass(frozen=True)
class SelectQuery:
    """Parsed form of a ``SELECT ... FROM CATALOG ...`` statement.

    ``items`` holds the select list in written order; the legacy
    single-aggregate accessors ``aggregate``/``arguments`` read the first
    item, so pre-multi-aggregate callers keep working unchanged.
    """

    items: tuple[SelectItem, ...]
    catalog_path: str
    series_pattern: str = "*"
    time_lo: float | None = None
    time_hi: float | None = None
    top_k: int | None = None
    #: ``SELECT APPROX ...``: answer from segment synopses alone, as an
    #: ``(estimate, error_bound)`` pair per series, in sublinear time.
    approx: bool = False
    #: ``AS OF <knowledge_time>``: replay the catalog as known at that
    #: knowledge time (None: newest — every recorded revision applies).
    as_of: int | None = None

    @property
    def aggregate(self) -> str:
        """The first select item's kernel name (legacy accessor)."""
        return self.items[0].name

    @property
    def arguments(self) -> tuple[float, ...]:
        """The first select item's arguments (legacy accessor)."""
        return self.items[0].arguments


@dataclass(frozen=True)
class SimulateQuery:
    """Parsed form of a ``SIMULATE n [SEED s] FROM CATALOG ...`` statement.

    Draws ``n_worlds`` complete possible worlds per matched series through
    :mod:`repro.db.worlds`.  ``seed`` is the statement-level seed the
    planner mixes with each series id to derive deterministic,
    backend-independent per-series sampling streams (``None``: the
    framework default seed).
    """

    n_worlds: int
    catalog_path: str
    seed: int | None = None
    series_pattern: str = "*"
    time_lo: float | None = None
    time_hi: float | None = None
    #: ``AS OF <knowledge_time>``: sample from the catalog as known at
    #: that knowledge time (None: newest).
    as_of: int | None = None


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at offset {position}",
                position,
            )
        if match.lastgroup != "ws":
            kind = match.lastgroup or "op"
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("end", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def expect_keyword(self, keyword: str) -> _Token:
        token = self.advance()
        if token.kind != "ident" or token.lowered != keyword:
            raise ParseError(
                f"expected keyword {keyword.upper()!r}, got {token.text!r}",
                token.position,
            )
        return token

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token.kind == "ident" and token.lowered == keyword:
            self.advance()
            return True
        return False

    def expect_ident(self, what: str) -> str:
        token = self.advance()
        if token.kind != "ident" or token.lowered in _KEYWORDS:
            raise ParseError(
                f"expected {what}, got {token.text!r}", token.position
            )
        return token.text

    def expect_op(self, op: str) -> None:
        token = self.advance()
        if token.kind != "op" or token.text != op:
            raise ParseError(f"expected {op!r}, got {token.text!r}", token.position)

    def expect_number(self, what: str) -> float:
        token = self.advance()
        if token.kind != "number":
            raise ParseError(
                f"expected a number for {what}, got {token.text!r}", token.position
            )
        return float(token.text)

    def expect_string(self, what: str) -> str:
        token = self.advance()
        if token.kind != "string":
            raise ParseError(
                f"expected a quoted string for {what}, got {token.text!r}",
                token.position,
            )
        return token.text[1:-1]

    def expect_int(self, what: str) -> int:
        value = self.expect_number(what)
        if value != int(value):
            raise ParseError(f"{what} must be an integer, got {value}")
        return int(value)

    # -- grammar --------------------------------------------------------
    def parse_statement(self) -> ViewQuery | SelectQuery | SimulateQuery:
        """Dispatch on the leading keyword (CREATE / SELECT / SIMULATE)."""
        token = self.peek()
        if token.kind == "ident" and token.lowered == "select":
            return self.parse_select()
        if token.kind == "ident" and token.lowered == "simulate":
            return self.parse_simulate()
        return self.parse()

    def parse_select(self) -> SelectQuery:
        self.expect_keyword("select")
        # Optional APPROX modifier: answer from synopses with error
        # bounds.  Matched positionally (like select/catalog/series/top)
        # so CREATE VIEW statements keep "approx" usable as a name.
        approx = self.accept_keyword("approx")
        items = [self._parse_select_item()]
        while self.peek().kind == "op" and self.peek().text == ",":
            self.advance()
            items.append(self._parse_select_item())
        if approx and len(items) > 1:
            raise ParseError(
                "APPROX supports a single aggregate, got a select list "
                f"of {len(items)} items"
            )
        self.expect_keyword("from")
        self.expect_keyword("catalog")
        catalog_path = self.expect_string("catalog path")
        series_pattern = "*"
        if self.accept_keyword("series"):
            series_pattern = self.expect_string("series pattern")
        time_lo: float | None = None
        time_hi: float | None = None
        if self.accept_keyword("where"):
            time_lo, time_hi = self._parse_where("t")
        as_of = self._parse_as_of()
        top_k: int | None = None
        if self.accept_keyword("top"):
            top_k = self.expect_int("TOP count")
            if top_k < 1:
                raise ParseError(f"TOP count must be >= 1, got {top_k}")
        tail = self.peek()
        if tail.kind != "end":
            raise ParseError(
                f"unexpected trailing input {tail.text!r}", tail.position
            )
        return SelectQuery(
            items=tuple(items),
            catalog_path=catalog_path,
            series_pattern=series_pattern,
            time_lo=time_lo,
            time_hi=time_hi,
            top_k=top_k,
            approx=approx,
            as_of=as_of,
        )

    def parse_simulate(self) -> SimulateQuery:
        """``SIMULATE n [SEED s] FROM CATALOG '<path>' [SERIES ...] [WHERE ...]``."""
        self.expect_keyword("simulate")
        n_worlds = self.expect_int("SIMULATE world count")
        if n_worlds < 1:
            raise ParseError(
                f"SIMULATE world count must be >= 1, got {n_worlds}"
            )
        seed: int | None = None
        if self.accept_keyword("seed"):
            seed = self.expect_int("SEED value")
            if seed < 0:
                raise ParseError(f"SEED must be >= 0, got {seed}")
        self.expect_keyword("from")
        self.expect_keyword("catalog")
        catalog_path = self.expect_string("catalog path")
        series_pattern = "*"
        if self.accept_keyword("series"):
            series_pattern = self.expect_string("series pattern")
        time_lo: float | None = None
        time_hi: float | None = None
        if self.accept_keyword("where"):
            time_lo, time_hi = self._parse_where("t")
        as_of = self._parse_as_of()
        tail = self.peek()
        if tail.kind != "end":
            raise ParseError(
                f"unexpected trailing input {tail.text!r}", tail.position
            )
        return SimulateQuery(
            n_worlds=n_worlds,
            seed=seed,
            catalog_path=catalog_path,
            series_pattern=series_pattern,
            time_lo=time_lo,
            time_hi=time_hi,
            as_of=as_of,
        )

    def _parse_as_of(self) -> int | None:
        """Optional ``AS OF <knowledge_time>`` clause (None when absent)."""
        if not self.accept_keyword("as"):
            return None
        self.expect_keyword("of")
        as_of = self.expect_int("AS OF knowledge time")
        if as_of < 0:
            raise ParseError(
                f"AS OF knowledge time must be >= 0, got {as_of}"
            )
        return as_of

    def _parse_select_item(self) -> SelectItem:
        """One select-list entry: an aggregate call or ``PROBABILITY OF``."""
        token = self.peek()
        if token.kind == "ident" and token.lowered == "probability":
            self.advance()
            self.expect_keyword("of")
            column = self.expect_ident("PROBABILITY OF value column")
            self.expect_keyword("between")
            low = self.expect_number("PROBABILITY OF lower value bound")
            self.expect_keyword("and")
            high = self.expect_number("PROBABILITY OF upper value bound")
            if high < low:
                raise ParseError(
                    f"PROBABILITY OF range is inverted: [{low:g}, {high:g}]",
                    token.position,
                )
            return SelectItem(
                name="probability_of", arguments=(low, high), column=column
            )
        name, arguments = self._parse_aggregate()
        return SelectItem(name=name, arguments=arguments)

    def _parse_aggregate(self) -> tuple[str, tuple[float, ...]]:
        """``<name> [( number {, number} )]`` — e.g. ``time_above(21, 5)``."""
        token = self.advance()
        if token.kind != "ident" or token.lowered in _KEYWORDS:
            raise ParseError(
                f"expected an aggregate name, got {token.text!r}",
                token.position,
            )
        name = token.lowered
        arguments: list[float] = []
        if self.peek().kind == "op" and self.peek().text == "(":
            self.advance()
            while True:
                arguments.append(self.expect_number("aggregate argument"))
                token = self.advance()
                if token.kind == "op" and token.text == ")":
                    break
                if not (token.kind == "op" and token.text == ","):
                    raise ParseError(
                        f"expected ',' or ')' in aggregate arguments, got "
                        f"{token.text!r}",
                        token.position,
                    )
        return name, tuple(arguments)

    def parse(self) -> ViewQuery:
        self.expect_keyword("create")
        self.expect_keyword("view")
        view_name = self.expect_ident("view name")
        self.expect_keyword("as")
        self.expect_keyword("density")
        value_column = self.expect_ident("value column")
        self.expect_keyword("over")
        time_column = self.expect_ident("time column")
        self.expect_keyword("omega")
        delta, n = self._parse_omega()
        metric_name, metric_params = "arma_garch", {}
        window: int | None = None
        cache_distance: float | None = None
        cache_memory: int | None = None
        while True:
            if self.accept_keyword("metric"):
                metric_name, metric_params = self._parse_metric()
            elif self.accept_keyword("window"):
                window = self.expect_int("window size")
            elif self.accept_keyword("cache"):
                cache_distance, cache_memory = self._parse_cache()
            else:
                break
        self.expect_keyword("from")
        table_name = self.expect_ident("table name")
        time_lo: float | None = None
        time_hi: float | None = None
        if self.accept_keyword("where"):
            time_lo, time_hi = self._parse_where(time_column)
        persist_path: str | None = None
        if self.accept_keyword("persist"):
            self.expect_keyword("into")
            persist_path = self.expect_string("catalog path")
        tail = self.peek()
        if tail.kind != "end":
            raise ParseError(
                f"unexpected trailing input {tail.text!r}", tail.position
            )
        return ViewQuery(
            view_name=view_name,
            value_column=value_column,
            time_column=time_column,
            delta=delta,
            n=n,
            table_name=table_name,
            metric_name=metric_name,
            metric_params=metric_params,
            window=window,
            cache_distance=cache_distance,
            cache_memory=cache_memory,
            time_lo=time_lo,
            time_hi=time_hi,
            persist_path=persist_path,
        )

    def _parse_omega(self) -> tuple[float, int]:
        """``delta=<number>, n=<int>`` in either order."""
        delta: float | None = None
        n: int | None = None
        for _ in range(2):
            name = self.expect_ident("omega parameter").lower()
            self.expect_op("=")
            if name == "delta":
                delta = self.expect_number("delta")
            elif name == "n":
                n = self.expect_int("n")
            else:
                raise ParseError(f"unknown OMEGA parameter {name!r}")
            if not (self.peek().kind == "op" and self.peek().text == ","):
                break
            self.advance()
        if delta is None or n is None:
            raise ParseError("OMEGA clause requires both delta and n")
        return delta, n

    def _parse_metric(self) -> tuple[str, dict[str, Any]]:
        """``<name> [( key = value {, key = value} )]``."""
        token = self.advance()
        if token.kind != "ident":
            raise ParseError(
                f"expected metric name, got {token.text!r}", token.position
            )
        name = token.text
        params: dict[str, Any] = {}
        if self.peek().kind == "op" and self.peek().text == "(":
            self.advance()
            while True:
                key = self.expect_ident("metric parameter name")
                self.expect_op("=")
                params[key] = self._parse_value()
                token = self.advance()
                if token.kind == "op" and token.text == ")":
                    break
                if not (token.kind == "op" and token.text == ","):
                    raise ParseError(
                        f"expected ',' or ')' in metric parameters, got "
                        f"{token.text!r}",
                        token.position,
                    )
        return name, params

    def _parse_value(self) -> Any:
        token = self.advance()
        if token.kind == "number":
            value = float(token.text)
            return int(value) if value == int(value) else value
        if token.kind == "ident":
            lowered = token.lowered
            if lowered in ("true", "false"):
                return lowered == "true"
            return token.text
        raise ParseError(f"expected a value, got {token.text!r}", token.position)

    def _parse_cache(self) -> tuple[float | None, int | None]:
        """``( distance = <number> | memory = <int> {, ...} )``."""
        self.expect_op("(")
        distance: float | None = None
        memory: int | None = None
        while True:
            key = self.expect_ident("cache parameter").lower()
            self.expect_op("=")
            if key == "distance":
                distance = self.expect_number("cache distance")
            elif key == "memory":
                memory = self.expect_int("cache memory")
            else:
                raise ParseError(
                    f"unknown CACHE parameter {key!r}; use distance or memory"
                )
            token = self.advance()
            if token.kind == "op" and token.text == ")":
                break
            if not (token.kind == "op" and token.text == ","):
                raise ParseError(
                    f"expected ',' or ')' in CACHE clause, got {token.text!r}",
                    token.position,
                )
        return distance, memory

    def _parse_where(self, time_column: str) -> tuple[float | None, float | None]:
        """``t >= a AND t <= b`` (either order) or ``t BETWEEN a AND b``."""
        lo: float | None = None
        hi: float | None = None
        column = self.expect_ident("time column in WHERE")
        if column != time_column:
            raise ParseError(
                f"WHERE must constrain the time column {time_column!r}, "
                f"got {column!r}"
            )
        if self.accept_keyword("between"):
            lo = self.expect_number("lower time bound")
            self.expect_keyword("and")
            hi = self.expect_number("upper time bound")
            return self._check_bounds(lo, hi)
        lo, hi = self._apply_comparison(lo, hi)
        if self.accept_keyword("and"):
            column = self.expect_ident("time column in WHERE")
            if column != time_column:
                raise ParseError(
                    f"WHERE must constrain the time column {time_column!r}, "
                    f"got {column!r}"
                )
            lo, hi = self._apply_comparison(lo, hi)
        return self._check_bounds(lo, hi)

    @staticmethod
    def _check_bounds(
        lo: float | None, hi: float | None
    ) -> tuple[float | None, float | None]:
        """Reject inverted WHERE bounds that would silently match nothing."""
        if lo is not None and hi is not None and lo > hi:
            raise ParseError(
                f"empty time range: WHERE bounds [{lo:g}, {hi:g}] can "
                f"never match"
            )
        return lo, hi

    def _apply_comparison(
        self, lo: float | None, hi: float | None
    ) -> tuple[float | None, float | None]:
        token = self.advance()
        if token.kind != "op" or token.text not in (">=", "<=", ">", "<"):
            raise ParseError(
                f"expected a comparison operator, got {token.text!r}",
                token.position,
            )
        if token.text in (">", "<"):
            # Bounds are applied inclusively everywhere downstream;
            # accepting the strict form would silently include the
            # boundary row.  Fail loudly instead.
            raise ParseError(
                f"strict comparison {token.text!r} is not supported; time "
                f"bounds are inclusive — use '{token.text}=' or BETWEEN",
                token.position,
            )
        value = self.expect_number("time bound")
        if token.text == ">=":
            if lo is not None:
                raise ParseError("duplicate lower time bound in WHERE")
            return value, hi
        if hi is not None:
            raise ParseError("duplicate upper time bound in WHERE")
        return lo, value


def parse_view_query(text: str) -> ViewQuery:
    """Parse a ``CREATE VIEW ... AS DENSITY ...`` statement.

    >>> query = parse_view_query(
    ...     "CREATE VIEW prob_view AS DENSITY r OVER t "
    ...     "OMEGA delta=2, n=2 FROM raw_values WHERE t >= 1 AND t <= 3")
    >>> query.view_name, query.delta, query.n, query.time_lo, query.time_hi
    ('prob_view', 2.0, 2, 1.0, 3.0)
    """
    if not text or not text.strip():
        raise ParseError("empty query")
    return _Parser(text).parse()


def parse_select_query(text: str) -> SelectQuery:
    """Parse a ``SELECT ... FROM CATALOG ...`` statement.

    >>> query = parse_select_query(
    ...     "SELECT time_above(21.0, 5) FROM CATALOG '/tmp/cat' "
    ...     "SERIES 'sensor-*' WHERE t BETWEEN 10 AND 90 TOP 3")
    >>> query.aggregate, query.arguments, query.series_pattern, query.top_k
    ('time_above', (21.0, 5.0), 'sensor-*', 3)
    """
    if not text or not text.strip():
        raise ParseError("empty query")
    return _Parser(text).parse_select()


def parse_statement(text: str) -> ViewQuery | SelectQuery | SimulateQuery:
    """Parse any statement kind, dispatching on the leading keyword."""
    if not text or not text.strip():
        raise ParseError("empty query")
    return _Parser(text).parse_statement()


def _render_item(item: SelectItem) -> str:
    """One select-list item rendered exactly as the grammar accepts it."""
    if item.name == "probability_of":
        low, high = item.arguments
        column = item.column or "v"
        return f"PROBABILITY OF {column} BETWEEN {low:g} AND {high:g}"
    if item.arguments:
        arguments = ", ".join(f"{a:g}" for a in item.arguments)
        return f"{item.name}({arguments})"
    # Zero-argument aggregates are written bare — the grammar rejects
    # an empty argument list.
    return item.name


def render_statement(query: SelectQuery | SimulateQuery) -> str:
    """A parsed SELECT / SIMULATE back as statement text.

    Parsed queries are inert (they do not keep their source text), so
    traces, the slow log, and clients that rewrite a statement (for
    example to inject ``AS OF``) need a rendering an operator can re-run.
    The rendering round-trips: parsing it yields back an equal query
    object.
    """
    if isinstance(query, SimulateQuery):
        parts = [f"SIMULATE {query.n_worlds}"]
        if query.seed is not None:
            parts.append(f"SEED {query.seed}")
    else:
        parts = ["SELECT"]
        if query.approx:
            parts.append("APPROX")
        parts.append(", ".join(_render_item(item) for item in query.items))
    parts.append(f"FROM CATALOG '{query.catalog_path}'")
    if query.series_pattern != "*":
        parts.append(f"SERIES '{query.series_pattern}'")
    if query.time_lo is not None and query.time_hi is not None:
        parts.append(
            f"WHERE t BETWEEN {query.time_lo:g} AND {query.time_hi:g}"
        )
    elif query.time_lo is not None:
        parts.append(f"WHERE t >= {query.time_lo:g}")
    elif query.time_hi is not None:
        parts.append(f"WHERE t <= {query.time_hi:g}")
    if getattr(query, "as_of", None) is not None:
        parts.append(f"AS OF {query.as_of}")
    if getattr(query, "top_k", None) is not None:
        parts.append(f"TOP {query.top_k}")
    return " ".join(parts)


def with_as_of(statement: str, as_of: int) -> str:
    """Rewrite ``statement`` to carry ``AS OF as_of``, or raise.

    The one statement-rewrite clients and the CLI share: parse with the
    same grammar the engine uses (so an accepted rewrite is an
    executable statement), set the knowledge time, render back.  A
    statement that already pins a *different* ``AS OF`` is rejected
    rather than silently overridden; only SELECT / SIMULATE carry the
    clause.
    """
    from dataclasses import replace

    from repro.exceptions import QueryError

    parsed = parse_statement(statement)
    if not hasattr(parsed, "as_of"):
        raise QueryError(
            "as_of applies to SELECT and SIMULATE statements only, "
            f"not {type(parsed).__name__}"
        )
    if parsed.as_of is not None and parsed.as_of != int(as_of):
        raise QueryError(
            f"statement already pins AS OF {parsed.as_of}; refusing to "
            f"override it with as_of={as_of}"
        )
    return render_statement(replace(parsed, as_of=int(as_of)))
