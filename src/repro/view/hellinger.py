"""Hellinger distance between Gaussians and the sigma-cache theorems.

Section VI-B of the paper: for two zero-mean (mean-shifted) Gaussian CDFs
``P_t`` and ``P_t'`` with standard deviations ``sigma_t`` and ``sigma_t'``,

    H^2[P_t, P_t'] = 1 - sqrt( 2 * sigma_t * sigma_t' / (sigma_t^2 + sigma_t'^2) )    (eq. 10)

* Theorem 1 (distance constraint): approximating ``P_t'`` by ``P_t`` keeps
  the Hellinger distance within a user bound ``H'`` provided the ratio
  ``d_s = sigma_t' / sigma_t`` satisfies eq. (11).
* Theorem 2 (memory constraint): storing at most ``Q'`` distributions needs
  ``d_s >= D_s^(1/Q')`` with ``D_s = max(sigma)/min(sigma)`` (eq. 14).
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError
from repro.util.validation import require_positive

__all__ = [
    "hellinger_distance",
    "ratio_threshold_for_distance",
    "ratio_threshold_for_memory",
]


def hellinger_distance(sigma_t: float, sigma_t_prime: float) -> float:
    """Hellinger distance between two zero-mean Gaussians (eq. 10).

    Symmetric in its arguments, zero iff the sigmas are equal, and bounded
    in ``[0, 1)`` for positive sigmas.

    >>> hellinger_distance(1.0, 1.0)
    0.0
    >>> 0.0 < hellinger_distance(1.0, 2.0) < 1.0
    True
    """
    sigma_t = require_positive("sigma_t", sigma_t)
    sigma_t_prime = require_positive("sigma_t_prime", sigma_t_prime)
    ratio = 2.0 * sigma_t * sigma_t_prime / (sigma_t**2 + sigma_t_prime**2)
    squared = 1.0 - math.sqrt(ratio)
    return math.sqrt(max(squared, 0.0))


def ratio_threshold_for_distance(distance_constraint: float) -> float:
    """Largest ratio ``d_s`` guaranteeing ``H <= H'`` — Theorem 1, eq. (11).

    Solving ``(1 - H'^2) * sqrt(1 + d_s^2) = sqrt(2) * d_s`` for the upper
    root gives

        d_s = ( 2 + sqrt(4 - 4 * (1 - H'^2)^4) ) / ( 2 * (1 - H'^2)^2 ).

    ``d_s`` is monotonically increasing in ``H'`` and tends to 1 as
    ``H' -> 0`` (no slack: every sigma needs its own cached distribution).

    >>> ratio_threshold_for_distance(0.0)
    1.0
    >>> ratio_threshold_for_distance(0.01) > 1.0
    True
    """
    h = float(distance_constraint)
    if not 0.0 <= h < 1.0:
        raise InvalidParameterError(
            f"distance_constraint must be in [0, 1), got {distance_constraint!r}"
        )
    if h == 0.0:
        return 1.0
    one_minus = (1.0 - h * h) ** 2
    discriminant = 4.0 - 4.0 * one_minus * one_minus
    return (2.0 + math.sqrt(max(discriminant, 0.0))) / (2.0 * one_minus)


def ratio_threshold_for_memory(max_ratio: float, q_max: int) -> float:
    """Smallest ratio ``d_s`` storing at most ``q_max`` distributions — Theorem 2.

    ``max_ratio`` is ``D_s = max(sigma)/min(sigma)`` over the queried
    tuples; the bound is ``d_s >= D_s^(1/Q')`` (eq. 14).

    >>> ratio_threshold_for_memory(16.0, 4)
    2.0
    """
    max_ratio = require_positive("max_ratio", max_ratio)
    if max_ratio < 1.0:
        raise InvalidParameterError(
            f"max_ratio must be >= 1 (it is max/min), got {max_ratio}"
        )
    if q_max < 1:
        raise InvalidParameterError(f"q_max must be >= 1, got {q_max}")
    return max_ratio ** (1.0 / q_max)
