"""The Omega-view builder (paper Section VI, eq. 9).

Turns a :class:`~repro.metrics.base.DensitySeries` into the rows of a
tuple-independent probabilistic view: for every inference time ``t`` and
every range ``omega_lambda = [r_hat_t + lambda*Delta, r_hat_t + (lambda+1)*Delta]``,

    rho_lambda = P_t(r_hat_t + (lambda+1)*Delta) - P_t(r_hat_t + lambda*Delta).

Two evaluation paths exist:

* **naive** — evaluate the forecast CDF at the ``n + 1`` range edges for
  every tuple;
* **cached** — reuse pre-computed rows from a :class:`SigmaCache`, valid
  for Gaussian forecasts because the row depends only on ``sigma_hat_t``
  after the mean shift.

The builder picks the cached path automatically when a cache is attached
and the forecast is Gaussian; anything else falls back to the naive path,
so mixed (e.g. uniform-metric) density series still work.

Batch path
----------
:meth:`ViewBuilder.build_matrix` evaluates a whole density series at once
into a columnar :class:`ProbabilityMatrix`: all Gaussian rows share one
broadcasted CDF call over the ``(T, n + 1)`` edge matrix (or one
``searchsorted`` floor lookup over the sigma-cache keys), and only
non-Gaussian forecasts fall back to per-row evaluation.  The results are
identical to :meth:`ViewBuilder.build_rows` — same arithmetic, batched.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.distributions.gaussian import Gaussian, gaussian_cdf
from repro.exceptions import InvalidParameterError
from repro.metrics.base import DensityForecast, DensitySeries
from repro.view.omega import OmegaGrid, OmegaRange
from repro.view.sigma_cache import SigmaCache

__all__ = ["ProbabilityMatrix", "ProbabilityRow", "ViewBuilder"]


@dataclass(frozen=True)
class ProbabilityRow:
    """All range probabilities for one inference time.

    Attributes
    ----------
    t:
        Inference index.
    mean:
        The expected true value the ranges are centred on.
    volatility:
        The forecast sigma (cache key when the cached path was used).
    probabilities:
        ``rho_lambda`` for ``lambda = -n/2 .. n/2 - 1``, in order.
    """

    t: int
    mean: float
    volatility: float
    probabilities: np.ndarray

    def ranges(self, grid: OmegaGrid) -> list[OmegaRange]:
        """Materialise the labelled ranges this row's probabilities cover."""
        return grid.ranges_around(self.mean)

    @property
    def total_mass(self) -> float:
        """Probability mass captured by the grid (< 1 for tail overflow)."""
        return float(np.sum(self.probabilities))


@dataclass(frozen=True)
class ProbabilityMatrix:
    """Columnar builder output: all range probabilities for all times.

    The batch equivalent of ``list[ProbabilityRow]``: row ``i`` of
    ``probabilities`` holds ``rho_lambda`` for inference time ``t[i]``.
    :class:`~repro.db.prob_view.ProbabilisticView` consumes it directly via
    ``from_matrix`` without materialising per-tuple objects.
    """

    t: np.ndarray
    mean: np.ndarray
    volatility: np.ndarray
    probabilities: np.ndarray

    def __len__(self) -> int:
        return self.t.size

    def row(self, index: int) -> ProbabilityRow:
        """Materialise one :class:`ProbabilityRow` (compatibility access)."""
        return ProbabilityRow(
            t=int(self.t[index]),
            mean=float(self.mean[index]),
            volatility=float(self.volatility[index]),
            probabilities=self.probabilities[index].copy(),
        )

    def rows(self) -> list[ProbabilityRow]:
        """Materialise every row (compatibility with the legacy list API)."""
        return [self.row(index) for index in range(len(self))]

    def __iter__(self) -> Iterator[ProbabilityRow]:
        for index in range(len(self)):
            yield self.row(index)

    @property
    def total_mass(self) -> np.ndarray:
        """Per-time probability mass captured by the grid."""
        return np.sum(self.probabilities, axis=1)


class ViewBuilder:
    """Evaluates the probability value generation query of Definition 2.

    Parameters
    ----------
    grid:
        The Omega view parameters ``(Delta, n)``.
    cache:
        Optional :class:`SigmaCache`; when present, Gaussian forecasts are
        served from it.

    Examples
    --------
    >>> from repro.distributions import Gaussian
    >>> from repro.metrics.base import DensityForecast, DensitySeries
    >>> forecast = DensityForecast(t=5, mean=1.0, distribution=Gaussian(1.0, 4.0),
    ...                            lower=-5.0, upper=7.0, volatility=2.0)
    >>> builder = ViewBuilder(OmegaGrid(delta=1.0, n=4))
    >>> row = builder.build_row(forecast)
    >>> float(np.round(row.total_mass, 3))
    0.683
    """

    def __init__(self, grid: OmegaGrid, cache: SigmaCache | None = None) -> None:
        if cache is not None and cache.grid != grid:
            raise InvalidParameterError(
                f"cache was built for grid {cache.grid!r}, not {grid!r}"
            )
        self.grid = grid
        self.cache = cache

    # ------------------------------------------------------------------
    # Row generation.
    # ------------------------------------------------------------------
    def build_row(self, forecast: DensityForecast) -> ProbabilityRow:
        """Compute ``Lambda_t = {rho_lambda}`` for one forecast (eq. 9)."""
        if self.cache is not None and isinstance(forecast.distribution, Gaussian):
            probabilities = self.cache.probability_row(forecast.volatility)
        else:
            edges = self.grid.edges_around(forecast.mean)
            cdf = np.asarray(forecast.distribution.cdf(edges), dtype=float)
            probabilities = np.diff(cdf)
        return ProbabilityRow(
            t=forecast.t,
            mean=forecast.mean,
            volatility=forecast.volatility,
            probabilities=probabilities,
        )

    def build_rows(self, forecasts: DensitySeries) -> list[ProbabilityRow]:
        """Vector of :meth:`build_row` over a whole density series."""
        return [self.build_row(forecast) for forecast in forecasts]

    def iter_rows(self, forecasts: DensitySeries) -> Iterator[ProbabilityRow]:
        """Lazy variant of :meth:`build_rows` for online consumption."""
        for forecast in forecasts:
            yield self.build_row(forecast)

    def build_matrix(self, forecasts: DensitySeries) -> ProbabilityMatrix:
        """Evaluate eq. (9) for a whole density series in one shot.

        Gaussian forecasts are served either from one broadcasted CDF call
        over the ``(T, n + 1)`` edge matrix or, when a cache is attached,
        from one vectorised floor lookup over the cached sigma keys.
        Non-Gaussian forecasts fall back to :meth:`build_row` individually,
        so mixed density series remain supported.
        """
        count = len(forecasts)
        means = np.asarray(forecasts.means, dtype=float)
        vols = np.asarray(forecasts.volatilities, dtype=float)
        probabilities = np.empty((count, self.grid.n))
        mask, mu, sigma = forecasts.gaussian_params()
        if np.any(mask):
            if self.cache is not None:
                probabilities[mask] = self.cache.probability_rows(vols[mask])
            else:
                edges = self.grid.edges_matrix(means[mask])
                cdf = gaussian_cdf(edges, mu[mask, None], sigma[mask, None])
                probabilities[mask] = np.diff(cdf, axis=1)
        for index in np.flatnonzero(~mask):
            probabilities[index] = self.build_row(forecasts[int(index)]).probabilities
        return ProbabilityMatrix(
            t=np.asarray(forecasts.times, dtype=np.int64),
            mean=means,
            volatility=vols,
            probabilities=probabilities,
        )

    # ------------------------------------------------------------------
    # Cache construction helper.
    # ------------------------------------------------------------------
    def with_cache_for(
        self,
        forecasts: DensitySeries,
        distance_constraint: float | None = None,
        memory_constraint: int | None = None,
    ) -> "ViewBuilder":
        """Return a builder whose cache is sized for ``forecasts``.

        Computes ``min(sigma_hat_t)`` / ``max(sigma_hat_t)`` over the
        forecasts matching the query — the paper's procedure for setting up
        the cache from the WHERE clause — and builds the sigma grid.
        """
        volatilities = forecasts.volatilities
        cache = SigmaCache(
            self.grid,
            min_sigma=float(np.min(volatilities)),
            max_sigma=float(np.max(volatilities)),
            distance_constraint=distance_constraint,
            memory_constraint=memory_constraint,
        )
        return ViewBuilder(self.grid, cache)

    # ------------------------------------------------------------------
    # Custom (irregular) range sets, e.g. the rooms of Fig. 1.
    # ------------------------------------------------------------------
    @staticmethod
    def probabilities_for_ranges(
        forecast: DensityForecast, ranges: Sequence[OmegaRange]
    ) -> dict[str, float]:
        """Probability of each labelled range under one forecast.

        Serves Definition 2 for arbitrary (non-grid) range sets; used by
        the indoor-tracking example to compute per-room probabilities.
        """
        out: dict[str, float] = {}
        for index, omega in enumerate(ranges):
            label = omega.label or f"omega_{index}"
            out[label] = forecast.distribution.prob(omega.low, omega.high)
        return out
