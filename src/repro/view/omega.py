"""Omega range construction (paper Section VI, Definition 2).

A probabilistic view decomposes the value domain into ranges
``Omega = {omega_1 .. omega_n}``.  The paper parameterises them around the
expected true value: ``Omega = { [r_hat + lambda*Delta, r_hat + (lambda+1)*Delta] }``
for ``lambda = -n/2 .. n/2 - 1``, controlled by the *view parameters*
``Delta`` (range width) and ``n`` (an even range count).
:class:`OmegaGrid` captures the ``(Delta, n)`` pair; :class:`OmegaRange`
is one labelled interval, also usable standalone for irregular range sets
such as the rooms of the paper's Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.util.validation import require_positive

__all__ = ["OmegaGrid", "OmegaRange"]


@dataclass(frozen=True)
class OmegaRange:
    """One range ``omega_i = [low, high]`` with an optional label.

    >>> room = OmegaRange(0.0, 2.0, label="room 1")
    >>> room.contains(1.5), room.width
    (True, 2.0)
    """

    low: float
    high: float
    label: str = ""

    def __post_init__(self) -> None:
        if not (np.isfinite(self.low) and np.isfinite(self.high)):
            raise InvalidParameterError(
                f"range bounds must be finite, got [{self.low}, {self.high}]"
            )
        if self.high <= self.low:
            raise InvalidParameterError(
                f"range upper bound must exceed lower, got [{self.low}, {self.high}]"
            )

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


class OmegaGrid:
    """The paper's ``(Delta, n)`` view parameters.

    Parameters
    ----------
    delta:
        Width of each range (``Delta > 0``).  Smaller values give the view
        finer granularity.
    n:
        Even number of ranges laid symmetrically around the expected true
        value.

    >>> grid = OmegaGrid(delta=2.0, n=2)
    >>> [(r.low, r.high) for r in grid.ranges_around(10.0)]
    [(8.0, 10.0), (10.0, 12.0)]
    """

    def __init__(self, delta: float, n: int) -> None:
        self.delta = require_positive("delta", delta)
        if n < 2 or n % 2 != 0:
            raise InvalidParameterError(f"n must be a positive even integer, got {n}")
        self.n = int(n)

    @property
    def lambdas(self) -> np.ndarray:
        """The offsets ``lambda = -n/2 .. n/2 - 1`` (one per range)."""
        half = self.n // 2
        return np.arange(-half, half)

    def edges_around(self, center: float) -> np.ndarray:
        """The ``n + 1`` range edges ``center + lambda * delta``.

        These are exactly the points at which the view builder (and the
        sigma-cache) evaluate the CDF in eq. (9).
        """
        half = self.n // 2
        return center + self.delta * np.arange(-half, half + 1)

    def edges_matrix(self, centers: np.ndarray) -> np.ndarray:
        """The ``(len(centers), n + 1)`` edge matrix of :meth:`edges_around`.

        One row per center, with the same arithmetic as the scalar method —
        the batch view builder and the columnar view expansion both derive
        their range layout from this single definition.
        """
        half = self.n // 2
        offsets = self.delta * np.arange(-half, half + 1)
        return np.asarray(centers, dtype=float)[:, None] + offsets[None, :]

    def ranges_around(self, center: float) -> list[OmegaRange]:
        """Materialise the ``n`` labelled ranges around ``center``."""
        edges = self.edges_around(center)
        return [
            OmegaRange(float(edges[i]), float(edges[i + 1]),
                       label=f"lambda={int(lam)}")
            for i, lam in enumerate(self.lambdas)
        ]

    def total_width(self) -> float:
        """Overall support covered by the grid, ``n * delta``."""
        return self.n * self.delta

    def __repr__(self) -> str:
        return f"OmegaGrid(delta={self.delta}, n={self.n})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OmegaGrid):
            return NotImplemented
        return self.delta == other.delta and self.n == other.n

    def __hash__(self) -> int:
        return hash((self.delta, self.n))
