"""Omega-view builder: from inferred densities to probabilistic views.

Implements Section VI of the paper: the probability value generation query
(Definition 2) over the ranges ``Omega = {r_hat_t + lambda * Delta}``, the
SQL-like ``CREATE VIEW ... AS DENSITY ...`` language, and the sigma-cache
that reuses CDF computations across time steps under provable distance and
memory constraints (Theorems 1 and 2).
"""

from repro.view.builder import ProbabilityMatrix, ProbabilityRow, ViewBuilder
from repro.view.hellinger import (
    hellinger_distance,
    ratio_threshold_for_distance,
    ratio_threshold_for_memory,
)
from repro.view.omega import OmegaGrid, OmegaRange
from repro.view.sigma_cache import CacheStatistics, SigmaCache
from repro.view.sql import (
    SelectQuery,
    ViewQuery,
    parse_select_query,
    parse_statement,
    parse_view_query,
)

__all__ = [
    "CacheStatistics",
    "OmegaGrid",
    "OmegaRange",
    "ProbabilityMatrix",
    "ProbabilityRow",
    "SelectQuery",
    "SigmaCache",
    "ViewBuilder",
    "ViewQuery",
    "hellinger_distance",
    "parse_select_query",
    "parse_statement",
    "parse_view_query",
    "ratio_threshold_for_distance",
    "ratio_threshold_for_memory",
]
