"""The sigma-cache (paper Section VI-A/B, Fig. 9).

Key observation: the *shape* of a Gaussian CDF is fully determined by its
standard deviation; the mean only translates it.  Because the Omega ranges
are themselves centred on the mean (``r_hat_t + lambda * Delta``), the
probability row ``{rho_lambda}`` of eq. (9) depends *only* on ``sigma_t`` —
so rows computed for one time can be reused at any other time with a similar
sigma.

The cache pre-computes rows for a geometric grid of sigmas
``sigma_q = d_s^q * min(sigma)`` and serves a query sigma from the greatest
grid key below it (floor lookup on a B-tree), which by Theorem 1 keeps the
Hellinger approximation error within the distance constraint used to choose
``d_s``.  Theorem 2 bounds the number of stored rows for a memory
constraint.  The stored row count is ``ceil(Q) + 1`` where
``max(sigma) = d_s^Q * min(sigma)`` — the ``+ 1`` stores the minimum sigma
itself so every query has a key below it (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.gaussian import Gaussian
from repro.exceptions import CacheConstraintError, InvalidParameterError
from repro.util.btree import BTreeMap
from repro.view.hellinger import (
    ratio_threshold_for_distance,
    ratio_threshold_for_memory,
)
from repro.view.omega import OmegaGrid

__all__ = ["SigmaCache", "CacheStatistics"]


@dataclass
class CacheStatistics:
    """Hit/miss counters and sizing facts for one cache instance."""

    hits: int = 0
    misses: int = 0
    n_distributions: int = 0
    ratio_threshold: float = 1.0
    max_ratio: float = 1.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class SigmaCache:
    """Pre-computed probability rows keyed by standard deviation.

    Parameters
    ----------
    grid:
        The Omega view parameters ``(Delta, n)``; cached rows hold the
        ``n`` probabilities ``rho_lambda`` of eq. (9) for a zero-mean
        Gaussian of the keyed sigma.
    min_sigma, max_sigma:
        The extremes of ``sigma_hat_t`` over the tuples the query matches
        (the paper computes them from the WHERE clause).
    distance_constraint:
        User bound ``H'`` on the Hellinger approximation error; converted
        to the ratio threshold ``d_s`` by Theorem 1.
    memory_constraint:
        Maximum number of stored distributions ``Q'``; converted to a lower
        bound on ``d_s`` by Theorem 2.  At least one of the two constraints
        must be given.  When both are given the memory bound takes
        precedence only if it is compatible with the distance bound,
        otherwise :class:`CacheConstraintError` is raised (the give-and-take
        trade-off discussed in the paper).

    Examples
    --------
    >>> cache = SigmaCache(OmegaGrid(0.1, 4), min_sigma=0.5, max_sigma=5.0,
    ...                    distance_constraint=0.05)
    >>> row = cache.probability_row(2.0)
    >>> len(row) == 4
    True
    """

    def __init__(
        self,
        grid: OmegaGrid,
        min_sigma: float,
        max_sigma: float,
        distance_constraint: float | None = None,
        memory_constraint: int | None = None,
        *,
        btree_degree: int = 16,
    ) -> None:
        if min_sigma <= 0 or not math.isfinite(min_sigma):
            raise InvalidParameterError(f"min_sigma must be > 0, got {min_sigma}")
        if max_sigma < min_sigma or not math.isfinite(max_sigma):
            raise InvalidParameterError(
                f"max_sigma must be >= min_sigma, got {max_sigma} < {min_sigma}"
            )
        if distance_constraint is None and memory_constraint is None:
            raise InvalidParameterError(
                "provide at least one of distance_constraint / memory_constraint"
            )
        self.grid = grid
        self.min_sigma = float(min_sigma)
        self.max_sigma = float(max_sigma)
        self.distance_constraint = distance_constraint
        self.memory_constraint = memory_constraint
        max_ratio = self.max_sigma / self.min_sigma  # D_s of eq. (12).
        ratio = self._choose_ratio(max_ratio)
        self._ratio = ratio
        self._tree = BTreeMap(min_degree=btree_degree)
        self._populate()
        self.stats = CacheStatistics(
            n_distributions=len(self._tree),
            ratio_threshold=ratio,
            max_ratio=max_ratio,
        )

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def _choose_ratio(self, max_ratio: float) -> float:
        """Pick ``d_s`` honouring the given constraint(s)."""
        upper = None  # Largest d_s allowed by the distance constraint.
        lower = None  # Smallest d_s allowed by the memory constraint.
        if self.distance_constraint is not None:
            upper = ratio_threshold_for_distance(self.distance_constraint)
        if self.memory_constraint is not None:
            if self.memory_constraint < 1:
                raise InvalidParameterError(
                    f"memory_constraint must be >= 1, got {self.memory_constraint}"
                )
            lower = ratio_threshold_for_memory(
                max(max_ratio, 1.0), self.memory_constraint
            )
        if upper is not None and lower is not None:
            if lower > upper:
                raise CacheConstraintError(
                    f"distance constraint requires d_s <= {upper:.6g} but the "
                    f"memory constraint requires d_s >= {lower:.6g}; relax one"
                )
            # Tightest memory use that still honours the error bound.
            return upper
        if upper is not None:
            return upper
        assert lower is not None
        return lower

    def _populate(self) -> None:
        """Pre-compute rows for sigma_q = d_s^q * min_sigma, q = 0..ceil(Q)."""
        if self._ratio <= 1.0:
            raise CacheConstraintError(
                "ratio threshold d_s collapsed to 1: the distance constraint "
                "is too tight to cache anything (every sigma would need its "
                "own distribution)"
            )
        max_ratio = self.max_sigma / self.min_sigma
        if max_ratio <= 1.0:
            q_count = 0
        else:
            # The 1e-9 slack absorbs float error when d_s was derived from
            # the memory constraint as exactly max_ratio^(1/Q').
            q_count = math.ceil(
                math.log(max_ratio) / math.log(self._ratio) - 1e-9
            )
        edges = self.grid.edges_around(0.0)  # Mean-shifted: centre at zero.
        for q in range(q_count + 1):
            sigma = self.min_sigma * self._ratio**q
            cdf = np.asarray(Gaussian(0.0, sigma**2).cdf(edges))
            self._tree[sigma] = np.diff(cdf)
        # Flat mirrors of the tree for the vectorised batch lookup: keys
        # ascending, one probability row per key.
        self._keys_array = np.array(list(self._tree.keys()))
        self._rows_matrix = np.vstack([self._tree[k] for k in self._keys_array])

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def probability_row(self, sigma: float) -> np.ndarray:
        """Return the cached ``rho_lambda`` row approximating ``sigma``.

        Performs the floor lookup of Theorem 1 (greatest cached sigma not
        above the query).  Sigmas below the declared minimum are clamped to
        it; sigmas above the declared maximum are served from the top key,
        whose error remains bounded as long as the declaration was honest.
        """
        if sigma <= 0 or not math.isfinite(sigma):
            raise InvalidParameterError(f"sigma must be > 0, got {sigma}")
        item = self._tree.floor_item(sigma)
        if item is None:
            # Below the declared minimum: clamp to the smallest key.
            self.stats.misses += 1
            _key, row = self._tree.min_item()
            return row
        _key, row = item
        self.stats.hits += 1
        return row

    def probability_rows(self, sigmas: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`probability_row`: one ``(len(sigmas), n)`` matrix.

        Performs the floor lookup for every query sigma in a single
        ``searchsorted`` over the cached keys; sigmas below the declared
        minimum clamp to the smallest key and count as misses, exactly like
        the scalar path.
        """
        sigmas = np.asarray(sigmas, dtype=float)
        if sigmas.size and (np.any(sigmas <= 0) or not np.all(np.isfinite(sigmas))):
            bad = sigmas[(sigmas <= 0) | ~np.isfinite(sigmas)][0]
            raise InvalidParameterError(f"sigma must be > 0, got {bad}")
        indices = np.searchsorted(self._keys_array, sigmas, side="right") - 1
        below = indices < 0
        self.stats.misses += int(np.count_nonzero(below))
        self.stats.hits += int(sigmas.size - np.count_nonzero(below))
        return self._rows_matrix[np.maximum(indices, 0)]

    def guaranteed_distance(self) -> float:
        """The Hellinger error bound implied by the chosen ``d_s``.

        Inverts eq. (11): the distance at ratio ``d_s`` is
        ``sqrt(1 - sqrt(2 d_s / (1 + d_s^2)))``.
        """
        ratio = self._ratio
        squared = 1.0 - math.sqrt(2.0 * ratio / (1.0 + ratio * ratio))
        return math.sqrt(max(squared, 0.0))

    # ------------------------------------------------------------------
    # Sizing.
    # ------------------------------------------------------------------
    @property
    def ratio_threshold(self) -> float:
        """The chosen ``d_s``."""
        return self._ratio

    def __len__(self) -> int:
        return len(self._tree)

    def size_bytes(self) -> int:
        """Approximate memory footprint: keys + float64 probability rows."""
        per_row = 8 + self.grid.n * 8
        return len(self._tree) * per_row

    def keys(self) -> np.ndarray:
        """The cached sigma keys in ascending order (for tests/inspection)."""
        return np.array(list(self._tree.keys()))

    def __repr__(self) -> str:
        return (
            f"SigmaCache(n={len(self)}, d_s={self._ratio:.6g}, "
            f"sigma=[{self.min_sigma:.6g}, {self.max_sigma:.6g}], "
            f"grid={self.grid!r})"
        )
