"""Standing queries: incrementally-maintained results over growing views.

Cormode & Garofalakis's probabilistic-stream aggregates (the related work
:mod:`repro.db.stream_queries` implements one-shot) become *standing*
queries once a view grows in place: a client registers the query once and
receives the newly answerable results after every ingested micro-batch,
computed **only over the new suffix** of the view.

Incremental state is chosen so the accumulated result is *identical* — not
just close — to re-running the one-shot query over the full view:

* per-time aggregates (threshold hits, exceedance probabilities, per-time
  expected values) depend only on that time's tuples, so evaluating them on
  the suffix view reproduces the full-view group reductions bit for bit;
* prefix sums continue the exact sequential accumulation chain
  (``cumsum([carry, new...])[1:]``), matching a full ``np.cumsum``;
* sliding products keep the last ``window - 1`` per-time values and reduce
  each new window with the same ``np.prod`` row reduction the one-shot
  query uses.

Each append therefore costs ``O(batch + window)``, independent of how many
tuples the view has accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.queries import expected_value_query, threshold_query
from repro.db.stream_queries import exceedance_probability, exceedance_vector
from repro.exceptions import InvalidParameterError

__all__ = ["StandingQuery", "StandingQueryHandle"]

_KINDS = (
    "threshold",
    "exceedance",
    "windowed_expected_value",
    "expected_time_above",
    "sustained_exceedance",
)

#: Parameters each kind needs; validated at construction, not deep in update().
_REQUIRED_PARAMS = {
    "threshold": ("tau",),
    "exceedance": ("threshold",),
    "windowed_expected_value": ("window",),
    "expected_time_above": ("threshold", "window"),
    "sustained_exceedance": ("threshold", "window"),
}


@dataclass(frozen=True)
class StandingQuery:
    """Declarative spec of one standing query (what, not how).

    Use the named constructors; they validate the parameters each kind
    needs.  The catalog turns a spec into live incremental state when the
    query is registered against a series.
    """

    kind: str
    tau: float | None = None
    threshold: float | None = None
    window: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"unknown standing query kind {self.kind!r}; "
                f"one of {', '.join(_KINDS)}"
            )
        for name in _REQUIRED_PARAMS[self.kind]:
            if getattr(self, name) is None:
                raise InvalidParameterError(
                    f"a {self.kind} standing query requires {name}="
                )
        if self.tau is not None and not 0.0 <= self.tau <= 1.0:
            raise InvalidParameterError(
                f"tau must be in [0, 1], got {self.tau}"
            )
        if self.window is not None:
            _check_window(self.window)

    # -- named constructors ---------------------------------------------
    @classmethod
    def threshold_tuples(cls, tau: float) -> "StandingQuery":
        """All tuples with ``probability >= tau`` (probabilistic threshold)."""
        return cls(kind="threshold", tau=float(tau))

    @classmethod
    def exceedance(cls, threshold: float) -> "StandingQuery":
        """Per-time ``P(value > threshold)``."""
        return cls(kind="exceedance", threshold=float(threshold))

    @classmethod
    def windowed_expected_value(cls, window: int) -> "StandingQuery":
        """Sliding-window mean of per-time expected values."""
        return cls(kind="windowed_expected_value", window=_check_window(window))

    @classmethod
    def expected_time_above(cls, threshold: float, window: int) -> "StandingQuery":
        """Expected exceedance count per window (linearity of E)."""
        return cls(
            kind="expected_time_above",
            threshold=float(threshold),
            window=_check_window(window),
        )

    @classmethod
    def sustained_exceedance(cls, threshold: float, window: int) -> "StandingQuery":
        """P(threshold exceeded at every time of each window)."""
        return cls(
            kind="sustained_exceedance",
            threshold=float(threshold),
            window=_check_window(window),
        )

    def describe(self) -> str:
        parts = [self.kind]
        for name in ("tau", "threshold", "window"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        return " ".join(parts)


def _check_window(window: int) -> int:
    if int(window) != window or window < 1:
        raise InvalidParameterError(f"window must be an integer >= 1, got {window}")
    return int(window)


@dataclass
class StandingQueryHandle:
    """A registered standing query: accumulated result + last delta.

    ``result()`` always equals the one-shot query from
    :mod:`repro.db.queries` / :mod:`repro.db.stream_queries` over the full
    materialised view; ``last_delta`` holds only what the most recent
    append made newly answerable.
    """

    query: StandingQuery
    _state: "_QueryState" = field(repr=False, default=None)  # type: ignore[assignment]
    last_delta: Any = None

    def __post_init__(self) -> None:
        if self._state is None:
            self._state = _make_state(self.query)

    def update(self, suffix: ProbabilisticView) -> Any:
        """Feed the view's new suffix; returns (and records) the delta."""
        self.last_delta = self._state.update(suffix)
        return self.last_delta

    def result(self) -> Any:
        """The accumulated result over everything ingested so far."""
        return self._state.result()


# ----------------------------------------------------------------------
# Incremental state, one class per query kind.
# ----------------------------------------------------------------------
class _QueryState:
    def update(self, suffix: ProbabilisticView) -> Any:  # pragma: no cover
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover
        raise NotImplementedError


class _ThresholdState(_QueryState):
    """Tuples are emitted in (time, range) order, so suffix hits append."""

    def __init__(self, tau: float) -> None:
        self._tau = tau
        self._hits: list[ProbTuple] = []

    def update(self, suffix: ProbabilisticView) -> list[ProbTuple]:
        delta = threshold_query(suffix, self._tau)
        self._hits.extend(delta)
        return delta

    def result(self) -> list[ProbTuple]:
        return list(self._hits)


class _ExceedanceState(_QueryState):
    """Per-time reduction: the suffix computation is the full one, sliced."""

    def __init__(self, threshold: float) -> None:
        self._threshold = threshold
        self._results: dict[int, float] = {}

    def update(self, suffix: ProbabilisticView) -> dict[int, float]:
        delta = exceedance_probability(suffix, self._threshold)
        self._results.update(delta)
        return delta

    def result(self) -> dict[int, float]:
        return dict(self._results)


def _check_contiguous(new_times: np.ndarray, last_time: int | None) -> None:
    """Windowed queries need gap-free times, like their one-shot forms.

    ``new_times`` must be consecutive and continue directly after the last
    time already ingested — windowing by array position would otherwise
    silently span time gaps, breaking the equals-full-recompute guarantee.
    """
    span = f"[{int(new_times[0])} .. {int(new_times[-1])}]"
    if np.any(np.diff(new_times) != 1):
        detail = f"times {span} have gaps"
    elif last_time is not None and int(new_times[0]) != last_time + 1:
        detail = f"times {span} do not continue after {last_time}"
    else:
        return
    raise InvalidParameterError(
        f"windowed standing queries need consecutive inference times; {detail}"
    )


class _PrefixSumState(_QueryState):
    """Shared machinery for the cumulative-sum windowed queries.

    Continues the exact accumulation chain of a full ``np.cumsum`` over the
    per-time value vector, but retains only its trailing ``window + 1``
    entries — new windows never reach further back — so the auxiliary state
    stays O(window) no matter how long the service ingests.
    """

    def __init__(self, window: int, divide: bool) -> None:
        self._window = window
        self._divide = divide
        self._count = 0  # Times ingested so far.
        self._last_time: int | None = None
        self._csum_tail = np.zeros(1)  # Trailing prefix sums; [-1] = total.
        self._results: dict[int, float] = {}

    def _per_time_values(self, suffix: ProbabilisticView) -> np.ndarray:
        raise NotImplementedError

    def update(self, suffix: ProbabilisticView) -> dict[int, float]:
        new_times = np.asarray(suffix.columns.times, dtype=np.int64)
        if new_times.size == 0:
            return {}
        _check_contiguous(new_times, self._last_time)
        values = self._per_time_values(suffix)
        carry = self._csum_tail[-1]
        csum = np.concatenate([
            self._csum_tail,
            np.cumsum(np.concatenate(([carry], values)))[1:],
        ])
        # csum[i] is the prefix sum at global index base + i.
        count_before = self._count
        base = count_before + 1 - self._csum_tail.size
        window = self._window
        total = count_before + new_times.size
        first_end = max(window - 1, count_before)  # Global window-end index.
        delta: dict[int, float] = {}
        if total > first_end:
            ends = np.arange(first_end, total)
            sums = csum[ends + 1 - base] - csum[ends + 1 - window - base]
            if self._divide:
                sums = sums / window
            delta = {
                int(new_times[e - count_before]): float(s)
                for e, s in zip(ends, sums)
            }
            self._results.update(delta)
        keep = min(total + 1, window + 1)
        self._csum_tail = csum[csum.size - keep :]
        self._count = total
        self._last_time = int(new_times[-1])
        return delta

    def result(self) -> dict[int, float]:
        return dict(self._results)


class _WindowedExpectedValueState(_PrefixSumState):
    def __init__(self, window: int) -> None:
        super().__init__(window, divide=True)

    def _per_time_values(self, suffix: ProbabilisticView) -> np.ndarray:
        expectations = expected_value_query(suffix)
        return np.array(
            [expectations[int(t)] for t in suffix.columns.times]
        )


class _ExpectedTimeAboveState(_PrefixSumState):
    def __init__(self, threshold: float, window: int) -> None:
        super().__init__(window, divide=False)
        self._threshold = threshold

    def _per_time_values(self, suffix: ProbabilisticView) -> np.ndarray:
        return exceedance_vector(suffix, self._threshold)


class _SustainedExceedanceState(_QueryState):
    """Keeps the last ``window - 1`` per-time exceedances for new products."""

    def __init__(self, threshold: float, window: int) -> None:
        self._threshold = threshold
        self._window = window
        self._tail_values = np.empty(0)
        self._tail_times = np.empty(0, dtype=np.int64)
        self._last_time: int | None = None
        self._results: dict[int, float] = {}

    def update(self, suffix: ProbabilisticView) -> dict[int, float]:
        new_times = np.asarray(suffix.columns.times, dtype=np.int64)
        if new_times.size == 0:
            return {}
        _check_contiguous(new_times, self._last_time)
        self._last_time = int(new_times[-1])
        values = np.concatenate(
            [self._tail_values, exceedance_vector(suffix, self._threshold)]
        )
        times = np.concatenate([self._tail_times, new_times])
        window = self._window
        delta: dict[int, float] = {}
        if values.size >= window:
            products = np.prod(sliding_window_view(values, window), axis=1)
            for offset, product in enumerate(products):
                delta[int(times[offset + window - 1])] = float(product)
            self._results.update(delta)
        keep = min(window - 1, values.size)
        self._tail_values = values[values.size - keep :]
        self._tail_times = times[times.size - keep :]
        return delta

    def result(self) -> dict[int, float]:
        return dict(self._results)


def _make_state(query: StandingQuery) -> _QueryState:
    if query.kind == "threshold":
        return _ThresholdState(query.tau)  # type: ignore[arg-type]
    if query.kind == "exceedance":
        return _ExceedanceState(query.threshold)  # type: ignore[arg-type]
    if query.kind == "windowed_expected_value":
        return _WindowedExpectedValueState(query.window)  # type: ignore[arg-type]
    if query.kind == "expected_time_above":
        return _ExpectedTimeAboveState(query.threshold, query.window)  # type: ignore[arg-type]
    assert query.kind == "sustained_exceedance"
    return _SustainedExceedanceState(query.threshold, query.window)  # type: ignore[arg-type]
