"""Columnar ``.npz`` persistence for views and density series.

The CSV formats in :mod:`repro.db.storage` / :mod:`repro.db.density_store`
stay as human-readable debug formats; this module is the *system* backend:
schema-versioned binary files holding the column arrays directly, so saving
and loading a million-tuple view is a handful of bulk array writes instead
of a per-tuple Python loop, and the round trip is bit-exact (float64 in,
float64 out).

Every file carries ``schema`` (format version) and ``kind`` (payload type)
arrays; loaders reject files written under a different schema version with
:class:`~repro.exceptions.SchemaVersionError` rather than misreading them.
The same column payload doubles as the segment format of the catalog's
append-friendly layout (:mod:`repro.store.catalog`): one file per ingested
micro-batch, concatenated column-wise at load time.
"""

from __future__ import annotations

import json
import os
import shutil
import zipfile
from pathlib import Path

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import DataError, SchemaVersionError, StoreError
from repro.metrics.base import DensityForecast, DensitySeries
from repro.distributions.gaussian import Gaussian
from repro.distributions.uniform import Uniform

__all__ = [
    "EXC_SKETCH_EDGES",
    "PROB_HIST_BUCKETS",
    "SCHEMA_VERSION",
    "SEGMENT_SUFFIX_NPZ",
    "SEGMENT_SUFFIX_V2",
    "SYNOPSIS_VERSION",
    "check_schema_version",
    "compute_view_synopsis",
    "load_density_series_npz",
    "load_segment_synopsis",
    "load_view_columns",
    "load_view_columns_npz",
    "load_view_columns_v2",
    "load_view_npz",
    "save_density_series_npz",
    "save_view_columns",
    "save_view_columns_npz",
    "save_view_columns_v2",
    "save_view_npz",
    "write_segment_synopsis",
]

#: Version written into every binary file; bump on incompatible changes.
SCHEMA_VERSION = 1

#: Version stamped into every segment synopsis; readers treat synopses of
#: a different version as absent (lazy recompute / no pruning) rather than
#: misinterpreting their fields.
SYNOPSIS_VERSION = 1

#: Probability histogram granularity: tuple probabilities are counted into
#: ``PROB_HIST_BUCKETS`` equal-width buckets over [0, 1].  Bucket ``j``
#: holds tuples with ``j/B <= p < (j+1)/B`` (the last bucket is closed at
#: 1), assigned by exact comparison against the same ``j/B`` floats a
#: reader recomputes — so bucket membership gives *rigorous* per-bucket
#: probability bounds, not merely approximate ones.
PROB_HIST_BUCKETS = 20

#: Exceedance sketch granularity: per-time exceedance maxima are recorded
#: at this many threshold grid points spanning [low_min, high_max].
EXC_SKETCH_EDGES = 9

#: Sidecar file carrying the synopsis of an ``.npz`` segment (the zip
#: archive itself is immutable once renamed into place); layout-v2
#: segments embed the synopsis in their ``meta.json`` instead.
_SYNOPSIS_SIDECAR_SUFFIX = ".synopsis.json"

#: Segment layout suffixes.  ``.npz`` is the original zipped archive (one
#: file, zlib-framed members); ``.v2`` is a *directory* holding one raw,
#: uncompressed ``.npy`` per column plus a small ``meta.json`` — the layout
#: ``np.load(..., mmap_mode="r")`` can map zero-copy, so many reader
#: processes share the same page-cache pages instead of each rehydrating
#: its own arrays.
SEGMENT_SUFFIX_NPZ = ".npz"
SEGMENT_SUFFIX_V2 = ".v2"

_KIND_VIEW = "view_columns"
_KIND_DENSITY = "density_columns"

_V2_META = "meta.json"
_V2_COLUMNS = ("t", "low", "high", "probability", "label_code")

#: Density-family dictionary codes (per-row, so mixed series round-trip).
_FAMILIES = ("gaussian", "uniform")


def check_schema_version(found: int, path: str | Path) -> None:
    """Reject data written under a different schema version.

    The single place the version contract is enforced — both the npz
    payloads here and the catalog's JSON metadata route through it.
    """
    if found != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"{path} was written under schema version {found}; this build "
            f"reads version {SCHEMA_VERSION}",
            found=found,
            expected=SCHEMA_VERSION,
        )


def _savez_exact(path: Path, **arrays: np.ndarray) -> None:
    """``np.savez`` to the literal path (no silent ``.npz`` suffixing).

    Writing through an open handle keeps save and load symmetric for
    suffix-less paths.  The write lands in a same-directory temp file that
    is renamed over the target, so a concurrent reader (or a crash
    mid-write) never observes a truncated file — the catalog's snapshot
    readers rely on every *named* segment being complete.
    """
    tmp = path.with_name(f".{path.name}.tmp")
    try:
        with tmp.open("wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _open_npz(path: str | Path, kind: str) -> np.lib.npyio.NpzFile:
    path = Path(path)
    try:
        payload = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise StoreError(f"no such store file: {path}") from None
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        # BadZipFile (a truncated/corrupt archive) subclasses neither
        # OSError nor ValueError; without it a damaged segment would leak
        # a raw zipfile exception past the ReproError hierarchy.
        raise DataError(f"{path} is not a readable npz file: {exc}") from exc
    if "schema" not in payload or "kind" not in payload:
        raise DataError(f"{path} carries no schema/kind header")
    check_schema_version(int(payload["schema"]), path)
    found_kind = str(payload["kind"])
    if found_kind != kind:
        raise DataError(
            f"{path} holds {found_kind!r} data, expected {kind!r}"
        )
    return payload


# ----------------------------------------------------------------------
# Probabilistic views.
# ----------------------------------------------------------------------
def save_view_npz(view: ProbabilisticView, path: str | Path) -> None:
    """Persist a view's column arrays (plus its label dictionary).

    One bulk write per column — no per-tuple objects, no text formatting.
    """
    cols = view.columns
    save_view_columns_npz(
        path,
        t=cols.t,
        low=cols.low,
        high=cols.high,
        probability=cols.probability,
        label_code=cols.label_code,
        labels=cols.labels,
    )


def save_view_columns_npz(
    path: str | Path,
    *,
    t: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    probability: np.ndarray,
    label_code: np.ndarray,
    labels: tuple[str, ...],
    synopsis: dict | None = None,
) -> None:
    """Raw-column variant of :func:`save_view_npz` (the segment writer).

    ``synopsis`` (when given) lands in a JSON sidecar *after* the segment
    rename — a crash between the two leaves a valid segment without a
    sidecar, which readers treat as "compute lazily", never as corruption.
    """
    path = Path(path)
    _savez_exact(
        path,
        schema=np.int64(SCHEMA_VERSION),
        kind=np.str_(_KIND_VIEW),
        t=np.ascontiguousarray(t, dtype=np.int64),
        low=np.ascontiguousarray(low, dtype=float),
        high=np.ascontiguousarray(high, dtype=float),
        probability=np.ascontiguousarray(probability, dtype=float),
        label_code=np.ascontiguousarray(label_code, dtype=np.int64),
        labels=np.array(labels if labels else ("",), dtype=np.str_),
    )
    if synopsis is not None:
        _write_json_file_atomic(_synopsis_sidecar(path), synopsis)


def load_view_columns_npz(path: str | Path) -> dict[str, np.ndarray]:
    """Load the raw column payload of one view file / catalog segment."""
    payload = _open_npz(path, _KIND_VIEW)
    return {
        key: payload[key]
        for key in ("t", "low", "high", "probability", "label_code", "labels")
    }


# ----------------------------------------------------------------------
# Segment synopses: zone-map metadata computed once at write time.
# ----------------------------------------------------------------------
def compute_view_synopsis(
    t: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    probability: np.ndarray,
) -> dict:
    """The zone-map synopsis of one segment's column payload.

    Everything the planner needs to *prove* a segment cannot contribute
    to a query (time range, maximum tuple probability) plus the sketches
    the APPROX estimators interpolate over:

    * per-time expected-value partial sums and extrema, computed with the
      exact arithmetic of :func:`repro.db.queries.expected_value_query`
      (mass-normalised; degenerate groups fall back to the support
      midpoint) so the segment bounds enclose the exact per-time values;
    * a :data:`PROB_HIST_BUCKETS`-bucket histogram of tuple
      probabilities, bucketed by exact comparison against ``j/B`` so a
      reader can derive rigorous threshold-count bounds;
    * an exceedance sketch: ``max_t P(value > theta)`` at
      :data:`EXC_SKETCH_EDGES` grid thresholds spanning the segment's
      value support, mirroring
      :func:`repro.db.stream_queries.exceedance_vector`.  Exceedance is
      non-increasing in ``theta``, so adjacent grid values bracket the
      true maximum at any threshold between them.

    All values are plain Python ints/floats (JSON round-trips Python
    floats exactly), keyed by :data:`SYNOPSIS_VERSION`.
    """
    t = np.ascontiguousarray(t, dtype=np.int64)
    low = np.ascontiguousarray(low, dtype=float)
    high = np.ascontiguousarray(high, dtype=float)
    probability = np.ascontiguousarray(probability, dtype=float)
    if not t.size:
        return {"version": SYNOPSIS_VERSION, "rows": 0, "times": 0}
    order = np.argsort(t, kind="stable")
    ts = t[order]
    starts = np.flatnonzero(np.concatenate(([True], ts[1:] != ts[:-1])))
    prob_sorted = probability[order]
    masses = np.add.reduceat(prob_sorted, starts)
    weighted = (probability * 0.5 * (low + high))[order]
    sums = np.add.reduceat(weighted, starts)
    lows_grouped = np.minimum.reduceat(low[order], starts)
    highs_grouped = np.maximum.reduceat(high[order], starts)
    with np.errstate(divide="ignore", invalid="ignore"):
        ev = np.where(
            masses > 0.0,
            sums / np.where(masses > 0.0, masses, 1.0),
            0.5 * (lows_grouped + highs_grouped),
        )
    bucket_edges = np.arange(1, PROB_HIST_BUCKETS) / PROB_HIST_BUCKETS
    hist = np.bincount(
        np.searchsorted(bucket_edges, probability, side="right"),
        minlength=PROB_HIST_BUCKETS,
    )
    low_min = float(low.min())
    high_max = float(high.max())
    exc_edges = np.linspace(low_min, high_max, EXC_SKETCH_EDGES)
    spans = high - low
    exc_max = []
    for theta in exc_edges:
        fraction = np.clip((high - theta) / spans, 0.0, 1.0)
        contribution = (probability * fraction)[order]
        per_time = np.minimum(np.add.reduceat(contribution, starts), 1.0)
        exc_max.append(float(per_time.max()))
    return {
        "version": SYNOPSIS_VERSION,
        "rows": int(t.size),
        "times": int(starts.size),
        "t_min": int(ts[0]),
        "t_max": int(ts[-1]),
        "prob_max": float(probability.max()),
        "low_min": low_min,
        "high_max": high_max,
        "mass_max": float(masses.max()),
        "ev_sum": float(ev.sum()),
        "ev_min": float(ev.min()),
        "ev_max": float(ev.max()),
        "prob_hist": [int(count) for count in hist],
        "exc_edges": [float(edge) for edge in exc_edges],
        "exc_max": exc_max,
    }


def _write_json_file_atomic(path: Path, payload: dict) -> None:
    """Small-JSON sibling of ``_savez_exact``: temp file + rename."""
    tmp = path.with_name(f".{path.name}.tmp")
    try:
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _synopsis_sidecar(path: Path) -> Path:
    return path.with_name(path.name + _SYNOPSIS_SIDECAR_SUFFIX)


def _valid_synopsis(payload: object) -> dict | None:
    """``payload`` if it is a current-version synopsis dict, else None."""
    if (
        isinstance(payload, dict)
        and payload.get("version") == SYNOPSIS_VERSION
    ):
        return payload
    return None


def write_segment_synopsis(path: str | Path, synopsis: dict) -> None:
    """Attach ``synopsis`` to an already-written segment of either layout.

    Layout-v2 segments carry it inside ``meta.json`` (rewritten
    atomically); ``.npz`` segments — immutable zip archives — get a JSON
    sidecar next to the file.  Used by the backfill path
    (:meth:`repro.store.catalog.Catalog.synopsize`); fresh writes go
    through :func:`save_view_columns`, which persists the synopsis as
    part of the segment write itself.
    """
    path = Path(path)
    if path.suffix == SEGMENT_SUFFIX_V2 or path.is_dir():
        meta_path = path / _V2_META
        try:
            meta = json.loads(meta_path.read_text())
        except FileNotFoundError:
            raise StoreError(f"no such store file: {path}") from None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DataError(
                f"{path} is not a readable v2 segment: {exc}"
            ) from exc
        meta["synopsis"] = synopsis
        _write_json_file_atomic(meta_path, meta)
    else:
        _write_json_file_atomic(_synopsis_sidecar(path), synopsis)


def load_segment_synopsis(path: str | Path) -> dict | None:
    """The stored synopsis of one segment, or None when absent/unreadable.

    Absence is not an error: segments written before synopses existed (or
    whose sidecar was lost) simply report None, and callers fall back to
    loading the columns — the "old catalogs never error" contract.
    """
    path = Path(path)
    if path.suffix == SEGMENT_SUFFIX_V2 or path.is_dir():
        try:
            meta = json.loads((path / _V2_META).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return _valid_synopsis(meta.get("synopsis"))
    try:
        payload = json.loads(_synopsis_sidecar(path).read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return _valid_synopsis(payload)


# ----------------------------------------------------------------------
# Segment layout v2: one raw .npy per column, mmap-able.
# ----------------------------------------------------------------------
def save_view_columns_v2(
    path: str | Path,
    *,
    t: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    probability: np.ndarray,
    label_code: np.ndarray,
    labels: tuple[str, ...],
    synopsis: dict | None = None,
) -> None:
    """Write one layout-v2 segment: a directory of uncompressed columns.

    The whole segment lands in a same-directory temp dir that is renamed
    over the target, so a reader never observes a half-written segment —
    the same durability contract :func:`_savez_exact` gives ``.npz``
    files.  A pre-existing target (an orphan from a crashed append being
    overwritten on resume) is unreferenced by definition and is removed
    first.  ``synopsis`` (when given) rides inside ``meta.json``, so it
    is exactly as durable as the segment itself.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp")
    shutil.rmtree(tmp, ignore_errors=True)
    try:
        tmp.mkdir(parents=True)
        np.save(tmp / "t.npy", np.ascontiguousarray(t, dtype=np.int64))
        np.save(tmp / "low.npy", np.ascontiguousarray(low, dtype=float))
        np.save(tmp / "high.npy", np.ascontiguousarray(high, dtype=float))
        np.save(
            tmp / "probability.npy",
            np.ascontiguousarray(probability, dtype=float),
        )
        np.save(
            tmp / "label_code.npy",
            np.ascontiguousarray(label_code, dtype=np.int64),
        )
        meta = {
            "schema_version": SCHEMA_VERSION,
            "kind": _KIND_VIEW,
            "layout": 2,
            "labels": [str(label) for label in (labels if labels else ("",))],
        }
        if synopsis is not None:
            meta["synopsis"] = synopsis
        (tmp / _V2_META).write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )
        if path.exists():
            shutil.rmtree(path)
        os.replace(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def load_view_columns_v2(
    path: str | Path, *, mmap: bool = False
) -> dict[str, np.ndarray]:
    """Load one layout-v2 segment, optionally memory-mapped.

    With ``mmap=True`` the numeric columns come back as read-only
    ``np.memmap`` views over the files — no copy, and concurrent reader
    processes share the underlying page-cache pages.
    """
    path = Path(path)
    meta_path = path / _V2_META
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        raise StoreError(f"no such store file: {path}") from None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DataError(f"{path} is not a readable v2 segment: {exc}") from exc
    if "schema_version" not in meta or "kind" not in meta:
        raise DataError(f"{path} carries no schema/kind header")
    check_schema_version(int(meta["schema_version"]), path)
    if meta["kind"] != _KIND_VIEW:
        raise DataError(
            f"{path} holds {meta['kind']!r} data, expected {_KIND_VIEW!r}"
        )
    mmap_mode = "r" if mmap else None
    columns: dict[str, np.ndarray] = {}
    for name in _V2_COLUMNS:
        column_path = path / f"{name}.npy"
        try:
            columns[name] = np.load(
                column_path, mmap_mode=mmap_mode, allow_pickle=False
            )
        except FileNotFoundError:
            raise DataError(f"{path} is missing column {name!r}") from None
        except (OSError, ValueError) as exc:
            raise DataError(
                f"{column_path} is not a readable npy file: {exc}"
            ) from exc
    columns["labels"] = np.array(meta.get("labels") or [""], dtype=np.str_)
    return columns


def save_view_columns(
    path: str | Path,
    *,
    t: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    probability: np.ndarray,
    label_code: np.ndarray,
    labels: tuple[str, ...],
) -> dict:
    """Write one segment, dispatching on the path's layout suffix.

    Computes the segment's zone-map synopsis from the columns being
    written (one extra vectorised pass over data already in memory),
    persists it with the segment, and returns it so the catalog can
    surface it through ``series.json`` without re-reading the segment.
    """
    synopsis = compute_view_synopsis(t, low, high, probability)
    if Path(path).suffix == SEGMENT_SUFFIX_V2:
        save_view_columns_v2(
            path,
            t=t,
            low=low,
            high=high,
            probability=probability,
            label_code=label_code,
            labels=labels,
            synopsis=synopsis,
        )
    else:
        save_view_columns_npz(
            path,
            t=t,
            low=low,
            high=high,
            probability=probability,
            label_code=label_code,
            labels=labels,
            synopsis=synopsis,
        )
    return synopsis


def load_view_columns(
    path: str | Path, *, mmap: bool = False
) -> dict[str, np.ndarray]:
    """Load one segment of either layout.

    ``mmap`` requests zero-copy reads; it applies to layout-v2 segments
    and falls back transparently to a regular load for ``.npz`` (a zip
    archive cannot be mapped).
    """
    path = Path(path)
    if path.suffix == SEGMENT_SUFFIX_V2 or path.is_dir():
        return load_view_columns_v2(path, mmap=mmap)
    return load_view_columns_npz(path)


def load_view_npz(path: str | Path, name: str | None = None) -> ProbabilisticView:
    """Rebuild a view previously written by :func:`save_view_npz`.

    The view name defaults to the file stem.  Validation (range order,
    probability bounds, per-time mass) reruns as the usual vectorised pass,
    so a corrupted file fails loudly instead of producing a broken view.
    """
    path = Path(path)
    columns = load_view_columns_npz(path)
    return ProbabilisticView.from_columns(
        name or path.stem,
        columns["t"],
        columns["low"],
        columns["high"],
        columns["probability"],
        label_code=columns["label_code"],
        label_pool=tuple(str(label) for label in columns["labels"]),
    )


# ----------------------------------------------------------------------
# Density series.
# ----------------------------------------------------------------------
def _family_codes(series: DensitySeries) -> np.ndarray:
    """Per-forecast family codes; rejects non-location-scale densities.

    Series carrying a homogeneous :attr:`DensitySeries.family` tag resolve
    without materialising a single forecast; only object-built (possibly
    mixed) series fall back to inspecting the non-Gaussian rows.
    """
    if series.family in _FAMILIES:
        code = _FAMILIES.index(series.family)
        return np.full(len(series), code, dtype=np.int8)
    mask, _mu, _sigma = series.gaussian_params()
    codes = np.where(mask, 0, 1).astype(np.int8)
    for index in np.flatnonzero(~mask):
        distribution = series[int(index)].distribution
        if not isinstance(distribution, Uniform):
            raise StoreError(
                f"cannot persist distribution family "
                f"{type(distribution).__name__}; only Gaussian and Uniform "
                "are storable"
            )
    return codes


def save_density_series_npz(series: DensitySeries, path: str | Path) -> None:
    """Persist a density series through its column arrays.

    Families are dictionary-coded per row (Gaussian/Uniform), so mixed
    series survive; anything else raises
    :class:`~repro.exceptions.StoreError` like the CSV density store does.
    The exact variance column rides along when the series carries one, so
    reloaded Gaussians skip the lossy ``sqrt``/square round trip.
    """
    columns = {
        "schema": np.int64(SCHEMA_VERSION),
        "kind": np.str_(_KIND_DENSITY),
        "t": np.ascontiguousarray(series.times, dtype=np.int64),
        "mean": np.ascontiguousarray(series.means, dtype=float),
        "volatility": np.ascontiguousarray(series.volatilities, dtype=float),
        "lower": np.ascontiguousarray(series.lowers, dtype=float),
        "upper": np.ascontiguousarray(series.uppers, dtype=float),
        "family_code": _family_codes(series),
    }
    if series.variances is not None:
        columns["variance"] = np.ascontiguousarray(series.variances, dtype=float)
    _savez_exact(Path(path), **columns)


def load_density_series_npz(path: str | Path) -> DensitySeries:
    """Rebuild a density series written by :func:`save_density_series_npz`.

    Homogeneous files come back through the lazy
    :meth:`DensitySeries.from_columns` path (no per-forecast objects);
    mixed Gaussian/Uniform files materialise row by row.
    """
    payload = _open_npz(path, _KIND_DENSITY)
    codes = payload["family_code"]
    if codes.size and (int(codes.min()) < 0 or int(codes.max()) >= len(_FAMILIES)):
        raise DataError(f"{path} carries unknown density family codes")
    t = payload["t"]
    mean = payload["mean"]
    volatility = payload["volatility"]
    lower = payload["lower"]
    upper = payload["upper"]
    variance = payload["variance"] if "variance" in payload else None
    distinct = np.unique(codes)
    if distinct.size <= 1:
        family = _FAMILIES[int(distinct[0])] if distinct.size else "gaussian"
        return DensitySeries.from_columns(
            t, mean, volatility, lower, upper, family=family,
            variance=variance,
        )
    forecasts = []
    for index in range(t.size):
        if int(codes[index]) == 0:
            sigma2 = (
                float(variance[index])
                if variance is not None
                else float(volatility[index]) ** 2
            )
            distribution = Gaussian(float(mean[index]), sigma2)
        else:
            distribution = Uniform(float(lower[index]), float(upper[index]))
        forecasts.append(DensityForecast(
            t=int(t[index]),
            mean=float(mean[index]),
            distribution=distribution,
            lower=float(lower[index]),
            upper=float(upper[index]),
            volatility=float(volatility[index]),
        ))
    return DensitySeries(forecasts)
