"""Persistent view catalog, binary persistence, and standing queries.

The systems layer the paper leaves implicit: views survive process
restarts, many series live side by side, values stream in as micro-batches
with incremental view maintenance, and registered standing queries receive
new results per append (see ``README.md`` for the architecture).
"""

from repro.store.binary import (
    SCHEMA_VERSION,
    load_density_series_npz,
    load_view_columns,
    load_view_npz,
    save_density_series_npz,
    save_view_columns,
    save_view_npz,
)
from repro.store.catalog import (
    AppendResult,
    Catalog,
    RevisionFrontier,
    SeriesHandle,
    SeriesSnapshot,
)
from repro.store.standing import StandingQuery, StandingQueryHandle

__all__ = [
    "AppendResult",
    "Catalog",
    "RevisionFrontier",
    "SCHEMA_VERSION",
    "SeriesHandle",
    "SeriesSnapshot",
    "StandingQuery",
    "StandingQueryHandle",
    "load_density_series_npz",
    "load_view_columns",
    "load_view_npz",
    "save_density_series_npz",
    "save_view_columns",
    "save_view_npz",
]
