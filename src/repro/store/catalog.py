"""Persistent multi-series catalog with streaming ingestion.

The paper's end product is a probabilistic *database*; this module is the
durable service layer around it.  A :class:`Catalog` is a directory of
named series, each bound to a dynamic density metric and a persisted
probabilistic view.  Values arrive in micro-batches through
:meth:`Catalog.append`, which drives an :class:`~repro.pipeline.OnlinePipeline`
incrementally (one vectorised ``feed_batch`` per call, reusing the series'
sigma-cache across appends), extends the stored view with a new **segment**
— never rebuilding earlier rows — and pushes the new suffix to every
registered standing query.

On-disk layout (all JSON human-inspectable, all arrays binary)::

    <root>/
      catalog.json              # schema version + series ids
      <series_id>/
        series.json             # metric, grid, cache config, resume state
        seg-00000001.npz        # view columns of one ingested micro-batch
        seg-00000002.npz
        ...

``series.json`` is rewritten atomically (temp file + rename) *after* its
segment lands, so a crash between the two leaves an orphan segment that is
simply ignored on reopen — appends resume at the recorded ``next_t`` and
the stored view stays consistent.  Standing-query registrations are
session-scoped (clients re-register after a restart); everything else
survives a process restart.  One caveat: the metric is rebuilt from its
registry name on reopen, so metrics carrying *internal* warm-start state
(e.g. ARMA-GARCH's previous GARCH parameters) re-warm from the restored
window — the first forecasts after a restart can differ from an
uninterrupted run at the optimiser-tolerance level (~1e-9).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import uuid
from collections.abc import Sequence
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.exceptions import InvalidParameterError, QueryError, StoreError
from repro.metrics.registry import create_metric
from repro.obs.metrics import default_registry
from repro.pipeline import OnlinePipeline
from repro.store.binary import (
    SCHEMA_VERSION,
    SEGMENT_SUFFIX_NPZ,
    SEGMENT_SUFFIX_V2,
    SYNOPSIS_VERSION,
    check_schema_version,
    compute_view_synopsis,
    load_segment_synopsis,
    load_view_columns,
    save_view_columns,
    write_segment_synopsis,
)
from repro.store.standing import StandingQuery, StandingQueryHandle
from repro.view.omega import OmegaGrid
from repro.view.sigma_cache import SigmaCache

__all__ = [
    "AppendResult",
    "Catalog",
    "RevisionFrontier",
    "SeriesHandle",
    "SeriesSnapshot",
]

_CATALOG_FILE = "catalog.json"
_SERIES_FILE = "series.json"
#: Segment layouts: "npz" (zipped archive, the original format) and "v2"
#: (uncompressed .npy-per-column directory, mmap-able).  Mixed layouts
#: within one series load transparently — the name's suffix decides.
_SEGMENT_FORMATS = {
    "npz": "seg-{:08d}" + SEGMENT_SUFFIX_NPZ,
    "v2": "seg-{:08d}" + SEGMENT_SUFFIX_V2,
}
_SEGMENT_RE = re.compile(r"^seg-(\d{8})(?:\.npz|\.v2)$")
_SERIES_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")

# Store-tier observability: segment materialisations and snapshot-memo
# traffic land on the process-wide default registry (repro.obs), so one
# metrics scrape sees I/O pressure alongside the query-tier latencies.
# Inside spawn-started worker processes these count into that process's
# own registry; the parent's numbers cover the shared read path.
_OBS_SEGMENT_READS = default_registry().counter(
    "repro_store_segment_reads_total",
    "Segment files materialised into views",
)
_OBS_VIEW_LOADS = default_registry().counter(
    "repro_store_view_loads_total",
    "Views materialised from segment lists (cache misses reach here)",
)
_OBS_SNAPSHOTS = default_registry().counter(
    "repro_store_snapshots_total",
    "Series snapshot requests by memo outcome",
)


def _remove_segment(directory: Path, name: str) -> None:
    """Delete one segment of either layout (file or directory)."""
    target = directory / name
    if target.is_dir():
        shutil.rmtree(target, ignore_errors=True)
    else:
        target.unlink(missing_ok=True)
        # An .npz segment may carry a synopsis sidecar; never orphan it.
        target.with_name(f"{name}.synopsis.json").unlink(missing_ok=True)


def _coerce_synopsis(payload: Any) -> dict[str, Any] | None:
    """``payload`` when it is a current-version synopsis, else None.

    Guards every read of ``series.json``'s ``synopses`` map: metadata
    edited by hand or written by a future build with a bumped
    :data:`~repro.store.binary.SYNOPSIS_VERSION` degrades to "no synopsis"
    (no pruning, lazy APPROX fallback) instead of wrong answers.
    """
    if (
        isinstance(payload, dict)
        and payload.get("version") == SYNOPSIS_VERSION
    ):
        return payload
    return None


def _coerce_revisions(
    payload: Any, segments: Sequence[str]
) -> tuple[dict[str, Any], ...]:
    """Normalise ``series.json``'s revision chain; drop malformed records.

    Mirrors :func:`_coerce_synopsis`: hand-edited or future-format records
    degrade to "not a revision" (the segment stays a base segment) instead
    of crashing reads or silently shadowing the wrong range.
    """
    records: list[dict[str, Any]] = []
    known = set(segments)
    if isinstance(payload, list):
        for record in payload:
            if not isinstance(record, dict):
                continue
            name = record.get("segment")
            try:
                knowledge = int(record["knowledge_time"])
                t_min = int(record["t_min"])
                t_max = int(record["t_max"])
            except (KeyError, TypeError, ValueError):
                continue
            if name in known and knowledge >= 1 and t_min <= t_max:
                records.append(
                    {
                        "segment": str(name),
                        "knowledge_time": knowledge,
                        "t_min": t_min,
                        "t_max": t_max,
                    }
                )
    return tuple(records)


def _merge_intervals(
    intervals: Sequence[tuple[int, int]],
) -> tuple[tuple[int, int], ...]:
    """Sorted, merged copy of closed integer intervals (adjacency coalesced)."""
    if not intervals:
        return ()
    merged: list[list[int]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1] + 1:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return tuple((lo, hi) for lo, hi in merged)


def _intervals_cover(
    intervals: Sequence[tuple[int, int]], lo: int, hi: int
) -> bool:
    """True when the merged ``intervals`` contain every integer in [lo, hi]."""
    for start, end in intervals:
        if start <= lo <= end:
            if end >= hi:
                return True
            lo = end + 1
    return False


def _next_segment_index(existing: list[str]) -> int:
    """First segment index after ``existing`` (indices never reused)."""
    indices = [
        int(match.group(1))
        for name in existing
        if (match := _SEGMENT_RE.match(name))
    ]
    return max(indices, default=0) + 1


def _pipeline_from_meta(meta: dict[str, Any], grid: OmegaGrid) -> OnlinePipeline:
    """Realise a series' metric/cache/window binding as a fresh pipeline.

    Shared between handle construction and :meth:`Catalog.create_series`,
    which runs it *before* registering anything so an unrealisable spec
    (unknown metric, H below the metric's minimum window, infeasible cache
    constraints) never lands on disk.
    """
    metric = create_metric(meta["metric"], **meta.get("metric_params", {}))
    cache = None
    cache_spec = meta.get("cache")
    if cache_spec is not None:
        cache = SigmaCache(
            grid,
            min_sigma=cache_spec["min_sigma"],
            max_sigma=cache_spec["max_sigma"],
            distance_constraint=cache_spec.get("distance"),
            memory_constraint=cache_spec.get("memory"),
        )
    return OnlinePipeline(metric, meta["H"], grid, cache, retain_history=False)


def _write_json_atomic(path: Path, payload: dict[str, Any]) -> None:
    """Write ``payload`` so readers never observe a half-written file.

    The leading-dot temp name cannot collide with a series directory
    (series ids must start with a letter or underscore).
    """
    tmp = path.with_name(f".{path.name}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _read_json(path: Path, what: str) -> dict[str, Any]:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise StoreError(f"{what} metadata missing: {path}") from None
    except json.JSONDecodeError as exc:
        raise StoreError(f"{what} metadata corrupt: {path}: {exc}") from exc
    check_schema_version(int(payload.get("schema_version", -1)), path)
    return payload


def _apply_shadow_mask(
    chunk: dict[str, np.ndarray], intervals: Sequence[tuple[int, int]]
) -> dict[str, np.ndarray]:
    """Drop the rows of ``chunk`` whose valid time falls in a shadow interval.

    Shadows cover whole valid-time instants, so masking removes complete
    per-time tuple groups — the surviving rows still satisfy the per-time
    mass invariant :meth:`ProbabilisticView.from_columns` re-validates.
    """
    t = chunk["t"]
    keep = np.ones(t.shape[0], dtype=bool)
    for lo, hi in intervals:
        keep &= (t < lo) | (t > hi)
    if keep.all():
        return chunk
    masked = {
        key: np.ascontiguousarray(chunk[key][keep])
        for key in ("t", "low", "high", "probability", "label_code")
    }
    masked["labels"] = chunk["labels"]
    return masked


def _load_view_from_segments(
    directory: Path,
    series_id: str,
    names: Sequence[str],
    *,
    mmap: bool = False,
    shadows: Sequence[Sequence[tuple[int, int]]] | None = None,
) -> ProbabilisticView:
    """Column-concatenate the named segment files into one view.

    Shared by the live :class:`SeriesHandle` read path and the read-only
    :class:`SeriesSnapshot` path, so both materialise bit-identical views
    from the same segment list.  ``mmap`` requests zero-copy reads for
    layout-v2 segments (``.npz`` segments fall back to a regular load);
    a single-segment series keeps the mapped columns as-is — the common
    bulk-ingested case pays no concatenation copy at all.

    ``shadows`` (aligned with ``names``) gives each segment the merged
    valid-time intervals that newer revisions override; rows at those
    times are dropped before concatenation (latest-wins reads).  ``None``
    or all-empty shadows take exactly the historical code path, keeping
    revision-free loads bit-identical.
    """
    if not names:
        return ProbabilisticView.from_columns(
            series_id,
            np.empty(0, dtype=np.int64),
            np.empty(0),
            np.empty(0),
            np.empty(0),
        )
    _OBS_VIEW_LOADS.inc()
    _OBS_SEGMENT_READS.inc(len(names))
    chunks = [
        load_view_columns(directory / name, mmap=mmap) for name in names
    ]
    if shadows is not None and any(shadows):
        chunks = [
            _apply_shadow_mask(chunk, intervals) if intervals else chunk
            for chunk, intervals in zip(chunks, shadows)
        ]
    if len(chunks) == 1:
        chunk = chunks[0]
        return ProbabilisticView.from_columns(
            series_id,
            chunk["t"],
            chunk["low"],
            chunk["high"],
            chunk["probability"],
            label_code=chunk["label_code"],
            label_pool=tuple(str(label) for label in chunk["labels"]),
        )
    pool: dict[str, int] = {}
    codes = []
    for chunk in chunks:
        labels = [str(label) for label in chunk["labels"]]
        remap = np.array(
            [pool.setdefault(label, len(pool)) for label in labels],
            dtype=np.int64,
        )
        codes.append(remap[chunk["label_code"]])
    return ProbabilisticView.from_columns(
        series_id,
        np.concatenate([chunk["t"] for chunk in chunks]),
        np.concatenate([chunk["low"] for chunk in chunks]),
        np.concatenate([chunk["high"] for chunk in chunks]),
        np.concatenate([chunk["probability"] for chunk in chunks]),
        label_code=np.concatenate(codes),
        label_pool=tuple(pool) if pool else ("",),
    )


@dataclass(frozen=True)
class RevisionFrontier:
    """The segments of one series visible at a given knowledge time.

    Produced by :meth:`SeriesSnapshot.as_of`.  ``segments`` keeps the
    stored order (so loads stay row-order stable); ``shadows`` aligns
    with it, giving each segment the merged valid-time intervals that
    strictly-newer visible revisions override (latest-wins) — rows at
    those times must not be read, pruned on, or counted into APPROX
    bounds.  Segments whose synopsis proves them fully shadowed are
    dropped from the frontier outright.

    ``token`` is the hashable cache discriminator threaded into
    :class:`~repro.service.cache.MatrixCache` keys: ``()`` on a series
    without revisions (so revision-free cache keys are bit-identical to
    the historical 4-field layout's semantics), otherwise
    ``("k", effective_knowledge)`` — every AS OF point between two
    revisions normalises to one token (they see identical data), while
    distinct frontiers never share warm cache entries.
    """

    segments: tuple[str, ...]
    shadows: tuple[tuple[tuple[int, int], ...], ...]
    synopses: tuple[dict[str, Any] | None, ...]
    token: tuple
    knowledge_time: int

    @property
    def masked(self) -> bool:
        """True when any visible segment carries a shadow interval."""
        return any(self.shadows)


def _resolve_frontier(
    segments: Sequence[str],
    synopses: Sequence[dict[str, Any] | None],
    revisions: Sequence[dict[str, Any]],
    knowledge_time: int | None,
) -> RevisionFrontier:
    """Resolve latest-wins segment visibility at ``knowledge_time``.

    Base segments (plain appends / static saves) carry implicit knowledge
    time 0; revision segments carry the recorded one.  ``None`` means
    "newest" — everything is visible.  A visible revision shadows its
    whole ``[t_min, t_max]`` valid-time range in every visible segment of
    strictly lower ``(knowledge_time, position)`` priority; position
    breaks ties so two revisions recorded at the same knowledge time
    resolve to the later one.  The shadow set is computed from the
    revision-chain metadata alone — no segment file is read.  Segments
    without a synopsis are never dropped, only masked (row-level masking
    is equally correct, just less skippable).
    """
    if not revisions:
        return RevisionFrontier(
            segments=tuple(segments),
            shadows=((),) * len(segments),
            synopses=tuple(synopses),
            token=(),
            knowledge_time=0,
        )
    by_name = {record["segment"]: record for record in revisions}
    visible: list[tuple[int, int, str, dict[str, Any] | None, Any]] = []
    effective = 0
    for index, name in enumerate(segments):
        record = by_name.get(name)
        knowledge = record["knowledge_time"] if record is not None else 0
        if knowledge_time is not None and knowledge > knowledge_time:
            continue
        effective = max(effective, knowledge)
        visible.append((knowledge, index, name, record, synopses[index]))
    out_names: list[str] = []
    out_shadows: list[tuple[tuple[int, int], ...]] = []
    out_synopses: list[dict[str, Any] | None] = []
    for knowledge, index, name, _record, synopsis in visible:
        merged = _merge_intervals(
            [
                (other["t_min"], other["t_max"])
                for other_k, other_i, _, other, _syn in visible
                if other is not None and (other_k, other_i) > (knowledge, index)
            ]
        )
        if (
            merged
            and synopsis is not None
            and synopsis.get("rows")
            and _intervals_cover(merged, synopsis["t_min"], synopsis["t_max"])
        ):
            continue  # Provably fully shadowed: not part of the frontier.
        out_names.append(name)
        out_shadows.append(merged)
        out_synopses.append(synopsis)
    return RevisionFrontier(
        segments=tuple(out_names),
        shadows=tuple(out_shadows),
        synopses=tuple(out_synopses),
        token=("k", effective),
        knowledge_time=effective,
    )


@dataclass(frozen=True)
class SeriesSnapshot:
    """A point-in-time, read-only capture of one series' stored state.

    Taken by :meth:`Catalog.snapshot` / :meth:`Catalog.open_many` from one
    atomic ``series.json`` read.  Segments named here are immutable once
    listed (appends only add new names, and every segment file is fully
    written before its name is flushed), so :meth:`load_view` is safe to
    call from any thread while a single writer keeps appending — the
    snapshot simply does not see rows landed after it was taken.
    """

    series_id: str
    directory: Path
    kind: str
    segments: tuple[str, ...]
    tuple_count: int
    next_t: int | None
    created: str = ""
    #: Per-segment zone-map synopses, aligned with ``segments``; None for
    #: segments written before synopses existed (see Catalog.synopsize).
    synopses: tuple[dict[str, Any] | None, ...] = ()
    #: Revision-chain records ({"segment", "knowledge_time", "t_min",
    #: "t_max"}), in recording order; empty for never-revised series.
    revisions: tuple[dict[str, Any], ...] = ()

    def segment_synopses(self) -> tuple[dict[str, Any] | None, ...]:
        """Synopses aligned with ``segments`` (padded when metadata is short)."""
        if len(self.synopses) == len(self.segments):
            return self.synopses
        padded = list(self.synopses[: len(self.segments)])
        padded.extend([None] * (len(self.segments) - len(padded)))
        return tuple(padded)

    @property
    def generation(self) -> tuple[str, int, int, str]:
        """Cache token: changes whenever the stored view's contents change.

        Appends grow the segment list and a static re-save changes the
        last segment's name; ``created`` (a per-creation nonce) breaks the
        remaining collision — dropping a series and recreating it under
        the same id restarts segment numbering, so segment names alone
        could repeat across the two incarnations.
        """
        last = self.segments[-1] if self.segments else ""
        return (self.created, len(self.segments), self.tuple_count, last)

    @property
    def has_revisions(self) -> bool:
        """True when the series has ever been revised (re-forecasted)."""
        return bool(self.revisions)

    def knowledge_times(self) -> tuple[int, ...]:
        """Distinct knowledge times, ascending, starting at the base 0."""
        return tuple(
            sorted(
                {0, *(record["knowledge_time"] for record in self.revisions)}
            )
        )

    def as_of(self, knowledge_time: int | None = None) -> RevisionFrontier:
        """Latest-wins segment visibility at ``knowledge_time``.

        ``None`` means "newest": every recorded revision applies.  An
        integer replays the past — only segments whose knowledge time is
        at or before it are visible, each masked by the revisions *then*
        known.  On a never-revised series every knowledge time returns
        the full segment list with an empty ``token`` (the fast path).
        """
        if knowledge_time is not None:
            knowledge_time = int(knowledge_time)
            if knowledge_time < 0:
                raise QueryError(
                    f"AS OF knowledge time must be >= 0, "
                    f"got {knowledge_time}"
                )
        return _resolve_frontier(
            self.segments,
            self.segment_synopses(),
            self.revisions,
            knowledge_time,
        )

    def load_view(
        self, *, mmap: bool = False, as_of: int | None = None
    ) -> ProbabilisticView:
        """Materialise the captured view (all captured segments).

        ``mmap=True`` memory-maps layout-v2 segments read-only instead of
        copying them into fresh arrays — reader processes then share page
        cache.  ``.npz`` segments fall back to a regular load.

        ``as_of`` replays the series as known at that knowledge time; the
        default materialises the newest frontier (on a revised series,
        shadowed rows are dropped — latest wins).  Never-revised series
        take the historical bit-identical path.
        """
        if as_of is None and not self.revisions:
            return _load_view_from_segments(
                self.directory, self.series_id, self.segments, mmap=mmap
            )
        frontier = self.as_of(as_of)
        return _load_view_from_segments(
            self.directory,
            self.series_id,
            frontier.segments,
            mmap=mmap,
            shadows=frontier.shadows,
        )


@dataclass
class AppendResult:
    """What one micro-batch append produced.

    ``fed`` values entered the series; ``emitted`` view rows (times) became
    part of the stored view — fewer than ``fed`` while the window warms up.
    ``deltas`` pairs each registered standing query with the newly
    answerable results this append unlocked for it.
    """

    series_id: str
    fed: int
    emitted: int
    times: list[int] = field(default_factory=list)
    deltas: list[tuple[StandingQueryHandle, Any]] = field(default_factory=list)


class SeriesHandle:
    """One catalog series: its pipeline, its segments, its standing queries.

    Obtained via :meth:`Catalog.series` / :meth:`Catalog.create_series`;
    all mutation goes through the handle so in-memory state (pipeline
    position, cached view, standing-query state) stays consistent with the
    directory it mirrors.
    """

    def __init__(self, catalog: "Catalog", series_id: str) -> None:
        self.catalog = catalog
        self.series_id = series_id
        self.directory = catalog.root / series_id
        self._meta = _read_json(self.directory / _SERIES_FILE, "series")
        self._queries: list[StandingQueryHandle] = []
        self._view_cache: ProbabilisticView | None = None
        # Built on first ingestion use: read paths (list/describe/view)
        # must not pay for metric construction or cache population.
        self._pipeline: OnlinePipeline | None = None
        self._closed = False  # Set when the series is dropped or replaced.
        self._poisoned = False  # Set when an append died mid-transaction.

    def _check_open(self) -> None:
        if self._poisoned:
            raise StoreError(
                f"series {self.series_id!r} handle is stale: a previous "
                "append failed between feeding the pipeline and flushing "
                "series.json; re-open the catalog to resume from the last "
                "durable state"
            )
        if self._closed:
            raise StoreError(
                f"series {self.series_id!r} was dropped or replaced; "
                "re-fetch the handle via Catalog.series()"
            )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def is_dynamic(self) -> bool:
        """True when the series ingests values (vs a statically saved view)."""
        return self._meta["kind"] == "dynamic"

    @property
    def grid(self) -> OmegaGrid | None:
        spec = self._meta.get("grid")
        if spec is None:
            return None
        return OmegaGrid(delta=spec["delta"], n=spec["n"])

    @property
    def next_t(self) -> int | None:
        """Index the next appended value will receive (dynamic series)."""
        return self._meta.get("next_t")

    @property
    def tuple_count(self) -> int:
        return int(self._meta.get("tuple_count", 0))

    @property
    def segment_names(self) -> list[str]:
        return list(self._meta.get("segments", []))

    def describe(self) -> dict[str, Any]:
        """Summary used by ``repro store list``."""
        out = {
            "series": self.series_id,
            "kind": self._meta["kind"],
            "tuples": self.tuple_count,
            "segments": len(self.segment_names),
        }
        if self.is_dynamic:
            out["metric"] = self._meta["metric"]
            out["H"] = self._meta["H"]
            out["next_t"] = self.next_t
        return out

    # ------------------------------------------------------------------
    # Pipeline plumbing.
    # ------------------------------------------------------------------
    def _ensure_pipeline(self) -> OnlinePipeline:
        if self._pipeline is None:
            grid = self.grid
            assert grid is not None
            pipeline = _pipeline_from_meta(self._meta, grid)
            pipeline.load_state(
                np.array(self._meta["window"], dtype=float),
                self._meta["next_t"],
            )
            self._pipeline = pipeline
        return self._pipeline

    @property
    def sigma_cache(self) -> SigmaCache | None:
        """The series' sigma-cache, shared across every append."""
        if not self.is_dynamic:
            return None
        return self._ensure_pipeline().builder.cache

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------
    def append(self, values: np.ndarray) -> AppendResult:
        """Ingest one micro-batch; extend the stored view incrementally.

        Compute cost scales with the batch (inference + one segment write
        + the standing-query suffix updates), not with the rows already
        stored.  The ``series.json`` flush does rewrite the segment *list*,
        which grows by one name per append — size micro-batches accordingly
        (tens of values or more) rather than appending value by value.
        """
        self._check_open()
        if not self.is_dynamic:
            raise QueryError(
                f"series {self.series_id!r} holds a statically saved view "
                "and cannot be appended to"
            )
        pipeline = self._ensure_pipeline()
        values = np.ascontiguousarray(values, dtype=float)
        if values.ndim != 1:
            raise InvalidParameterError(
                f"append expects a 1-d value array, got shape {values.shape}"
            )
        matrix = pipeline.feed_batch(values)
        result = AppendResult(
            series_id=self.series_id, fed=int(values.size), emitted=len(matrix)
        )
        # The pipeline has consumed the batch; from here to the metadata
        # flush the handle is mid-transaction.  A failure leaves disk at the
        # last durable state (at worst plus an orphan segment that the next
        # resumed append overwrites), but the in-memory pipeline is ahead of
        # it — poison the handle so the caller cannot double-feed, and make
        # Catalog.series() hand out a fresh handle read back from disk.
        try:
            suffix: ProbabilisticView | None = None
            if len(matrix):
                grid = self.grid
                assert grid is not None
                suffix = ProbabilisticView.from_matrix(
                    f"{self.series_id}@t{int(matrix.t[0])}", matrix, grid
                )
                self._write_segment(suffix)
                result.times = suffix.times
                self._view_cache = None  # Warm-up appends keep the view.
            # Resume state moves even during pure warm-up appends.
            self._meta["next_t"] = pipeline.t
            self._meta["window"] = pipeline.window_values.tolist()
            self._flush_meta()
        except BaseException:
            self._poisoned = True
            self.catalog._handles.pop(self.series_id, None)
            raise
        if suffix is not None:
            for handle in self._queries:
                result.deltas.append((handle, handle.update(suffix)))
        return result

    def _write_segment(self, suffix: ProbabilisticView) -> str:
        # The persisted counter keeps per-append naming O(1); metadata
        # written before the counter existed falls back to a name scan.
        index = self._meta.get("next_segment")
        if index is None:
            index = _next_segment_index(self.segment_names)
        layout = self._meta.get("layout", "npz")
        if layout not in _SEGMENT_FORMATS:
            raise StoreError(
                f"series {self.series_id!r} metadata records unknown "
                f"segment layout {layout!r}; this build writes "
                f"{sorted(_SEGMENT_FORMATS)}"
            )
        name = _SEGMENT_FORMATS[layout].format(index)
        cols = suffix.columns
        synopsis = save_view_columns(
            self.directory / name,
            t=cols.t,
            low=cols.low,
            high=cols.high,
            probability=cols.probability,
            label_code=cols.label_code,
            labels=cols.labels,
        )
        self._meta.setdefault("segments", []).append(name)
        # Appends keep the per-segment synopsis map incrementally up to
        # date: the planner reads it from the snapshot without touching
        # any segment file.
        self._meta.setdefault("synopses", {})[name] = synopsis
        self._meta["next_segment"] = index + 1
        self._meta["tuple_count"] = self.tuple_count + len(suffix)
        return name

    # ------------------------------------------------------------------
    # Revisions (time-of-knowledge).
    # ------------------------------------------------------------------
    def revise(
        self,
        view: ProbabilisticView,
        *,
        knowledge_time: int | None = None,
    ) -> dict[str, Any]:
        """Record a re-forecast of an already-covered valid-time range.

        Plain appends only ever *extend* a series at ``next_t``; a
        revision instead overlays ``view``'s rows over whatever the
        series previously said about those valid times.  The old rows
        stay on disk — reads resolve latest-wins per time instant, and
        ``AS OF <knowledge_time>`` replays what was known before the
        revision landed (:meth:`SeriesSnapshot.as_of`).

        ``knowledge_time`` stamps *when this was learned*: caller-supplied
        (any int >= 1, non-decreasing across revisions) or the series'
        monotonic counter.  Base segments carry implicit knowledge time 0.
        Works for dynamic and static series alike — the pipeline position
        (``next_t``, window) is untouched, so ingestion resumes exactly
        where it left off.  Standing queries are incremental over append
        suffixes and do **not** observe revisions; re-register after
        revising if a standing result must reflect them.

        Returns the recorded revision-chain entry.
        """
        self._check_open()
        if not len(view):
            raise InvalidParameterError(
                "a revision needs at least one tuple"
            )
        revisions = self._meta.setdefault("revisions", [])
        last = revisions[-1]["knowledge_time"] if revisions else 0
        if knowledge_time is None:
            knowledge_time = max(
                int(self._meta.get("next_knowledge", 1)), last + 1
            )
        else:
            knowledge_time = int(knowledge_time)
            if knowledge_time < 1:
                raise InvalidParameterError(
                    f"knowledge_time must be >= 1 (0 is the base "
                    f"segments' implicit knowledge time), "
                    f"got {knowledge_time}"
                )
            if knowledge_time < last:
                raise InvalidParameterError(
                    f"knowledge_time must not decrease: the last "
                    f"recorded revision is at {last}, got {knowledge_time}"
                )
        cols = view.columns
        record = {
            "segment": "",
            "knowledge_time": knowledge_time,
            "t_min": int(cols.t.min()),
            "t_max": int(cols.t.max()),
        }
        # Same mid-transaction discipline as append: a failure between the
        # segment write and the metadata flush poisons the handle, and the
        # orphan segment is ignored on reopen.
        try:
            record["segment"] = self._write_segment(view)
            revisions.append(record)
            self._meta["next_knowledge"] = knowledge_time + 1
            self._flush_meta()
        except BaseException:
            self._poisoned = True
            self.catalog._handles.pop(self.series_id, None)
            raise
        self._view_cache = None
        return record

    def _flush_meta(self) -> None:
        _write_json_atomic(self.directory / _SERIES_FILE, self._meta)

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    def view(self) -> ProbabilisticView:
        """Materialise the stored view (all segments, column-concatenated).

        Cached until the next append; the append path itself never calls
        this, so ingesting stays O(batch).
        """
        self._check_open()
        if self._view_cache is None:
            self._view_cache = self._load_segments()
        return self._view_cache

    def _load_segments(self) -> ProbabilisticView:
        names = self.segment_names
        revisions = _coerce_revisions(self._meta.get("revisions"), names)
        if not revisions:
            return _load_view_from_segments(
                self.directory, self.series_id, names
            )
        synopses_map = self._meta.get("synopses") or {}
        frontier = _resolve_frontier(
            names,
            [_coerce_synopsis(synopses_map.get(name)) for name in names],
            revisions,
            None,
        )
        return _load_view_from_segments(
            self.directory,
            self.series_id,
            frontier.segments,
            shadows=frontier.shadows,
        )

    # ------------------------------------------------------------------
    # Standing queries.
    # ------------------------------------------------------------------
    def register_query(self, query: StandingQuery) -> StandingQueryHandle:
        """Attach a standing query; replays the already-stored view once.

        The replay seeds the incremental state so ``result()`` covers the
        full series from the first call, and every subsequent append only
        touches the new suffix.
        """
        self._check_open()
        handle = StandingQueryHandle(query)
        existing = self.view()
        if len(existing):
            handle.update(existing)
        self._queries.append(handle)
        return handle

    def queries(self) -> list[StandingQueryHandle]:
        return list(self._queries)

    def __repr__(self) -> str:
        return (
            f"SeriesHandle({self.series_id!r}, kind={self._meta['kind']!r}, "
            f"tuples={self.tuple_count}, segments={len(self.segment_names)})"
        )


class Catalog:
    """A directory of persisted probabilistic views with streaming appends.

    Examples
    --------
    >>> import tempfile
    >>> root = tempfile.mkdtemp()
    >>> catalog = Catalog(root)
    >>> handle = catalog.create_series(
    ...     "room", metric="variable_threshold", H=20,
    ...     grid=OmegaGrid(delta=0.5, n=4))
    >>> result = catalog.append("room", [20.0 + 0.01 * i for i in range(30)])
    >>> (result.fed, result.emitted)
    (30, 10)
    >>> len(Catalog(root).view("room"))       # survives a reopen
    40
    """

    def __init__(
        self,
        root: str | Path,
        *,
        create: bool = True,
        segment_layout: str | None = None,
    ) -> None:
        if (
            segment_layout is not None
            and segment_layout not in _SEGMENT_FORMATS
        ):
            raise InvalidParameterError(
                f"segment_layout must be one of "
                f"{sorted(_SEGMENT_FORMATS)}, got {segment_layout!r}"
            )
        self.root = Path(root)
        manifest = self.root / _CATALOG_FILE
        if manifest.exists():
            self._manifest = _read_json(manifest, "catalog")
            # The manifest remembers the catalog's layout, so a plain
            # Catalog(root) reopen keeps writing what the creator chose;
            # an explicit argument overrides for this instance's writes.
            recorded = self._manifest.get("segment_layout")
            if recorded is not None and recorded not in _SEGMENT_FORMATS:
                raise StoreError(
                    f"catalog manifest {manifest} records unknown "
                    f"segment_layout {recorded!r}; this build writes "
                    f"{sorted(_SEGMENT_FORMATS)}"
                )
            self.segment_layout = segment_layout or recorded or "npz"
        elif create:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise StoreError(
                    f"cannot create catalog directory {self.root}: {exc}"
                ) from exc
            self.segment_layout = segment_layout or "npz"
            self._manifest = {
                "schema_version": SCHEMA_VERSION,
                "segment_layout": self.segment_layout,
                # Segment synopses this catalog's writers produce; older
                # catalogs lack the key until `store synopsize` backfills.
                "synopsis_version": SYNOPSIS_VERSION,
                "series": [],
            }
            self._flush_manifest()
        else:
            raise StoreError(f"no catalog at {self.root}")
        self._handles: dict[str, SeriesHandle] = {}
        # Snapshot reuse: repeated reads of an unchanged series.json (every
        # statement a query server executes re-plans its fan-out) skip the
        # JSON parse.  Guarded by a lock because a server plans statements
        # from several executor threads against one shared Catalog.
        self._snapshot_lock = threading.Lock()
        self._snapshot_cache: dict[str, tuple[tuple, SeriesSnapshot]] = {}
        self._snapshot_hits = 0
        self._snapshot_misses = 0

    def _flush_manifest(self) -> None:
        _write_json_atomic(self.root / _CATALOG_FILE, self._manifest)

    def _reload_manifest(self) -> None:
        """Re-read ``catalog.json`` so mutations see on-disk reality.

        Another :class:`Catalog` instance on the same root (e.g. the one a
        ``PERSIST INTO`` clause opens) may have registered or dropped
        series since this instance loaded; every read-modify-write of the
        manifest starts from the current file instead of the cached copy.
        Concurrent *writers* are still the caller's problem (single-writer
        service assumed), but instances no longer delist each other's
        series.
        """
        manifest = self.root / _CATALOG_FILE
        if manifest.exists():
            self._manifest = _read_json(manifest, "catalog")

    # ------------------------------------------------------------------
    # Series lifecycle.
    # ------------------------------------------------------------------
    def list_series(self) -> list[str]:
        return sorted(self._manifest["series"])

    def __contains__(self, series_id: str) -> bool:
        return series_id in self._manifest["series"]

    def select_series(self, pattern: str = "*") -> list[str]:
        """Series ids matching a shell-style glob, sorted.

        ``*``/``?``/``[...]`` match as in :mod:`fnmatch` (case-sensitive);
        the manifest is re-read first so selection sees on-disk reality.
        """
        self._reload_manifest()
        return sorted(
            series_id
            for series_id in self._manifest["series"]
            if fnmatchcase(series_id, pattern)
        )

    def snapshot(self, series_id: str) -> SeriesSnapshot:
        """A read-only point-in-time capture of one series.

        One atomic ``series.json`` read; no pipeline, no metric, no handle
        caching — the cheap path for query fan-out.  The returned snapshot
        stays loadable while a writer appends (segments are immutable once
        listed); it simply will not include rows landed after the capture.

        Snapshots are memoised against the metadata file's stat identity
        (mtime, size, inode): re-snapshotting an unchanged series — every
        repeated statement through a long-lived service or server does —
        returns the cached immutable capture without re-reading the file.
        Any append rewrites ``series.json`` atomically (new inode), so a
        stale capture can never be served once the write is durable.
        """
        if series_id not in self:
            self._reload_manifest()
        if series_id not in self:
            raise QueryError(
                f"unknown series {series_id!r}; stored: {self.list_series()}"
            )
        directory = self.root / series_id
        token: tuple | None = None
        try:
            stat = (directory / _SERIES_FILE).stat()
            token = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
        except OSError:
            pass  # Missing metadata: fall through to _read_json's error.
        if token is not None:
            with self._snapshot_lock:
                cached = self._snapshot_cache.get(series_id)
                if cached is not None and cached[0] == token:
                    self._snapshot_hits += 1
                    _OBS_SNAPSHOTS.inc(outcome="hit")
                    return cached[1]
        snapshot = self._read_snapshot(series_id, directory)
        _OBS_SNAPSHOTS.inc(outcome="miss")
        if token is not None:
            with self._snapshot_lock:
                self._snapshot_misses += 1
                self._snapshot_cache[series_id] = (token, snapshot)
        return snapshot

    def snapshot_cache_info(self) -> tuple[int, int]:
        """``(hits, misses)`` of the snapshot memo — observability hook."""
        with self._snapshot_lock:
            return self._snapshot_hits, self._snapshot_misses

    def _drop_snapshot(self, series_id: str) -> None:
        with self._snapshot_lock:
            self._snapshot_cache.pop(series_id, None)

    def _read_snapshot(
        self, series_id: str, directory: Path
    ) -> SeriesSnapshot:
        meta = _read_json(directory / _SERIES_FILE, "series")
        segments = tuple(meta.get("segments", ()))
        synopses_map = meta.get("synopses") or {}
        return SeriesSnapshot(
            series_id=series_id,
            directory=directory,
            kind=meta["kind"],
            segments=segments,
            tuple_count=int(meta.get("tuple_count", 0)),
            next_t=meta.get("next_t"),
            created=str(meta.get("created", "")),
            synopses=tuple(
                _coerce_synopsis(synopses_map.get(name)) for name in segments
            ),
            revisions=_coerce_revisions(meta.get("revisions"), segments),
        )

    def open_many(self, pattern: str = "*") -> list[SeriesSnapshot]:
        """Snapshot every series matching ``pattern``, sorted by id.

        The set-oriented read entry point :mod:`repro.service` plans over.
        Raises :class:`~repro.exceptions.QueryError` when nothing matches,
        so a typo'd pattern fails loudly instead of returning zero rows.
        """
        ids = self.select_series(pattern)
        if not ids:
            raise QueryError(
                f"no series matches pattern {pattern!r}; "
                f"stored: {self.list_series()}"
            )
        return [self.snapshot(series_id) for series_id in ids]

    def create_series(
        self,
        series_id: str,
        *,
        metric: str,
        H: int,
        grid: OmegaGrid,
        metric_params: dict[str, Any] | None = None,
        cache_min_sigma: float | None = None,
        cache_max_sigma: float | None = None,
        cache_distance: float | None = None,
        cache_memory: int | None = None,
    ) -> SeriesHandle:
        """Register a new dynamic series bound to ``metric`` and ``grid``.

        ``metric`` is a registry name (``METRIC`` clause vocabulary) so the
        binding survives restarts.  The optional ``cache_*`` parameters
        pre-size a sigma-cache from expected volatility extremes — online
        mode cannot derive them from a WHERE clause — and the same cache
        instance then serves every subsequent append.
        """
        self._reload_manifest()
        self._check_new_id(series_id)
        cache_spec = None
        cache_given = [
            value is not None
            for value in (cache_min_sigma, cache_max_sigma,
                          cache_distance, cache_memory)
        ]
        if any(cache_given):
            if cache_min_sigma is None or cache_max_sigma is None:
                raise InvalidParameterError(
                    "a series cache needs cache_min_sigma and cache_max_sigma"
                )
            if cache_distance is None and cache_memory is None:
                raise InvalidParameterError(
                    "a series cache needs cache_distance and/or cache_memory"
                )
            cache_spec = {
                "min_sigma": float(cache_min_sigma),
                "max_sigma": float(cache_max_sigma),
                "distance": cache_distance,
                "memory": cache_memory,
            }
        meta = {
            "schema_version": SCHEMA_VERSION,
            "kind": "dynamic",
            # Per-creation nonce: distinguishes incarnations of a reused
            # series id (drop + recreate restarts segment numbering, so
            # names alone cannot identify cached contents).
            "created": uuid.uuid4().hex,
            "metric": str(metric),
            "metric_params": dict(metric_params or {}),
            "H": int(H),
            "grid": {"delta": grid.delta, "n": grid.n},
            "cache": cache_spec,
            # New appends write this layout; existing segments of either
            # layout keep loading by name.
            "layout": self.segment_layout,
            "next_t": 0,
            "window": [],
            "segments": [],
            "next_segment": 1,
            "tuple_count": 0,
        }
        # Fail before anything lands on disk if the spec cannot be
        # realised (unknown metric, H < min_window, infeasible cache).
        _pipeline_from_meta(meta, grid)
        return self._register(series_id, meta)

    def save_view(self, series_id: str, view: ProbabilisticView) -> SeriesHandle:
        """Persist an already-built view as a static series.

        This is the ``CREATE VIEW ... PERSIST INTO`` target: the SQL engine
        materialises the view offline, and the catalog stores its columns
        as a single segment.  Replaces an existing series of the same name,
        mirroring ``Database`` view registration semantics — the new data
        is written *before* the atomic ``series.json`` cutover, so a crash
        mid-replace leaves the old view intact (plus at worst an ignored
        orphan segment).
        """
        self._reload_manifest()
        exists = series_id in self
        if not exists:
            self._check_new_id(series_id)
        directory = self.root / series_id
        old_segments: list[str] = []
        if exists:
            self._invalidate_handle(series_id)
            old_meta = _read_json(directory / _SERIES_FILE, "series")
            old_segments = list(old_meta.get("segments", []))
        directory.mkdir(parents=True, exist_ok=True)
        index = _next_segment_index(old_segments)
        meta: dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "kind": "static",
            "created": uuid.uuid4().hex,
            "grid": None,
            "layout": self.segment_layout,
            "segments": [],
            "next_segment": index,
            "tuple_count": 0,
        }
        if len(view):
            name = _SEGMENT_FORMATS[self.segment_layout].format(index)
            cols = view.columns
            synopsis = save_view_columns(
                directory / name,
                t=cols.t,
                low=cols.low,
                high=cols.high,
                probability=cols.probability,
                label_code=cols.label_code,
                labels=cols.labels,
            )
            meta["segments"] = [name]
            meta["synopses"] = {name: synopsis}
            meta["next_segment"] = index + 1
            meta["tuple_count"] = len(view)
        _write_json_atomic(directory / _SERIES_FILE, meta)  # The cutover.
        for name in old_segments:
            if name not in meta["segments"]:
                _remove_segment(directory, name)
        if not exists:
            self._manifest["series"].append(series_id)
            self._flush_manifest()
        handle = SeriesHandle(self, series_id)
        self._handles[series_id] = handle
        return handle

    def _check_new_id(self, series_id: str) -> None:
        if not _SERIES_ID_RE.match(series_id or ""):
            raise InvalidParameterError(
                f"series id {series_id!r} must match {_SERIES_ID_RE.pattern}"
            )
        if series_id == _CATALOG_FILE:
            raise InvalidParameterError(
                f"series id {series_id!r} is reserved for the catalog manifest"
            )
        if series_id in self:
            raise StoreError(f"series {series_id!r} already exists")

    def _register(self, series_id: str, meta: dict[str, Any]) -> SeriesHandle:
        directory = self.root / series_id
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot create series directory {directory}: {exc}"
            ) from exc
        _write_json_atomic(directory / _SERIES_FILE, meta)
        self._manifest["series"].append(series_id)
        self._flush_manifest()
        handle = SeriesHandle(self, series_id)
        self._handles[series_id] = handle
        return handle

    def series(self, series_id: str) -> SeriesHandle:
        """The handle for ``series_id`` (loaded lazily, cached)."""
        if series_id not in self:
            self._reload_manifest()  # Another instance may have added it.
        if series_id not in self:
            raise QueryError(
                f"unknown series {series_id!r}; stored: {self.list_series()}"
            )
        if series_id not in self._handles:
            self._handles[series_id] = SeriesHandle(self, series_id)
        return self._handles[series_id]

    def drop_series(self, series_id: str) -> None:
        """Remove a series and delete its directory.

        Works directly on the metadata files — never through a live
        handle — so a series whose binding can no longer be realised
        (e.g. its metric was unregistered) can still be dropped.
        """
        self._reload_manifest()
        if series_id not in self:
            raise QueryError(
                f"unknown series {series_id!r}; stored: {self.list_series()}"
            )
        directory = self.root / series_id
        try:
            meta = _read_json(directory / _SERIES_FILE, "series")
            segments = list(meta.get("segments", []))
        except StoreError:
            segments = []  # Metadata already gone/corrupt: best effort.
        for name in segments:
            _remove_segment(directory, name)
        (directory / _SERIES_FILE).unlink(missing_ok=True)
        try:
            directory.rmdir()
        except OSError:
            pass  # Foreign files in the directory: leave them.
        self._manifest["series"].remove(series_id)
        self._flush_manifest()
        self._invalidate_handle(series_id)

    def _invalidate_handle(self, series_id: str) -> None:
        handle = self._handles.pop(series_id, None)
        if handle is not None:
            handle._closed = True
        self._drop_snapshot(series_id)

    # ------------------------------------------------------------------
    # Synopsis maintenance.
    # ------------------------------------------------------------------
    def synopsize(self, pattern: str = "*") -> dict[str, int]:
        """Backfill zone-map synopses for segments written before this build.

        Walks every series matching ``pattern``; for each segment without
        a current-version synopsis, reads the stored synopsis (layout-v2
        ``meta.json`` / ``.npz`` sidecar) or — for segments predating
        synopses entirely — loads the columns once, computes it, and
        persists it both with the segment and in ``series.json``.  Fresh
        catalogs are no-ops; re-running is idempotent.  Returns the number
        of segments backfilled per series id.

        Old catalogs work *without* this (exact queries simply prune
        nothing; APPROX computes synopses lazily in memory) — backfilling
        makes the speedup durable.
        """
        updated: dict[str, int] = {}
        for series_id in self.select_series(pattern):
            directory = self.root / series_id
            meta = _read_json(directory / _SERIES_FILE, "series")
            synopses = meta.setdefault("synopses", {})
            backfilled = 0
            for name in meta.get("segments", []):
                if _coerce_synopsis(synopses.get(name)) is not None:
                    continue
                synopsis = load_segment_synopsis(directory / name)
                if synopsis is None:
                    columns = load_view_columns(directory / name)
                    synopsis = compute_view_synopsis(
                        columns["t"],
                        columns["low"],
                        columns["high"],
                        columns["probability"],
                    )
                    write_segment_synopsis(directory / name, synopsis)
                synopses[name] = synopsis
                backfilled += 1
            if backfilled:
                _write_json_atomic(directory / _SERIES_FILE, meta)
                self._drop_snapshot(series_id)
                # A live handle caches series.json; keep its copy in step
                # so a later append's metadata flush cannot drop the
                # freshly backfilled synopses.
                handle = self._handles.get(series_id)
                if handle is not None and not handle._closed:
                    handle._meta.setdefault("synopses", {}).update(synopses)
            updated[series_id] = backfilled
        if self._manifest.get("synopsis_version") != SYNOPSIS_VERSION:
            self._manifest["synopsis_version"] = SYNOPSIS_VERSION
            self._flush_manifest()
        return updated

    # ------------------------------------------------------------------
    # Convenience pass-throughs.
    # ------------------------------------------------------------------
    def append(self, series_id: str, values: Any) -> AppendResult:
        """Micro-batch ingest into ``series_id`` (see :meth:`SeriesHandle.append`)."""
        return self.series(series_id).append(np.asarray(values, dtype=float))

    def revise(
        self,
        series_id: str,
        view: ProbabilisticView,
        *,
        knowledge_time: int | None = None,
    ) -> dict[str, Any]:
        """Overlay a re-forecast (see :meth:`SeriesHandle.revise`)."""
        return self.series(series_id).revise(
            view, knowledge_time=knowledge_time
        )

    def replay(
        self,
        series_id: str,
        *,
        knowledge_times: Sequence[int] | None = None,
        mmap: bool = False,
    ) -> list[tuple[int, ProbabilisticView]]:
        """Materialise the series as it was known at each knowledge time.

        The backtest-replay primitive: each returned ``(knowledge_time,
        view)`` pair is exactly what a query at ``AS OF knowledge_time``
        reads — feed the views to the online pipeline (or any consumer)
        to reproduce decisions made with only the information available
        at each step.  ``knowledge_times`` defaults to every distinct
        recorded knowledge time, ascending, starting at the base 0.
        """
        snapshot = self.snapshot(series_id)
        if knowledge_times is None:
            knowledge_times = snapshot.knowledge_times()
        return [
            (int(knowledge), snapshot.load_view(mmap=mmap, as_of=knowledge))
            for knowledge in knowledge_times
        ]

    def view(self, series_id: str) -> ProbabilisticView:
        """The stored view of ``series_id``."""
        return self.series(series_id).view()

    def register_query(
        self, series_id: str, query: StandingQuery
    ) -> StandingQueryHandle:
        """Register a standing query against ``series_id``."""
        return self.series(series_id).register_query(query)

    def __repr__(self) -> str:
        return f"Catalog(root={str(self.root)!r}, series={self.list_series()})"
