"""An in-memory B-tree sorted map.

The paper stores the pre-computed sigma-cache distributions "in a sorted
container like a B-tree along with key ``d_s^q * min(sigma)``" (Section VI-B,
Fig. 9).  This module provides that container: a classic B-tree keyed by
floats (any totally ordered type works) supporting insertion, exact lookup,
and the *floor*/*ceiling* searches the cache needs to find the cached
distribution whose standard deviation lies just below a queried one.

The implementation is a textbook B-tree of minimum degree ``t`` (every node
except the root holds between ``t - 1`` and ``2t - 1`` keys) with iterative
descent for searches and the standard single-pass split-on-the-way-down
insertion, so no parent pointers are required.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.exceptions import InvalidParameterError

__all__ = ["BTreeMap"]


class _Node:
    """One B-tree node: sorted ``keys`` with parallel ``values``.

    ``children`` is empty for leaves and has ``len(keys) + 1`` entries for
    internal nodes.
    """

    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTreeMap:
    """A sorted map backed by a B-tree.

    Parameters
    ----------
    min_degree:
        The B-tree minimum degree ``t >= 2``.  Nodes hold at most
        ``2 * t - 1`` keys.  The default of 16 keeps the tree shallow for the
        few thousand keys a sigma-cache stores while exercising real splits
        in the unit tests.

    Examples
    --------
    >>> tree = BTreeMap()
    >>> tree[2.0] = "a"
    >>> tree[5.0] = "b"
    >>> tree.floor_item(4.9)
    (2.0, 'a')
    >>> tree.ceiling_item(2.1)
    (5.0, 'b')
    """

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise InvalidParameterError(
                f"min_degree must be >= 2, got {min_degree!r}"
            )
        self._t = int(min_degree)
        self._root = _Node()
        self._size = 0

    # ------------------------------------------------------------------
    # Size / containment.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        node = self._root
        while True:
            index = _bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return node.values[index]
            if node.is_leaf:
                return default
            node = node.children[index]

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def floor_item(self, key: Any) -> tuple[Any, Any] | None:
        """Return the ``(key, value)`` pair with the greatest key ``<= key``.

        Returns ``None`` when every stored key exceeds ``key``.  This is the
        lookup the sigma-cache performs: find the cached distribution whose
        standard deviation is the largest one not above the queried sigma.
        """
        best: tuple[Any, Any] | None = None
        node = self._root
        while True:
            index = _bisect_right(node.keys, key)
            if index > 0:
                best = (node.keys[index - 1], node.values[index - 1])
                if node.keys[index - 1] == key:
                    return best
            if node.is_leaf:
                return best
            node = node.children[index]

    def ceiling_item(self, key: Any) -> tuple[Any, Any] | None:
        """Return the ``(key, value)`` pair with the smallest key ``>= key``."""
        best: tuple[Any, Any] | None = None
        node = self._root
        while True:
            index = _bisect_left(node.keys, key)
            if index < len(node.keys):
                best = (node.keys[index], node.values[index])
                if node.keys[index] == key:
                    return best
            if node.is_leaf:
                return best
            node = node.children[index]

    def min_item(self) -> tuple[Any, Any]:
        """Return the smallest ``(key, value)`` pair.

        Raises ``KeyError`` on an empty tree.
        """
        if not self._size:
            raise KeyError("min_item() on empty BTreeMap")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    def max_item(self) -> tuple[Any, Any]:
        """Return the largest ``(key, value)`` pair.

        Raises ``KeyError`` on an empty tree.
        """
        if not self._size:
            raise KeyError("max_item() on empty BTreeMap")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    # ------------------------------------------------------------------
    # Insertion.
    # ------------------------------------------------------------------
    def __setitem__(self, key: Any, value: Any) -> None:
        """Insert ``key -> value``, replacing any existing binding."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        """Split the full child ``parent.children[index]`` in two."""
        t = self._t
        child = parent.children[index]
        sibling = _Node()
        # Median key moves up into the parent.
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            index = _bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value  # Replace existing binding.
                return
            if node.is_leaf:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                self._size += 1
                return
            child = node.children[index]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, index)
                if node.keys[index] == key:
                    node.values[index] = value
                    return
                if key > node.keys[index]:
                    index += 1
            node = node.children[index]

    # ------------------------------------------------------------------
    # Iteration.
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs in ascending key order."""
        yield from self._iter_node(self._root)

    def keys(self) -> Iterator[Any]:
        """Yield keys in ascending order."""
        for key, _value in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        """Yield values in ascending key order."""
        for _key, value in self.items():
            yield value

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def _iter_node(self, node: _Node) -> Iterator[tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for index, key in enumerate(node.keys):
            yield from self._iter_node(node.children[index])
            yield key, node.values[index]
        yield from self._iter_node(node.children[-1])

    # ------------------------------------------------------------------
    # Introspection used by tests.
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Return the number of levels in the tree (1 for a lone root)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def check_invariants(self) -> None:
        """Assert the structural B-tree invariants; used by property tests.

        Verifies key ordering inside nodes, separator ordering across
        children, node fill bounds, and that all leaves sit at equal depth.
        """
        leaf_depths: set[int] = set()
        self._check_node(self._root, depth=0, lo=None, hi=None,
                         is_root=True, leaf_depths=leaf_depths)
        assert len(leaf_depths) <= 1, f"leaves at unequal depths: {leaf_depths}"

    def _check_node(
        self,
        node: _Node,
        depth: int,
        lo: Any,
        hi: Any,
        is_root: bool,
        leaf_depths: set[int],
    ) -> None:
        t = self._t
        assert len(node.keys) == len(node.values)
        if not is_root:
            assert len(node.keys) >= t - 1, "underfull node"
        assert len(node.keys) <= 2 * t - 1, "overfull node"
        for left, right in zip(node.keys, node.keys[1:]):
            assert left < right, "keys out of order within node"
        if node.keys:
            if lo is not None:
                assert node.keys[0] > lo, "key violates left separator"
            if hi is not None:
                assert node.keys[-1] < hi, "key violates right separator"
        if node.is_leaf:
            leaf_depths.add(depth)
            return
        assert len(node.children) == len(node.keys) + 1
        bounds = [lo, *node.keys, hi]
        for index, child in enumerate(node.children):
            self._check_node(child, depth + 1, bounds[index], bounds[index + 1],
                             is_root=False, leaf_depths=leaf_depths)


class _Missing:
    """Sentinel distinguishing 'absent' from a stored ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid only.
        return "<missing>"


_MISSING = _Missing()


def _bisect_left(keys: list[Any], key: Any) -> int:
    """Leftmost insertion point for ``key`` in the sorted list ``keys``."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(keys: list[Any], key: Any) -> int:
    """Rightmost insertion point for ``key`` in the sorted list ``keys``."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
