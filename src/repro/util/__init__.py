"""Small generic substrates shared across the library.

This subpackage deliberately contains no paper-specific logic: a B-tree
sorted map (the backing store of the sigma-cache), ASCII table rendering used
by the experiment harness, seeded random-number helpers, and argument
validation utilities.
"""

from repro.util.arrays import readonly_view
from repro.util.btree import BTreeMap
from repro.util.jsonio import canonical_dumps
from repro.util.rng import ensure_rng
from repro.util.tables import format_table, render_pruning, render_result
from repro.util.validation import (
    require_finite_array,
    require_in_range,
    require_positive,
)

__all__ = [
    "BTreeMap",
    "canonical_dumps",
    "ensure_rng",
    "format_table",
    "render_pruning",
    "render_result",
    "readonly_view",
    "require_finite_array",
    "require_in_range",
    "require_positive",
]
