"""Canonical JSON rendering shared by results, the wire, and benchmarks.

One serializer, used everywhere bytes must be deterministic: result
objects' ``.json()``, the NDJSON wire protocol, and the benchmarks that
assert a statement answered in-process is *bit-identical* to the same
statement served over a socket.  Canonical means sorted keys, compact
separators, and no ``NaN``/``Infinity`` constants (they could never be
round-tripped by a strict JSON peer).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["canonical_dumps"]


def canonical_dumps(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
