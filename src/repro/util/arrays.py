"""Array exposure helpers shared by the columnar containers."""

from __future__ import annotations

import numpy as np

__all__ = ["readonly_view"]


def readonly_view(array: np.ndarray) -> np.ndarray:
    """A non-writeable view of ``array`` sharing its buffer.

    The columnar containers (:class:`~repro.timeseries.series.TimeSeries`,
    ``DensitySeries``, ``ProbabilisticView``) hand their internal columns
    out through this so callers can consume them zero-copy without being
    able to corrupt the backing state.
    """
    view = array.view()
    view.flags.writeable = False
    return view
