"""Plain-text table rendering for the experiment harness and the CLI.

The benchmark modules print the same rows/series the paper's figures report;
this module renders them as aligned ASCII tables so the output is readable in
pytest logs without any plotting dependency.  :func:`render_result` is the
one query-result renderer both CLI query verbs (``service query`` and
``server query``) print through — it consumes the serialized payload shape
(:meth:`~repro.service.executor.SelectResult.to_dict` / the wire result), so
in-process and over-the-wire results render identically.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


def _render_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    float_format: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_format``; booleans print as yes/no.
    Returns the table as a single string (no trailing newline).

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    header_cells = [str(h) for h in headers]
    body = [[_render_cell(value, float_format) for value in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(header_cells)} headers"
            )
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def join(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(join(header_cells))
    lines.append(join(["-" * width for width in widths]))
    lines.extend(join(row) for row in body)
    return "\n".join(lines)


def render_result(payload: dict[str, Any], head: int) -> str:
    """Human-readable rendering of a serialized query result payload.

    Accepts every result ``kind`` the engine produces (``select`` — exact
    or with the ``approx`` flag —, ``multi_select``, ``simulate``,
    ``view``) in its ``to_dict()`` / wire form.  Returns the rendered
    block without a trailing newline.
    """
    lines: list[str] = []
    kind = payload.get("kind")
    if kind == "view":
        tuples = payload.get("tuples", [])
        lines.append(
            f"created view {payload.get('name')!r} ({len(tuples)} tuples)"
        )
        lines.append(format_table(
            ["t", "low", "high", "probability", "label"], tuples[:head]
        ))
        if len(tuples) > head:
            lines.append(f"... ({len(tuples) - head} more tuples)")
        return "\n".join(lines)
    if kind == "multi_select":
        return "\n\n".join(
            render_result(item, head)
            for item in payload.get("statements", [])
        )
    entries = payload.get("results", [])
    if kind == "simulate":
        lines.append(
            f"simulate({payload.get('n_worlds')} worlds, "
            f"seed {payload.get('seed')}) over "
            f"{len(payload.get('matched', []))} matched series:\n"
        )
        lines.append(format_table(
            ["series", "worlds", "times"],
            [[entry["series"],
              len(entry["worlds"]),
              len(entry["worlds"][0]) if entry["worlds"] else 0]
             for entry in entries],
        ))
        top = next(
            (e for e in entries if e["worlds"] and e["worlds"][0]), None
        )
        if top is not None:
            lines.append(f"\nhead of {top['series']!r}, world 0:")
            lines.append(format_table(
                ["t", "value"],
                [[t, "(outside)" if v is None else round(v, 6)]
                 for t, v in top["worlds"][0][:head]],
            ))
            if len(top["worlds"][0]) > head:
                lines.append(
                    f"... ({len(top['worlds'][0]) - head} more rows)"
                )
        return "\n".join(lines)
    if payload.get("approx"):
        lines.append(
            f"APPROX {payload.get('aggregate')} over "
            f"{len(payload.get('matched', []))} matched series "
            f"(answered from synopses):\n"
        )
        lines.append(format_table(
            ["series", "estimate", "error_bound", "lower", "upper"],
            [[entry["series"],
              round(entry["approx"]["estimate"], 6),
              round(entry["approx"]["error_bound"], 6),
              round(entry["approx"]["lower"], 6),
              round(entry["approx"]["upper"], 6)]
             for entry in entries],
        ))
        return "\n".join(lines)
    lines.append(
        f"{payload.get('aggregate')} over "
        f"{len(payload.get('matched', []))} "
        f"matched series ({len(entries)} returned):\n"
    )
    lines.append(format_table(
        ["series", payload.get("score_label", "score"), "rows"],
        [[entry["series"], round(entry["score"], 6), len(entry["rows"])]
         for entry in entries],
    ))
    if entries:
        top = entries[0]
        lines.append(f"\nhead of {top['series']!r}:")
        rows = top["rows"][:head]
        if rows and len(rows[0]) == 5:
            lines.append(format_table(
                ["t", "low", "high", "probability", "label"], rows
            ))
        else:
            lines.append(format_table(["t", "value"], rows))
        if len(top["rows"]) > head:
            lines.append(f"... ({len(top['rows']) - head} more rows)")
    return "\n".join(lines)


def render_pruning(pruning: dict[str, Any]) -> str:
    """The one-line pruning summary both CLI query verbs print."""
    return (
        f"pruning: scanned {pruning.get('segments_scanned', 0)}/"
        f"{pruning.get('segments_total', 0)} segments "
        f"({pruning.get('segments_pruned', 0)} pruned), skipped "
        f"{pruning.get('series_skipped', 0)}/"
        f"{pruning.get('series_matched', 0)} series"
        + (" [approx]" if pruning.get("approx") else "")
    )


def rows_from_dicts(
    records: Sequence[dict[str, Any]],
    headers: Sequence[str] | None = None,
) -> tuple[list[str], list[list[Any]]]:
    """Convert a list of dict records to ``(headers, rows)`` for formatting.

    When ``headers`` is omitted the keys of the first record are used, in
    insertion order.  Missing keys render as empty strings.
    """
    if not records:
        return list(headers or []), []
    keys = list(headers) if headers is not None else list(records[0].keys())
    rows = [[record.get(key, "") for key in keys] for record in records]
    return keys, rows
