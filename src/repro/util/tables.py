"""Plain-text table rendering for the experiment harness.

The benchmark modules print the same rows/series the paper's figures report;
this module renders them as aligned ASCII tables so the output is readable in
pytest logs without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


def _render_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    float_format: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_format``; booleans print as yes/no.
    Returns the table as a single string (no trailing newline).

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    header_cells = [str(h) for h in headers]
    body = [[_render_cell(value, float_format) for value in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(header_cells)} headers"
            )
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def join(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(join(header_cells))
    lines.append(join(["-" * width for width in widths]))
    lines.extend(join(row) for row in body)
    return "\n".join(lines)


def rows_from_dicts(
    records: Sequence[dict[str, Any]],
    headers: Sequence[str] | None = None,
) -> tuple[list[str], list[list[Any]]]:
    """Convert a list of dict records to ``(headers, rows)`` for formatting.

    When ``headers`` is omitted the keys of the first record are used, in
    insertion order.  Missing keys render as empty strings.
    """
    if not records:
        return list(headers or []), []
    keys = list(headers) if headers is not None else list(records[0].keys())
    rows = [[record.get(key, "") for key in keys] for record in records]
    return keys, rows
