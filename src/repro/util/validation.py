"""Argument validation helpers.

These raise :class:`repro.exceptions.InvalidParameterError` or
:class:`repro.exceptions.DataError` with messages that name the offending
parameter, so call sites stay one line long.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError, InvalidParameterError


def require_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when not strict).

    Returns the value unchanged so it can be used inline::

        self.delta = require_positive("delta", delta)
    """
    value = float(value)
    if not np.isfinite(value):
        raise InvalidParameterError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise InvalidParameterError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if not np.isfinite(value):
        raise InvalidParameterError(f"{name} must be finite, got {value!r}")
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise InvalidParameterError(f"{name} must be in {bounds}, got {value!r}")
    return value


def require_finite_array(name: str, values: np.ndarray, *, min_len: int = 1) -> np.ndarray:
    """Coerce ``values`` to a 1-D float array and validate it.

    Rejects empty input (below ``min_len``), non-finite entries and arrays
    with more than one dimension.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise DataError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size < min_len:
        raise DataError(f"{name} needs at least {min_len} values, got {array.size}")
    if not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise DataError(f"{name} contains {bad} non-finite value(s)")
    return array
