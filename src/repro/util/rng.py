"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either a seed,
a :class:`numpy.random.Generator`, or ``None``; this module centralises the
coercion so behaviour is reproducible and uniform.
"""

from __future__ import annotations

import numpy as np

#: Seed used by library code when the caller does not provide one.  Fixed so
#: examples and benchmarks are reproducible run to run.
DEFAULT_SEED = 20110411  # ICDE 2011 conference start date.


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` maps to a generator seeded with :data:`DEFAULT_SEED`; an integer
    is used as a seed; an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
