"""Probability distributions used by the dynamic density metrics.

The metrics of the paper emit either uniform densities (uniform
thresholding) or Gaussian densities (variable thresholding and the GARCH
family); the histogram distribution backs the density-distance evaluation
of Section II-B.
"""

from repro.distributions.base import Distribution
from repro.distributions.gaussian import Gaussian, gaussian_cdf
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.uniform import Uniform

__all__ = ["Distribution", "Gaussian", "HistogramDistribution", "Uniform", "gaussian_cdf"]
