"""Uniform distribution on ``[low, high]``.

The uniform-thresholding metric (paper Section III) centres a uniform
density of half-width ``u`` (the user threshold) on the ARMA expected true
value; this class is its output type.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import InvalidParameterError

__all__ = ["Uniform"]


class Uniform(Distribution):
    """Continuous uniform distribution.

    >>> u = Uniform(2.0, 6.0)
    >>> u.mean(), u.prob(3.0, 5.0)
    (4.0, 0.5)
    """

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        low = float(low)
        high = float(high)
        if not (math.isfinite(low) and math.isfinite(high)):
            raise InvalidParameterError(f"bounds must be finite, got [{low}, {high}]")
        if high <= low:
            raise InvalidParameterError(
                f"high must exceed low, got [{low}, {high}]"
            )
        self.low = low
        self.high = high

    @classmethod
    def centered(cls, center: float, half_width: float) -> "Uniform":
        """The paper's construction: ``[r_hat - u, r_hat + u]``."""
        if half_width <= 0:
            raise InvalidParameterError(
                f"half_width must be > 0, got {half_width}"
            )
        return cls(center - half_width, center + half_width)

    @property
    def width(self) -> float:
        return self.high - self.low

    def pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        x_array = np.asarray(x, dtype=float)
        result = np.where(
            (x_array >= self.low) & (x_array <= self.high), 1.0 / self.width, 0.0
        )
        return float(result) if np.ndim(x) == 0 else result

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        x_array = np.asarray(x, dtype=float)
        result = np.clip((x_array - self.low) / self.width, 0.0, 1.0)
        return float(result) if np.ndim(x) == 0 else result

    def ppf(self, u: float | np.ndarray) -> float | np.ndarray:
        u_array = np.asarray(u, dtype=float)
        if np.any((u_array < 0.0) | (u_array > 1.0)):
            raise InvalidParameterError("quantile argument must be in [0, 1]")
        result = self.low + u_array * self.width
        return float(result) if np.ndim(u) == 0 else result

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        return self.width**2 / 12.0

    def __repr__(self) -> str:
        return f"Uniform(low={self.low:.6g}, high={self.high:.6g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Uniform):
            return NotImplemented
        return self.low == other.low and self.high == other.high

    def __hash__(self) -> int:
        return hash((self.low, self.high))
