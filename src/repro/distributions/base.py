"""Abstract interface all probability distributions in this library share.

A dynamic density metric (paper Definition 1) returns a ``Distribution`` for
every inference time ``t``; the Omega-view builder (Definition 2) only ever
consumes it through :meth:`Distribution.cdf` / :meth:`Distribution.prob`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.util.rng import ensure_rng

__all__ = ["Distribution"]


class Distribution(ABC):
    """A univariate probability distribution.

    Array-valued inputs are accepted everywhere a scalar is; outputs follow
    numpy broadcasting.
    """

    @abstractmethod
    def pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Probability density function evaluated at ``x``."""

    @abstractmethod
    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Cumulative distribution function ``P(X <= x)``."""

    @abstractmethod
    def ppf(self, u: float | np.ndarray) -> float | np.ndarray:
        """Quantile function (inverse CDF) for ``u`` in ``[0, 1]``."""

    @abstractmethod
    def mean(self) -> float:
        """Expected value ``E(X)`` — the paper's *expected true value*."""

    @abstractmethod
    def variance(self) -> float:
        """Variance of the distribution."""

    def std(self) -> float:
        """Standard deviation, ``sqrt(variance())``."""
        return float(np.sqrt(self.variance()))

    def prob(self, low: float, high: float) -> float:
        """``P(low <= X <= high)`` — the integral of eq. (9) over one range."""
        if high < low:
            raise InvalidParameterError(
                f"range upper bound {high} is below lower bound {low}"
            )
        return float(self.cdf(high) - self.cdf(low))

    def interval(self, coverage: float) -> tuple[float, float]:
        """Central interval containing ``coverage`` probability mass."""
        if not 0.0 < coverage < 1.0:
            raise InvalidParameterError(
                f"coverage must be in (0, 1), got {coverage}"
            )
        tail = (1.0 - coverage) / 2.0
        return float(self.ppf(tail)), float(self.ppf(1.0 - tail))

    def sample(self, n: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` samples by inverse-transform sampling."""
        if n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {n}")
        generator = ensure_rng(rng)
        return np.asarray(self.ppf(generator.uniform(size=n)), dtype=float)
