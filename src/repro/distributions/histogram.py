"""Histogram-based empirical distribution.

Section II-B of the paper estimates the cumulative distribution ``Q_Z(z)``
of the probability-integral transforms "using a histogram approximation
method"; :class:`HistogramDistribution` is that estimator, and doubles as a
general-purpose empirical distribution for tests and examples.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import DataError, InvalidParameterError
from repro.util.validation import require_finite_array

__all__ = ["HistogramDistribution"]


class HistogramDistribution(Distribution):
    """Piecewise-constant density over equal-probability treatment of bins.

    Construct either from explicit ``(edges, counts)`` or from raw samples
    via :meth:`from_samples`.  The CDF is linear within each bin (i.e. the
    samples are assumed uniformly spread inside their bin), which makes the
    CDF continuous and the PPF exact.
    """

    def __init__(self, edges: np.ndarray, counts: np.ndarray) -> None:
        edges = require_finite_array("edges", edges, min_len=2)
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 1 or counts.size != edges.size - 1:
            raise DataError(
                f"counts must have len(edges) - 1 = {edges.size - 1} entries, "
                f"got {counts.size}"
            )
        if np.any(np.diff(edges) <= 0):
            raise DataError("edges must be strictly increasing")
        if np.any(counts < 0):
            raise DataError("counts must be non-negative")
        total = float(np.sum(counts))
        if total <= 0:
            raise DataError("histogram must contain at least one observation")
        self.edges = edges
        self.counts = counts
        self._cum = np.concatenate(([0.0], np.cumsum(counts))) / total
        self._widths = np.diff(edges)
        self._density = (counts / total) / self._widths

    @classmethod
    def from_samples(
        cls, samples: np.ndarray, n_bins: int = 20,
        support: tuple[float, float] | None = None,
    ) -> "HistogramDistribution":
        """Build an equal-width histogram of ``samples``.

        ``support`` fixes the range (the PIT evaluation uses ``(0, 1)``);
        otherwise the sample min/max (padded if degenerate) is used.
        """
        data = require_finite_array("samples", samples)
        if n_bins < 1:
            raise InvalidParameterError(f"n_bins must be >= 1, got {n_bins}")
        if support is None:
            lo, hi = float(np.min(data)), float(np.max(data))
            if hi <= lo:  # Degenerate: all samples equal.
                lo, hi = lo - 0.5, hi + 0.5
        else:
            lo, hi = float(support[0]), float(support[1])
            if hi <= lo:
                raise InvalidParameterError(
                    f"support upper bound must exceed lower, got ({lo}, {hi})"
                )
            data = np.clip(data, lo, hi)
        edges = np.linspace(lo, hi, n_bins + 1)
        counts, _ = np.histogram(data, bins=edges)
        if counts.sum() == 0:  # All samples outside support (cannot happen after clip).
            raise DataError("no samples fall inside the requested support")
        return cls(edges, counts.astype(float))

    def pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        x_array = np.asarray(x, dtype=float)
        index = np.searchsorted(self.edges, x_array, side="right") - 1
        inside = (index >= 0) & (index < self.counts.size)
        # Right edge belongs to the last bin.
        at_top = x_array == self.edges[-1]
        index = np.clip(index, 0, self.counts.size - 1)
        result = np.where(inside | at_top, self._density[index], 0.0)
        return float(result) if np.ndim(x) == 0 else result

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        x_array = np.asarray(x, dtype=float)
        index = np.clip(
            np.searchsorted(self.edges, x_array, side="right") - 1,
            0,
            self.counts.size - 1,
        )
        fraction = np.clip(
            (x_array - self.edges[index]) / self._widths[index], 0.0, 1.0
        )
        result = self._cum[index] + fraction * (self._cum[index + 1] - self._cum[index])
        result = np.where(x_array <= self.edges[0], 0.0, result)
        result = np.where(x_array >= self.edges[-1], 1.0, result)
        return float(result) if np.ndim(x) == 0 else result

    def ppf(self, u: float | np.ndarray) -> float | np.ndarray:
        u_array = np.asarray(u, dtype=float)
        if np.any((u_array < 0.0) | (u_array > 1.0)):
            raise InvalidParameterError("quantile argument must be in [0, 1]")
        index = np.clip(
            np.searchsorted(self._cum, u_array, side="right") - 1,
            0,
            self.counts.size - 1,
        )
        bin_mass = self._cum[index + 1] - self._cum[index]
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(
                bin_mass > 0, (u_array - self._cum[index]) / bin_mass, 0.0
            )
        result = self.edges[index] + np.clip(fraction, 0.0, 1.0) * self._widths[index]
        return float(result) if np.ndim(u) == 0 else result

    def mean(self) -> float:
        midpoints = 0.5 * (self.edges[:-1] + self.edges[1:])
        weights = self.counts / self.counts.sum()
        return float(np.dot(midpoints, weights))

    def variance(self) -> float:
        midpoints = 0.5 * (self.edges[:-1] + self.edges[1:])
        weights = self.counts / self.counts.sum()
        mean = float(np.dot(midpoints, weights))
        # Within-bin variance of a uniform plus between-bin spread.
        within = float(np.dot(weights, self._widths**2)) / 12.0
        between = float(np.dot(weights, (midpoints - mean) ** 2))
        return within + between

    def __repr__(self) -> str:
        return (
            f"HistogramDistribution(bins={self.counts.size}, "
            f"support=[{self.edges[0]:.6g}, {self.edges[-1]:.6g}])"
        )
