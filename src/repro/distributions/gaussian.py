"""Gaussian distribution ``N(mu, sigma^2)``.

This is the density family of the variable-thresholding metric (eq. 3) and
of the whole GARCH metric family, where ``mu = r_hat_t`` and
``sigma^2 = sigma_hat^2_t``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.distributions.base import Distribution
from repro.exceptions import InvalidParameterError

__all__ = ["Gaussian", "gaussian_cdf"]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def gaussian_cdf(
    x: float | np.ndarray,
    mu: float | np.ndarray,
    sigma: float | np.ndarray,
) -> np.ndarray:
    """Vectorised normal CDF ``P(N(mu, sigma^2) <= x)``, broadcasting freely.

    The single definition of the CDF arithmetic: :meth:`Gaussian.cdf` and
    the batch paths (``DensitySeries.pit``, ``ViewBuilder.build_matrix``)
    all evaluate through here, so per-object and columnar results agree
    bit for bit.
    """
    z = (np.asarray(x, dtype=float) - mu) / (sigma * _SQRT2)
    return 0.5 * (1.0 + special.erf(z))


class Gaussian(Distribution):
    """Normal distribution parameterised by mean and *variance*.

    Parameters follow the paper's notation ``N(mu, sigma^2)``: the second
    argument is the variance, not the standard deviation.

    >>> g = Gaussian(0.0, 4.0)
    >>> g.std()
    2.0
    >>> round(g.prob(-2.0, 2.0), 4)
    0.6827
    """

    __slots__ = ("mu", "sigma2", "_sigma")

    def __init__(self, mu: float, sigma2: float) -> None:
        mu = float(mu)
        sigma2 = float(sigma2)
        if not math.isfinite(mu):
            raise InvalidParameterError(f"mu must be finite, got {mu!r}")
        if not math.isfinite(sigma2) or sigma2 <= 0.0:
            raise InvalidParameterError(f"sigma2 must be > 0, got {sigma2!r}")
        self.mu = mu
        self.sigma2 = sigma2
        self._sigma = math.sqrt(sigma2)

    def pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        z = (np.asarray(x, dtype=float) - self.mu) / self._sigma
        result = _INV_SQRT_2PI / self._sigma * np.exp(-0.5 * z * z)
        return float(result) if np.ndim(x) == 0 else result

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        result = gaussian_cdf(x, self.mu, self._sigma)
        return float(result) if np.ndim(x) == 0 else result

    def ppf(self, u: float | np.ndarray) -> float | np.ndarray:
        u_array = np.asarray(u, dtype=float)
        if np.any((u_array < 0.0) | (u_array > 1.0)):
            raise InvalidParameterError("quantile argument must be in [0, 1]")
        result = self.mu + self._sigma * special.ndtri(u_array)
        return float(result) if np.ndim(u) == 0 else result

    def mean(self) -> float:
        return self.mu

    def variance(self) -> float:
        return self.sigma2

    def shifted(self, mu: float) -> "Gaussian":
        """Return a copy relocated to ``mu`` — the paper's *mean shift*.

        The sigma-cache exploits that a Gaussian's CDF *shape* depends only
        on sigma (Section VI-A); this helper makes the shift explicit.
        """
        return Gaussian(mu, self.sigma2)

    def __repr__(self) -> str:
        return f"Gaussian(mu={self.mu:.6g}, sigma2={self.sigma2:.6g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gaussian):
            return NotImplemented
        return self.mu == other.mu and self.sigma2 == other.sigma2

    def __hash__(self) -> int:
        return hash((self.mu, self.sigma2))
