"""repro — probabilistic databases from imprecise time-series data.

A from-scratch reproduction of Sathe, Jeung & Aberer, *Creating
Probabilistic Databases from Imprecise Time-Series Data* (ICDE 2011).

The pipeline has two key components (paper Fig. 2):

1. **Dynamic density metrics** (:mod:`repro.metrics`) infer a
   time-dependent probability density ``p_t(R_t)`` for every raw value from
   the sliding window preceding it — uniform/variable thresholding
   baselines, the ARMA-GARCH and Kalman-GARCH metrics, and the
   error-robust C-GARCH enhancement.
2. **The Omega-view builder** (:mod:`repro.view`) turns those densities
   into tuple-independent probabilistic views, optionally through the
   sigma-cache, which reuses probability rows across time steps under
   provable Hellinger-distance and memory guarantees.

Quickstart::

    from repro import (ARMAGARCHMetric, OmegaGrid, campus_temperature,
                       create_probabilistic_view)

    series = campus_temperature(2000)
    view = create_probabilistic_view(
        series, ARMAGARCHMetric(), H=60, grid=OmegaGrid(delta=0.5, n=20))
    print(view.tuples_at(view.times[0]))
"""

from repro.data.errors import InjectionResult, inject_errors
from repro.data.loaders import dataset_summary, load_series_csv, save_series_csv
from repro.data.synthetic import (
    campus_humidity,
    campus_temperature,
    car_gps,
    make_dataset,
)
from repro.db.density_store import DensityStore, StoredDensity
from repro.db.stream_queries import (
    exceedance_probability,
    expected_time_above,
    sustained_exceedance_probability,
    windowed_expected_value,
)
from repro.db.worlds import (
    MonteCarloEstimate,
    World,
    WorldSampler,
    conjunctive_range_query,
    monte_carlo_query,
)
from repro.db.engine import Database
from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.queries import (
    expected_value_query,
    most_probable_range_query,
    range_probability_query,
    threshold_query,
)
from repro.db.table import Table
from repro.distributions import Distribution, Gaussian, HistogramDistribution, Uniform
from repro.evaluation import (
    ArchTestResult,
    density_distance,
    density_distance_from_pit,
    engle_arch_test,
    probability_integral_transform,
    rolling_arch_test,
)
from repro.exceptions import (
    CacheConstraintError,
    DataError,
    EstimationError,
    InvalidParameterError,
    NotFittedError,
    ParseError,
    QueryError,
    ReproError,
    SchemaVersionError,
    StoreError,
)
from repro.store import (
    AppendResult,
    Catalog,
    SeriesHandle,
    SeriesSnapshot,
    StandingQuery,
    StandingQueryHandle,
    load_density_series_npz,
    load_view_npz,
    save_density_series_npz,
    save_view_npz,
)
from repro.service import (
    ApproxResult,
    CatalogQueryService,
    MatrixCache,
    MultiSelectResult,
    SelectResult,
    SimulateResult,
    execute_select,
)
from repro.server import (
    Client,
    QueryServer,
    ServerError,
    ServerThread,
)
from repro.connection import Connection, connect
from repro.cleaning import SVRResult, learn_sv_max, successive_variance_reduction
from repro.evaluation.calibration import CalibrationReport, calibration_report
from repro.metrics import (
    ARMAGARCHMetric,
    CGARCHMetric,
    CGARCHReport,
    DensityForecast,
    DensitySeries,
    DynamicDensityMetric,
    KalmanGARCHMetric,
    UniformThresholdingMetric,
    VariableThresholdingMetric,
    available_metrics,
    create_metric,
)
from repro.metrics.ewma import EWMAMetric
from repro.multivariate import (
    MultiSeries,
    Region,
    RegionSet,
    RegionView,
    RegionViewBuilder,
    VectorDensityMetric,
)
from repro.pipeline import OnlinePipeline, OnlineStep, create_probabilistic_view
from repro.timeseries import (
    ARMAModel,
    ARMAParams,
    GARCHModel,
    GARCHParams,
    KalmanFilter,
    KalmanParams,
    TimeSeries,
)
from repro.timeseries.selection import (
    OrderSelectionResult,
    rolling_forecast_mse,
    select_arma_order,
)
from repro.view import (
    OmegaGrid,
    OmegaRange,
    ProbabilityRow,
    SigmaCache,
    ViewBuilder,
    ViewQuery,
    hellinger_distance,
    parse_view_query,
    ratio_threshold_for_distance,
    ratio_threshold_for_memory,
)

__version__ = "1.0.0"

__all__ = [
    "ARMAGARCHMetric",
    "ARMAModel",
    "ARMAParams",
    "AppendResult",
    "ApproxResult",
    "ArchTestResult",
    "Catalog",
    "CGARCHMetric",
    "CGARCHReport",
    "CacheConstraintError",
    "CalibrationReport",
    "CatalogQueryService",
    "Client",
    "Connection",
    "DataError",
    "Database",
    "DensityForecast",
    "DensitySeries",
    "DensityStore",
    "Distribution",
    "DynamicDensityMetric",
    "EWMAMetric",
    "EstimationError",
    "GARCHModel",
    "GARCHParams",
    "Gaussian",
    "HistogramDistribution",
    "InjectionResult",
    "InvalidParameterError",
    "KalmanFilter",
    "KalmanGARCHMetric",
    "KalmanParams",
    "MatrixCache",
    "MonteCarloEstimate",
    "MultiSelectResult",
    "MultiSeries",
    "NotFittedError",
    "OmegaGrid",
    "OmegaRange",
    "OnlinePipeline",
    "OnlineStep",
    "OrderSelectionResult",
    "ParseError",
    "ProbTuple",
    "ProbabilisticView",
    "ProbabilityRow",
    "QueryError",
    "QueryServer",
    "Region",
    "RegionSet",
    "RegionView",
    "RegionViewBuilder",
    "ReproError",
    "SVRResult",
    "SchemaVersionError",
    "SelectResult",
    "SeriesHandle",
    "SeriesSnapshot",
    "ServerError",
    "ServerThread",
    "SigmaCache",
    "SimulateResult",
    "StandingQuery",
    "StandingQueryHandle",
    "StoreError",
    "StoredDensity",
    "Table",
    "TimeSeries",
    "Uniform",
    "UniformThresholdingMetric",
    "VariableThresholdingMetric",
    "VectorDensityMetric",
    "ViewBuilder",
    "ViewQuery",
    "World",
    "WorldSampler",
    "available_metrics",
    "calibration_report",
    "campus_humidity",
    "campus_temperature",
    "car_gps",
    "conjunctive_range_query",
    "connect",
    "create_metric",
    "create_probabilistic_view",
    "dataset_summary",
    "density_distance",
    "density_distance_from_pit",
    "engle_arch_test",
    "exceedance_probability",
    "execute_select",
    "expected_time_above",
    "expected_value_query",
    "hellinger_distance",
    "inject_errors",
    "learn_sv_max",
    "load_density_series_npz",
    "load_series_csv",
    "load_view_npz",
    "make_dataset",
    "monte_carlo_query",
    "most_probable_range_query",
    "parse_view_query",
    "probability_integral_transform",
    "range_probability_query",
    "ratio_threshold_for_distance",
    "ratio_threshold_for_memory",
    "rolling_arch_test",
    "rolling_forecast_mse",
    "save_density_series_npz",
    "save_series_csv",
    "save_view_npz",
    "select_arma_order",
    "successive_variance_reduction",
    "sustained_exceedance_probability",
    "threshold_query",
    "windowed_expected_value",
]
