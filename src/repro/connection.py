"""One front door for every query route: ``repro.connect()``.

The library grew three overlapping query entry points — an in-memory
:class:`~repro.db.engine.Database`, the catalog-bound
:class:`~repro.service.executor.CatalogQueryService`, and the network
:class:`~repro.server.client.Client` — each with its own signature.
:func:`connect` consolidates them behind one :class:`Connection` façade:

>>> # conn = repro.connect()                      # in-memory engine
>>> # conn = repro.connect("/data/catalogs/main") # local catalog service
>>> # conn = repro.connect("tcp://db-host:7411")  # a running query server
>>> # result = conn.execute(
>>> #     "SELECT exceedance(21.0) FROM CATALOG '/data/catalogs/main'",
>>> #     as_of=3)
>>> # result.kind, result.to_dict(), result.json()

Every route answers ``execute`` with a uniform result object exposing
``.kind`` (``"select"`` / ``"approx"`` / ``"simulate"`` /
``"multi_select"`` / ``"view"``), ``.to_dict()`` (the JSON-ready payload
the wire protocol sends), and ``.json()`` (canonical bytes) — so the
same statement is *bit-identical* whichever route served it, which the
property tests pin.  The old entry points remain as the thin layers this
façade delegates to.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.exceptions import InvalidParameterError
from repro.util.jsonio import canonical_dumps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database
    from repro.db.prob_view import ProbabilisticView
    from repro.server.client import Client
    from repro.service.executor import CatalogQueryService

__all__ = ["Connection", "RemoteResult", "ViewResult", "connect"]

_TCP_URL = re.compile(r"^tcp://(?P<host>[^:/]+)(?::(?P<port>\d+))?/?$")


class ViewResult:
    """A created :class:`ProbabilisticView` in the uniform result shape.

    ``CREATE VIEW`` returns the view object itself from the engine; this
    wrapper gives it the same ``.kind`` / ``.to_dict()`` / ``.json()``
    surface the SELECT-family results carry, with the underlying view on
    ``.view``.
    """

    kind = "view"

    def __init__(self, view: "ProbabilisticView") -> None:
        self.view = view

    def to_dict(self) -> dict[str, Any]:
        from repro.server.protocol import serialize_view

        return serialize_view(self.view)

    def json(self) -> str:
        return canonical_dumps(self.to_dict())

    def __repr__(self) -> str:
        return f"ViewResult(name={self.view.name!r})"


class RemoteResult:
    """A server-answered statement in the uniform result shape.

    The wire already speaks the canonical payload dialect, so this is a
    view over the received dict: ``to_dict`` returns it as-is (minus
    nothing), ``kind`` folds the ``approx`` flag into the discriminator
    exactly like :attr:`SelectResult.kind` does, and ``trace`` surfaces
    the server's stage breakdown when one was requested.
    """

    def __init__(self, payload: dict[str, Any]) -> None:
        self._payload = payload

    @property
    def kind(self) -> str:
        if self._payload.get("approx"):
            return "approx"
        return str(self._payload.get("kind", "select"))

    @property
    def trace(self) -> dict[str, Any] | None:
        return self._payload.get("trace")

    def to_dict(self) -> dict[str, Any]:
        payload = dict(self._payload)
        # The trace block is timing, not result: two runs of the same
        # statement must serialize identically, exactly as the local
        # result objects exclude their trace from to_dict().
        payload.pop("trace", None)
        return payload

    def json(self) -> str:
        return canonical_dumps(self.to_dict())

    def __repr__(self) -> str:
        return f"RemoteResult(kind={self.kind!r})"


class Connection:
    """One query connection, whatever sits behind it.

    Construct via :func:`connect`.  Exactly one of ``database``,
    ``service``, ``client`` is set; :attr:`route` names it
    (``"memory"`` / ``"service"`` / ``"server"``).
    """

    def __init__(
        self,
        *,
        database: "Database | None" = None,
        service: "CatalogQueryService | None" = None,
        client: "Client | None" = None,
    ) -> None:
        backends = [database, service, client]
        if sum(x is not None for x in backends) != 1:
            raise InvalidParameterError(
                "Connection needs exactly one of database/service/client"
            )
        self.database = database
        self.service = service
        self.client = client

    @property
    def route(self) -> str:
        if self.database is not None:
            return "memory"
        if self.service is not None:
            return "service"
        return "server"

    def execute(
        self,
        statement: str,
        *,
        trace: bool = False,
        as_of: int | None = None,
    ) -> Any:
        """Run one statement; a uniform result object on every route.

        ``as_of`` rewrites the statement with an ``AS OF
        <knowledge_time>`` clause (SELECT / SIMULATE only) before
        routing, so all three routes answer from the same revision
        frontier.  ``trace=True`` asks for the per-stage latency
        breakdown: local results carry a
        :class:`~repro.obs.trace.QueryTrace` on ``result.trace``, remote
        results the server's serialized trace block.  Traces never enter
        ``to_dict()`` / ``.json()`` — two runs of one statement
        serialize identically.
        """
        if as_of is not None:
            from repro.view.sql import with_as_of

            statement = with_as_of(statement, as_of)
        if self.client is not None:
            return RemoteResult(
                self.client.query(statement, trace=bool(trace))
            )
        if self.service is not None:
            return self.service.execute(statement)
        result = self.database.execute(statement)
        from repro.db.prob_view import ProbabilisticView

        if isinstance(result, ProbabilisticView):
            return ViewResult(result)
        return result

    def close(self) -> None:
        if self.service is not None:
            self.service.close()
        if self.client is not None:
            self.client.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Connection(route={self.route!r})"


def connect(
    target: "str | Path | None" = None,
    *,
    backend: str = "thread",
    max_workers: int | None = None,
    cache_budget_bytes: int = 64 << 20,
    pruning: bool = True,
    timeout: float = 30.0,
) -> Connection:
    """Open a :class:`Connection` to ``target``.

    ``None`` or ``":memory:"`` builds an in-memory
    :class:`~repro.db.engine.Database` (CREATE VIEW plus one-shot
    catalog SELECTs); a local path opens a
    :class:`~repro.service.executor.CatalogQueryService` over that
    catalog (persistent worker pool + warm matrix cache; ``backend``,
    ``max_workers``, ``cache_budget_bytes``, ``pruning`` apply here); a
    ``tcp://host[:port]`` URL connects a
    :class:`~repro.server.client.Client` to a running query server
    (``timeout`` applies there).  Close the connection (or use it as a
    context manager) to release pools and sockets.
    """
    if target is None or target == ":memory:":
        from repro.db.engine import Database

        return Connection(database=Database())
    if isinstance(target, str):
        match = _TCP_URL.match(target)
        if match:
            from repro.server.app import DEFAULT_PORT
            from repro.server.client import Client

            port = match.group("port")
            return Connection(client=Client(
                match.group("host"),
                int(port) if port else DEFAULT_PORT,
                timeout=timeout,
            ))
        if "://" in target:
            raise InvalidParameterError(
                f"unsupported connection URL {target!r}; expected "
                "'tcp://host[:port]', a catalog path, or ':memory:'"
            )
    from repro.service.executor import CatalogQueryService

    return Connection(service=CatalogQueryService(
        target,
        backend=backend,
        max_workers=max_workers,
        cache_budget_bytes=cache_budget_bytes,
        pruning=pruning,
    ))
