"""Command-line interface: ``python -m repro <command>``.

Six subcommands cover the workflows a user reaches for first:

* ``experiment`` — run one reproduced paper experiment and print its table
  (``python -m repro experiment fig14 --scale 0.1``);
* ``query`` — execute a ``CREATE VIEW ... AS DENSITY ...`` statement over a
  generated or CSV dataset and print the resulting view head;
* ``generate`` — write a synthetic dataset to CSV;
* ``arch-test`` — run the Fig. 15 volatility check on a dataset;
* ``store`` — manage a persistent view catalog: ``store init`` binds a new
  series to a metric, ``store ingest`` streams values in micro-batches,
  ``store query`` runs probabilistic queries over the stored view,
  ``store list`` shows what the catalog holds, and ``store synopsize``
  backfills segment synopses (zone maps) on catalogs written before
  pruning existed;
* ``service`` — the catalog-wide query engine: ``service query`` executes
  one ``SELECT <aggregate> FROM CATALOG '<path>' ...`` statement across
  every matched series in parallel;
* ``server`` — the network layer: ``server serve`` runs the asyncio NDJSON
  query server over a catalog (request coalescing, admission control,
  draining shutdown), ``server query`` sends one statement to a running
  server and prints the result.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.data.loaders import load_series_csv, save_series_csv
from repro.data.synthetic import campus_humidity, make_dataset
from repro.db.engine import Database
from repro.db.table import Table
from repro.evaluation.volatility_test import rolling_arch_test
from repro.exceptions import InvalidParameterError, ReproError
from repro.experiments import (
    run_fig04,
    run_fig05,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14a,
    run_fig14b,
    run_fig15,
    run_table02,
)
from repro.experiments.ablation import run_ablation
from repro.timeseries.series import TimeSeries
from repro.util.tables import format_table, render_pruning, render_result

__all__ = ["main", "build_parser"]

_EXPERIMENTS: dict[str, Callable] = {
    "table2": run_table02,
    "fig4": run_fig04,
    "fig5": run_fig05,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14a": run_fig14a,
    "fig14b": run_fig14b,
    "fig15": run_fig15,
    "ablation": run_ablation,
}

_DATASETS = ("campus", "car", "humidity")


def _load_dataset(name: str, scale: float, seed: int) -> TimeSeries:
    if name.endswith(".csv"):
        return load_series_csv(name)
    if name == "humidity":
        n = max(int(18031 * scale), 400)
        return campus_humidity(n, rng=seed)
    return make_dataset(name, scale=scale, rng=seed)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Probabilistic databases from imprecise time-series data "
            "(ICDE 2011 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run one reproduced experiment")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--scale", type=float, default=None,
                     help="workload scale in (0, 1]; default REPRO_SCALE or 0.08")

    query = sub.add_parser("query", help="execute a view-generation query")
    query.add_argument("sql", help="CREATE VIEW ... AS DENSITY ... statement")
    query.add_argument("--data", default="campus",
                       help="dataset name (campus/car/humidity) or a CSV path")
    query.add_argument("--table", default="raw_values",
                       help="name to register the data under")
    query.add_argument("--scale", type=float, default=0.08)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--head", type=int, default=12,
                       help="number of view tuples to print")

    gen = sub.add_parser("generate", help="write a synthetic dataset to CSV")
    gen.add_argument("name", choices=_DATASETS)
    gen.add_argument("output", help="destination CSV path")
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=0)

    arch = sub.add_parser("arch-test", help="Engle ARCH test (Fig. 15 protocol)")
    arch.add_argument("--data", default="campus")
    arch.add_argument("--scale", type=float, default=0.08)
    arch.add_argument("--seed", type=int, default=0)
    arch.add_argument("--max-lag", type=int, default=8)
    arch.add_argument("--window", type=int, default=180)

    store = sub.add_parser("store", help="persistent view catalog operations")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    init = store_sub.add_parser("init", help="create a series in a catalog")
    init.add_argument("catalog", help="catalog directory (created if missing)")
    init.add_argument("series", help="series id")
    init.add_argument("--layout", default=None, choices=["npz", "v2"],
                      help="segment layout for this series' appends: 'v2' "
                           "(uncompressed .npy-per-column) enables zero-copy "
                           "mmap reads for the process executor backend "
                           "(default: the catalog's recorded layout, npz "
                           "for new catalogs)")
    init.add_argument("--metric", default="arma_garch",
                      help="dynamic density metric registry name")
    init.add_argument("--window", type=int, default=60,
                      help="sliding-window size H")
    init.add_argument("--delta", type=float, default=0.5,
                      help="omega range width")
    init.add_argument("--n", type=int, default=8, help="omega range count")
    init.add_argument("--cache-min-sigma", type=float, default=None)
    init.add_argument("--cache-max-sigma", type=float, default=None)
    init.add_argument("--cache-distance", type=float, default=None,
                      help="sigma-cache Hellinger distance constraint")
    init.add_argument("--cache-memory", type=int, default=None,
                      help="sigma-cache stored-distribution bound")

    ingest = store_sub.add_parser("ingest", help="stream values into a series")
    ingest.add_argument("catalog")
    ingest.add_argument("series")
    ingest.add_argument("--data", default="campus",
                        help="dataset name (campus/car/humidity) or a CSV path")
    ingest.add_argument("--batch", type=int, default=64,
                        help="micro-batch size per append")
    ingest.add_argument("--limit", type=int, default=None,
                        help="ingest at most this many values")
    ingest.add_argument("--scale", type=float, default=0.08)
    ingest.add_argument("--seed", type=int, default=0)

    squery = store_sub.add_parser("query", help="query a stored view")
    squery.add_argument("catalog")
    squery.add_argument("series")
    squery.add_argument("--kind", default="exceedance",
                        choices=["threshold", "exceedance",
                                 "windowed-expected-value",
                                 "expected-time-above",
                                 "sustained-exceedance"])
    squery.add_argument("--tau", type=float, default=0.5,
                        help="probability threshold (kind=threshold)")
    squery.add_argument("--threshold", type=float, default=0.0,
                        help="value threshold (exceedance kinds)")
    squery.add_argument("--qwindow", type=int, default=5,
                        help="query window length (windowed kinds)")
    squery.add_argument("--head", type=int, default=12,
                        help="number of result rows to print")

    slist = store_sub.add_parser("list", help="list the series of a catalog")
    slist.add_argument("catalog")

    synopsize = store_sub.add_parser(
        "synopsize",
        help="backfill segment synopses (zone maps) on an existing catalog",
    )
    synopsize.add_argument("catalog")
    synopsize.add_argument("--series", default="*",
                           help="glob of series ids to backfill (default all)")

    service = sub.add_parser(
        "service", help="catalog-wide query service operations"
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)
    vquery = service_sub.add_parser(
        "query", help="run one SELECT over every matched series of a catalog"
    )
    vquery.add_argument(
        "sql",
        nargs="+",
        help="one or more SELECT <aggregate> FROM CATALOG '<path>' "
             "[SERIES '<glob>'] [WHERE t BETWEEN a AND b] [TOP k] "
             "statements; several statements run as one batched fan-out "
             "sharing the matrix cache",
    )
    vquery.add_argument("--workers", type=int, default=None,
                        help="fan-out width (default: cpus + 4 for the "
                             "thread backend, cpus for the process backend)")
    vquery.add_argument("--backend", default="thread",
                        choices=["sequential", "thread", "process"],
                        help="executor backend: 'process' sidesteps the "
                             "GIL for CPU-bound aggregates on multi-core "
                             "hosts")
    vquery.add_argument("--cache-mb", type=float, default=64.0,
                        help="matrix-cache byte budget in MiB")
    vquery.add_argument("--head", type=int, default=8,
                        help="result rows to print for the top series")
    vquery.add_argument("--no-pruning", action="store_true",
                        help="disable synopsis-based segment pruning "
                             "(results are identical; for benchmarking)")
    vquery.add_argument("--stats", action="store_true",
                        help="print the per-query pruning counters")
    vquery.add_argument("--trace", action="store_true",
                        help="print the per-stage latency breakdown "
                             "(parse/plan/prune/fan-out/finalize) and the "
                             "slowest per-series load/compute spans")
    vquery.add_argument("--as-of", type=int, default=None, metavar="K",
                        help="answer from what was known at knowledge "
                             "time K (rewrites each statement with an "
                             "AS OF clause)")

    server = sub.add_parser(
        "server", help="network query server over a catalog"
    )
    server_sub = server.add_subparsers(dest="server_command", required=True)
    serve = server_sub.add_parser(
        "serve", help="run the asyncio NDJSON query server"
    )
    serve.add_argument("catalog", help="catalog directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="statements admitted concurrently before "
                            "new queries get a 'saturated' rejection")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="disable sharing one execution between "
                            "concurrent identical statements")
    serve.add_argument("--workers", type=int, default=None,
                       help="per-statement fan-out width")
    serve.add_argument("--backend", default="thread",
                       choices=["sequential", "thread", "process"],
                       help="per-statement executor backend")
    serve.add_argument("--cache-mb", type=float, default=64.0,
                       help="matrix-cache byte budget in MiB")
    serve.add_argument("--no-pruning", action="store_true",
                       help="disable synopsis-based segment pruning")
    serve.add_argument("--slow-query-ms", type=float, default=None,
                       help="slow-query log threshold in milliseconds "
                            "(default 500; statements slower than this "
                            "are kept in the in-memory slow log)")

    cquery = server_sub.add_parser(
        "query", help="send one statement to a running server"
    )
    cquery.add_argument("sql", help="SELECT or CREATE VIEW statement")
    cquery.add_argument("--host", default="127.0.0.1")
    cquery.add_argument("--port", type=int, default=7411)
    cquery.add_argument("--json", action="store_true",
                        help="print the raw canonical JSON result")
    cquery.add_argument("--head", type=int, default=8,
                        help="result rows to print per section")
    cquery.add_argument("--trace", action="store_true",
                        help="ask the server for the per-stage trace "
                             "block and print it as a latency table")
    cquery.add_argument("--stats", action="store_true",
                        help="print the per-query pruning counters")
    cquery.add_argument("--as-of", type=int, default=None, metavar="K",
                        help="answer from what was known at knowledge "
                             "time K (rewrites the statement with an "
                             "AS OF clause before sending)")
    cquery.add_argument("--backend", default=None,
                        choices=["sequential", "thread", "process"],
                        help="accepted for flag parity with 'service "
                             "query'; the executor backend is fixed by "
                             "the serving process ('server serve "
                             "--backend'), so this prints a notice and "
                             "is otherwise ignored")

    sstats = server_sub.add_parser(
        "stats", help="print a running server's lifetime counters"
    )
    sstats.add_argument("--host", default="127.0.0.1")
    sstats.add_argument("--port", type=int, default=7411)
    sstats.add_argument("--json", action="store_true",
                        help="print the raw stats payload as JSON")

    smetrics = server_sub.add_parser(
        "metrics",
        help="print a running server's metrics registry "
             "(Prometheus text by default)",
    )
    smetrics.add_argument("--host", default="127.0.0.1")
    smetrics.add_argument("--port", type=int, default=7411)
    smetrics.add_argument("--json", action="store_true",
                          help="print the JSON snapshot (with streaming "
                               "p50/p95/p99) instead of Prometheus text")

    slowlog = server_sub.add_parser(
        "slowlog", help="print a running server's slow-query log"
    )
    slowlog.add_argument("--host", default="127.0.0.1")
    slowlog.add_argument("--port", type=int, default=7411)
    slowlog.add_argument("--limit", type=int, default=None,
                         help="newest entries to fetch (default all kept)")
    slowlog.add_argument("--json", action="store_true",
                         help="print the raw slowlog payload as JSON")
    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    table = _EXPERIMENTS[args.name](args.scale)
    print(table.render())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.view.sql import SelectQuery, parse_statement

    statement = parse_statement(args.sql)
    if isinstance(statement, SelectQuery):
        raise InvalidParameterError(
            "the 'query' command runs CREATE VIEW statements over a "
            "dataset; use 'repro service query' for catalog-wide SELECT"
        )
    series = _load_dataset(args.data, args.scale, args.seed)
    table = Table(args.table, ["t", "r"])
    table.insert_many(zip(series.timestamps.tolist(), series.values.tolist()))
    db = Database()
    db.register_table(table)
    view = db.execute_query(statement)
    print(f"created {view!r}\n")
    rows = [
        [tup.t, tup.low, tup.high, tup.probability, tup.label]
        for tup in list(view)[: args.head]
    ]
    print(format_table(["t", "low", "high", "probability", "label"], rows))
    if len(view) > args.head:
        print(f"... ({len(view) - args.head} more tuples)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    series = _load_dataset(args.name, args.scale, args.seed)
    save_series_csv(series, args.output)
    print(f"wrote {len(series)} samples of {series.name!r} to {args.output}")
    return 0


def _cmd_arch_test(args: argparse.Namespace) -> int:
    series = _load_dataset(args.data, args.scale, args.seed)
    rows = []
    for m in range(1, args.max_lag + 1):
        result = rolling_arch_test(series, m, H=args.window,
                                   n_windows=max(int(1800 * args.scale), 40))
        rows.append([
            m, round(result.statistic, 3), round(result.critical_value, 3),
            result.reject_iid,
        ])
    print(format_table(
        ["m", "Phi(m)", "chi2_m(0.05)", "reject iid"], rows,
        title=f"ARCH test on {series.name} (H={args.window})",
    ))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import Catalog, StandingQuery
    from repro.view.omega import OmegaGrid

    if args.store_command == "init":
        catalog = Catalog(args.catalog, segment_layout=args.layout)
        handle = catalog.create_series(
            args.series,
            metric=args.metric,
            H=args.window,
            grid=OmegaGrid(delta=args.delta, n=args.n),
            cache_min_sigma=args.cache_min_sigma,
            cache_max_sigma=args.cache_max_sigma,
            cache_distance=args.cache_distance,
            cache_memory=args.cache_memory,
        )
        print(f"created {handle!r} in {args.catalog}")
        return 0

    if args.store_command == "ingest":
        series = _load_dataset(args.data, args.scale, args.seed)
        values = series.values
        if args.limit is not None:
            values = values[: args.limit]
        if args.batch < 1:
            raise InvalidParameterError(f"--batch must be >= 1, got {args.batch}")
        catalog = Catalog(args.catalog, create=False)
        fed = emitted = batches = 0
        for start in range(0, values.size, args.batch):
            result = catalog.append(args.series, values[start : start + args.batch])
            fed += result.fed
            emitted += result.emitted
            batches += 1
        handle = catalog.series(args.series)
        print(
            f"ingested {fed} values in {batches} micro-batches; emitted "
            f"{emitted} view times ({handle.tuple_count} tuples stored, "
            f"next t={handle.next_t})"
        )
        return 0

    if args.store_command == "synopsize":
        catalog = Catalog(args.catalog, create=False)
        written = catalog.synopsize(args.series)
        total = sum(written.values())
        for series_id in sorted(written):
            print(f"{series_id}: {written[series_id]} synopses written")
        print(
            f"backfilled {total} segment synopses across "
            f"{len(written)} series"
        )
        return 0

    if args.store_command == "query":
        catalog = Catalog(args.catalog, create=False)
        kind = args.kind.replace("-", "_")
        if kind == "threshold":
            query = StandingQuery.threshold_tuples(args.tau)
        elif kind == "exceedance":
            query = StandingQuery.exceedance(args.threshold)
        elif kind == "windowed_expected_value":
            query = StandingQuery.windowed_expected_value(args.qwindow)
        elif kind == "expected_time_above":
            query = StandingQuery.expected_time_above(args.threshold, args.qwindow)
        else:
            query = StandingQuery.sustained_exceedance(args.threshold, args.qwindow)
        handle = catalog.register_query(args.series, query)
        result = handle.result()
        print(f"{query.describe()} over series {args.series!r}:")
        if kind == "threshold":
            rows = [
                [tup.t, tup.low, tup.high, tup.probability, tup.label]
                for tup in result[: args.head]
            ]
            print(format_table(["t", "low", "high", "probability", "label"], rows))
        else:
            rows = [[t, round(v, 6)] for t, v in list(result.items())[: args.head]]
            print(format_table(["t", "value"], rows))
        if len(result) > args.head:
            print(f"... ({len(result) - args.head} more rows)")
        return 0

    catalog = Catalog(args.catalog, create=False)
    rows = [
        [
            info.get("series"), info.get("kind"), info.get("tuples"),
            info.get("segments"), info.get("metric", "-"),
            info.get("next_t", "-"),
        ]
        for info in (
            catalog.series(series_id).describe()
            for series_id in catalog.list_series()
        )
    ]
    print(format_table(
        ["series", "kind", "tuples", "segments", "metric", "next_t"], rows,
        title=f"catalog {args.catalog}",
    ))
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    from repro.service import CatalogQueryService, execute_select
    from repro.view.sql import (
        SelectQuery,
        SimulateQuery,
        parse_statement,
        with_as_of,
    )

    cache_budget = max(int(args.cache_mb * (1 << 20)), 1)
    pruning = not args.no_pruning
    statements = args.sql
    if args.as_of is not None:
        statements = [with_as_of(sql, args.as_of) for sql in statements]
    if len(statements) == 1:
        results = [execute_select(
            statements[0],
            max_workers=args.workers,
            cache_budget_bytes=cache_budget,
            backend=args.backend,
            pruning=pruning,
        )]
    else:
        # Several statements: one batched fan-out through a shared
        # service, so they dedupe and share the warm matrix cache.
        first = parse_statement(statements[0])
        if not isinstance(first, (SelectQuery, SimulateQuery)):
            raise InvalidParameterError(
                "the 'service query' command runs SELECT and SIMULATE "
                "statements; use 'repro query' for CREATE VIEW"
            )
        with CatalogQueryService(
            first.catalog_path,
            max_workers=args.workers,
            cache_budget_bytes=cache_budget,
            backend=args.backend,
            pruning=pruning,
        ) as service:
            if args.trace:
                # execute_many flattens every statement into one pool
                # pass, which leaves no per-statement trace; run the
                # batch statement-by-statement (still sharing the warm
                # cache) so each result carries its own trace block.
                results = [service.execute(sql) for sql in statements]
            else:
                results = service.execute_many(statements)
    for index, result in enumerate(results):
        if index:
            print()
        print(render_result(result.to_dict(), args.head))
        if args.stats and result.stats is not None:
            print()
            print(render_pruning(result.stats.as_dict()))
        if args.trace:
            if result.trace is None:
                print("\n(trace unavailable: instrumentation disabled)")
            else:
                print()
                _print_trace(result.trace.as_dict())
    return 0


def _print_trace(trace: dict) -> None:
    """Render a trace block (service- or server-side) as latency tables."""
    wall_ms = trace.get("wall_ms", 0.0)
    tags = [
        f"{key}={trace[key]}"
        for key in ("backend", "transport")
        if trace.get(key)
    ]
    suffix = f" ({', '.join(tags)})" if tags else ""
    print(f"trace: wall {wall_ms:.3f} ms{suffix}")
    stages = trace.get("stages", [])
    if stages:
        print(format_table(
            ["stage", "start_ms", "ms", "share"],
            [[span["name"], span["start_ms"], span["ms"],
              f"{span['ms'] / wall_ms:.1%}" if wall_ms else "-"]
             for span in stages],
        ))
    series = trace.get("series", [])
    if series:
        print("\nslowest series (load + compute):")
        print(format_table(
            ["series", "load_ms", "compute_ms", "cache"],
            [[span["series"], span["load_ms"], span["compute_ms"],
              "hit" if span["cache_hit"] else "miss"]
             for span in series],
        ))
        truncated = trace.get("series_truncated", 0)
        if truncated:
            print(f"... ({truncated} faster series not shown)")
    cache = trace.get("cache")
    if cache:
        print(
            f"cache: {cache.get('hits', 0)} hits, "
            f"{cache.get('misses', 0)} misses"
        )


def _cmd_server(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import Client, QueryServer

    if args.server_command == "serve":
        slow_kwargs = {}
        if args.slow_query_ms is not None:
            slow_kwargs["slow_query_ms"] = args.slow_query_ms
        server = QueryServer(
            args.catalog,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            coalesce=not args.no_coalesce,
            max_workers=args.workers,
            backend=args.backend,
            pruning=not args.no_pruning,
            cache_budget_bytes=max(int(args.cache_mb * (1 << 20)), 1),
            **slow_kwargs,
        )

        async def _serve() -> None:
            await server.start()
            host, port = server.address
            print(
                f"serving catalog {args.catalog} on {host}:{port} "
                f"(max_inflight={args.max_inflight}, "
                f"coalesce={not args.no_coalesce}, "
                f"backend={args.backend}); Ctrl-C to drain and stop",
                flush=True,
            )
            await server.run()
            print("drained in-flight work; server stopped", flush=True)

        # Ctrl-C cancels the serve task (the asyncio runner's SIGINT
        # handling); QueryServer.run drains in-flight statements in its
        # finally block, so the first interrupt is a clean exit.
        asyncio.run(_serve())
        return 0

    if args.server_command == "stats":
        with Client(args.host, args.port) as client:
            stats = client.stats()
            metrics = client.metrics()["metrics"]
        if args.json:
            from repro.server import canonical_dumps

            print(canonical_dumps(stats))
            return 0
        _print_server_stats(stats, metrics)
        return 0

    if args.server_command == "metrics":
        with Client(args.host, args.port) as client:
            payload = client.metrics()
        if args.json:
            from repro.server import canonical_dumps

            print(canonical_dumps(payload["metrics"]))
        else:
            print(payload["text"], end="")
        return 0

    if args.server_command == "slowlog":
        with Client(args.host, args.port) as client:
            payload = client.slowlog(args.limit)
        if args.json:
            from repro.server import canonical_dumps

            print(canonical_dumps(payload))
            return 0
        _print_server_slowlog(payload)
        return 0

    if args.backend is not None:
        print(
            "note: --backend is fixed by the serving process "
            "('server serve --backend'); ignoring",
            file=sys.stderr,
        )
    with Client(args.host, args.port) as client:
        result = client.query(args.sql, trace=args.trace, as_of=args.as_of)
    if args.json:
        from repro.server import canonical_dumps

        print(canonical_dumps(result))
        return 0
    print(render_result(result, args.head))
    if args.stats:
        pruning = result.get("pruning")
        print()
        if pruning:
            print(render_pruning(pruning))
        else:
            print("(pruning counters unavailable for this result kind)")
    if args.trace:
        trace = result.get("trace")
        print()
        if trace:
            _print_trace(trace)
        else:
            print("(trace unavailable: server instrumentation disabled)")
    return 0


def _print_server_stats(stats: dict, metrics: dict) -> None:
    """Render the stats payload plus latency histograms from metrics."""
    scalars = [
        [name, value] for name, value in sorted(stats.items())
        if not isinstance(value, dict)
    ]
    print(format_table(["counter", "value"], scalars, title="server"))
    for key, title in (
        ("pruning", "execution"),
        ("cache", "matrix cache"),
        ("transport", "result transport"),
    ):
        block = stats.get(key, {})
        if block:
            print()
            print(format_table(
                ["counter", "value"],
                [[name, block[name]] for name in sorted(block)],
                title=title,
            ))
    rows = []
    for name, family in sorted(metrics.items()):
        if family.get("type") != "histogram":
            continue
        for label_text, sample in family.get("values", {}).items():
            rows.append([
                name, label_text or "-", sample.get("count", 0),
                _fmt_quantile(sample.get("p50")),
                _fmt_quantile(sample.get("p95")),
                _fmt_quantile(sample.get("p99")),
            ])
    if rows:
        print()
        print(format_table(
            ["histogram", "labels", "count", "p50_ms", "p95_ms", "p99_ms"],
            rows, title="latency histograms",
        ))


def _fmt_quantile(seconds) -> str:
    """A histogram quantile (seconds or None) as milliseconds text."""
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:.3f}"


def _print_server_slowlog(payload: dict) -> None:
    print(
        f"slow-query log: threshold {payload.get('threshold_ms')} ms, "
        f"{payload.get('recorded', 0)}/{payload.get('observed', 0)} "
        f"queries recorded"
    )
    entries = payload.get("entries", [])
    if not entries:
        print("(no queries over the threshold)")
        return
    print(format_table(
        ["wall_ms", "statement", "stages"],
        [[entry.get("wall_ms"),
          (entry.get("statement") or "<unknown>")[:60],
          ", ".join(
              f"{name}={ms:.1f}"
              for name, ms in sorted(
                  entry.get("stages", {}).items(),
                  key=lambda item: -item[1],
              )[:4]
          )]
         for entry in entries],
    ))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "query": _cmd_query,
        "generate": _cmd_generate,
        "arch-test": _cmd_arch_test,
        "store": _cmd_store,
        "service": _cmd_service,
        "server": _cmd_server,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # Ctrl-C mid-query or while serving: the asyncio runner / executor
        # has already unwound (draining in-flight work on the way out);
        # exit with the conventional 130, never a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # Missing CSV paths, unwritable outputs, unreadable catalogs...
        # one-line diagnostics, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py.
    sys.exit(main())
