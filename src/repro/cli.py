"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the workflows a user reaches for first:

* ``experiment`` — run one reproduced paper experiment and print its table
  (``python -m repro experiment fig14 --scale 0.1``);
* ``query`` — execute a ``CREATE VIEW ... AS DENSITY ...`` statement over a
  generated or CSV dataset and print the resulting view head;
* ``generate`` — write a synthetic dataset to CSV;
* ``arch-test`` — run the Fig. 15 volatility check on a dataset.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.data.loaders import load_series_csv, save_series_csv
from repro.data.synthetic import campus_humidity, make_dataset
from repro.db.engine import Database
from repro.db.table import Table
from repro.evaluation.volatility_test import rolling_arch_test
from repro.exceptions import ReproError
from repro.experiments import (
    run_fig04,
    run_fig05,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14a,
    run_fig14b,
    run_fig15,
    run_table02,
)
from repro.experiments.ablation import run_ablation
from repro.timeseries.series import TimeSeries
from repro.util.tables import format_table

__all__ = ["main", "build_parser"]

_EXPERIMENTS: dict[str, Callable] = {
    "table2": run_table02,
    "fig4": run_fig04,
    "fig5": run_fig05,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14a": run_fig14a,
    "fig14b": run_fig14b,
    "fig15": run_fig15,
    "ablation": run_ablation,
}

_DATASETS = ("campus", "car", "humidity")


def _load_dataset(name: str, scale: float, seed: int) -> TimeSeries:
    if name.endswith(".csv"):
        return load_series_csv(name)
    if name == "humidity":
        n = max(int(18031 * scale), 400)
        return campus_humidity(n, rng=seed)
    return make_dataset(name, scale=scale, rng=seed)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Probabilistic databases from imprecise time-series data "
            "(ICDE 2011 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run one reproduced experiment")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--scale", type=float, default=None,
                     help="workload scale in (0, 1]; default REPRO_SCALE or 0.08")

    query = sub.add_parser("query", help="execute a view-generation query")
    query.add_argument("sql", help="CREATE VIEW ... AS DENSITY ... statement")
    query.add_argument("--data", default="campus",
                       help="dataset name (campus/car/humidity) or a CSV path")
    query.add_argument("--table", default="raw_values",
                       help="name to register the data under")
    query.add_argument("--scale", type=float, default=0.08)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--head", type=int, default=12,
                       help="number of view tuples to print")

    gen = sub.add_parser("generate", help="write a synthetic dataset to CSV")
    gen.add_argument("name", choices=_DATASETS)
    gen.add_argument("output", help="destination CSV path")
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=0)

    arch = sub.add_parser("arch-test", help="Engle ARCH test (Fig. 15 protocol)")
    arch.add_argument("--data", default="campus")
    arch.add_argument("--scale", type=float, default=0.08)
    arch.add_argument("--seed", type=int, default=0)
    arch.add_argument("--max-lag", type=int, default=8)
    arch.add_argument("--window", type=int, default=180)
    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    table = _EXPERIMENTS[args.name](args.scale)
    print(table.render())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    series = _load_dataset(args.data, args.scale, args.seed)
    table = Table(args.table, ["t", "r"])
    table.insert_many(zip(series.timestamps.tolist(), series.values.tolist()))
    db = Database()
    db.register_table(table)
    view = db.execute(args.sql)
    print(f"created {view!r}\n")
    rows = [
        [tup.t, tup.low, tup.high, tup.probability, tup.label]
        for tup in list(view)[: args.head]
    ]
    print(format_table(["t", "low", "high", "probability", "label"], rows))
    if len(view) > args.head:
        print(f"... ({len(view) - args.head} more tuples)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    series = _load_dataset(args.name, args.scale, args.seed)
    save_series_csv(series, args.output)
    print(f"wrote {len(series)} samples of {series.name!r} to {args.output}")
    return 0


def _cmd_arch_test(args: argparse.Namespace) -> int:
    series = _load_dataset(args.data, args.scale, args.seed)
    rows = []
    for m in range(1, args.max_lag + 1):
        result = rolling_arch_test(series, m, H=args.window,
                                   n_windows=max(int(1800 * args.scale), 40))
        rows.append([
            m, round(result.statistic, 3), round(result.critical_value, 3),
            result.reject_iid,
        ])
    print(format_table(
        ["m", "Phi(m)", "chi2_m(0.05)", "reject iid"], rows,
        title=f"ARCH test on {series.name} (H={args.window})",
    ))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "query": _cmd_query,
        "generate": _cmd_generate,
        "arch-test": _cmd_arch_test,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py.
    sys.exit(main())
