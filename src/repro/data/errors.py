"""Erroneous-value injection (paper Section VII-B).

For the C-GARCH evaluation the paper "inserts a pre-specified number of
very high (or very low) values uniformly at random in the data".  This
module reproduces that procedure, returning both the corrupted series and
the injected indices so detection rates can be scored exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.timeseries.series import TimeSeries
from repro.util.rng import ensure_rng

__all__ = ["InjectionResult", "inject_errors"]


@dataclass(frozen=True)
class InjectionResult:
    """The corrupted series plus ground truth about the corruption."""

    series: TimeSeries
    error_indices: np.ndarray
    original_values: np.ndarray


def inject_errors(
    series: TimeSeries,
    count: int,
    *,
    magnitude: float = 10.0,
    max_burst: int = 1,
    rng: int | np.random.Generator | None = None,
    protect_prefix: int = 0,
) -> InjectionResult:
    """Insert ``count`` erroneous values uniformly at random into ``series``.

    Each corrupted value is replaced by a spike displaced from the series
    mean by ``magnitude`` sample standard deviations, with random sign —
    the "very high (or very low) values" of the paper's Section VII-B.

    ``max_burst`` controls the failure model: 1 (default) gives isolated
    spikes; larger values group the ``count`` corrupted positions into runs
    of 1..``max_burst`` *consecutive* values sharing one sign (a sensor
    stuck or a communication drop), which is the failure shape the paper's
    C-GARCH guideline assumes — it recommends setting ``oc_max`` to "twice
    the length of the longest sequence of erroneous values".

    Spikes never land in the first ``protect_prefix`` positions, so
    experiments can keep the warm-up window (used to learn ``SVmax``)
    clean, as the paper's protocol requires.

    >>> from repro.data.synthetic import campus_temperature
    >>> result = inject_errors(campus_temperature(500, rng=0), 5, rng=1)
    >>> len(result.error_indices)
    5
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    if magnitude <= 0:
        raise InvalidParameterError(f"magnitude must be > 0, got {magnitude}")
    if max_burst < 1:
        raise InvalidParameterError(f"max_burst must be >= 1, got {max_burst}")
    if protect_prefix < 0:
        raise InvalidParameterError(
            f"protect_prefix must be >= 0, got {protect_prefix}"
        )
    n = len(series)
    eligible = n - protect_prefix
    if count > eligible:
        raise InvalidParameterError(
            f"cannot inject {count} errors into {eligible} eligible positions"
        )
    generator = ensure_rng(rng)
    taken: set[int] = set()
    signs_by_index: dict[int, float] = {}
    attempts = 0
    while len(taken) < count and attempts < 10000:
        attempts += 1
        length = int(generator.integers(1, max_burst + 1))
        length = min(length, count - len(taken))
        start = int(protect_prefix + generator.integers(0, eligible))
        burst = range(start, min(start + length, n))
        # Reject bursts that touch (or nearly touch) an existing one: two
        # adjacent bursts would merge into a run longer than max_burst,
        # breaking the paper's "oc_max = 2x longest error sequence"
        # guideline that callers size oc_max by.
        guard = range(max(start - 2, 0), min(start + length + 2, n))
        if any(i in taken for i in guard):
            continue
        sign = float(generator.choice((-1.0, 1.0)))
        for i in burst:
            taken.add(i)
            signs_by_index[i] = sign
    if len(taken) < count:
        raise InvalidParameterError(
            f"could not place {count} errors (series too short or too "
            f"corrupted already); placed {len(taken)}"
        )
    indices = np.sort(np.fromiter(taken, dtype=int))
    values = series.values.copy()
    center = float(np.mean(values))
    spread = float(np.std(values, ddof=1))
    if spread <= 0:
        spread = max(abs(center), 1.0)
    originals = values[indices].copy()
    signs = np.array([signs_by_index[int(i)] for i in indices])
    # Mild per-value magnitude jitter so spikes are not all identical.
    scales = magnitude * (1.0 + 0.25 * generator.uniform(size=indices.size))
    values[indices] = center + signs * scales * spread
    corrupted = series.with_values(values, name=f"{series.name}+errors")
    return InjectionResult(
        series=corrupted,
        error_indices=indices,
        original_values=originals,
    )
