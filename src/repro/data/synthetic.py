"""Synthetic stand-ins for the paper's two real datasets (Table II).

``campus_temperature`` — ambient temperature from a campus sensor network:
25 days at one sample per 2 minutes (18 031 samples at full scale).  The
generator layers

* a diurnal cycle with sharp sunrise/sunset transitions (the paper's
  motivation for trend-change handling in C-GARCH),
* a slow random weather drift across days,
* GARCH(1,1) innovations whose volatility is amplified around sunrise and
  sunset (the "Region A vs Region B" volatility regimes of Fig. 4), and
* Gaussian sensor noise at the documented +/- 0.3 deg C accuracy.

``car_gps`` — the x-coordinate of a car driving in a city: piecewise
constant-velocity segments separated by stops and turns (traffic lights),
sampled every 1-2 s (10 473 samples at full scale) with +/- 10 m GPS noise.
Speed changes induce mild volatility clustering — enough for the ARCH test
to reject i.i.d. errors, but much closer to the critical value than
campus-data, matching the paper's Fig. 15(b).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.timeseries.series import TimeSeries
from repro.util.rng import ensure_rng

__all__ = ["campus_temperature", "campus_humidity", "car_gps", "make_dataset"]

#: Full-scale sample counts from the paper's Table II.
CAMPUS_SAMPLES = 18031
CAR_SAMPLES = 10473

#: Sampling intervals from Table II.
CAMPUS_INTERVAL_SECONDS = 120.0  # One sample per 2 minutes.
CAR_INTERVAL_CHOICES = (1.0, 2.0)  # 1-2 seconds, mixed.

#: Sensor accuracies from Table II.
CAMPUS_ACCURACY = 0.3  # deg C
CAR_ACCURACY = 10.0  # metres


def campus_temperature(
    n: int = CAMPUS_SAMPLES,
    rng: int | np.random.Generator | None = None,
) -> TimeSeries:
    """Synthetic campus-data: ambient temperature, 2-minute sampling.

    >>> series = campus_temperature(n=2000, rng=0)
    >>> len(series), series.name
    (2000, 'campus-data')
    """
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    generator = ensure_rng(rng)
    timestamps = np.arange(n, dtype=float) * CAMPUS_INTERVAL_SECONDS
    day_seconds = 86400.0
    phase = 2.0 * np.pi * (timestamps % day_seconds) / day_seconds

    # Diurnal cycle: coldest pre-dawn, warmest mid-afternoon.  The squared
    # cosine term sharpens the sunrise/sunset flanks so temperature changes
    # "dramatically around sunrise and sunset, but only slightly during the
    # night" (paper Section I).
    diurnal = 6.0 * np.sin(phase - 2.2) + 2.0 * np.sin(2.0 * phase - 1.0)

    # Slow weather drift: integrated noise across the whole record, smoothed.
    daily_steps = max(int(day_seconds / CAMPUS_INTERVAL_SECONDS), 1)
    drift = np.cumsum(generator.normal(0.0, 0.35 / daily_steps, size=n))
    kernel_width = min(61, n if n % 2 == 1 else n - 1)
    kernel = np.ones(kernel_width) / kernel_width
    drift = np.convolve(drift, kernel, mode="same")

    # GARCH(1,1) innovations with diurnally modulated scale: volatility is
    # highest on the steep flanks of the diurnal cycle (|d diurnal/dt| max),
    # producing the regimes of Fig. 4(a).
    flank = np.abs(np.gradient(diurnal))
    flank = flank / max(float(np.max(flank)), 1e-12)
    base_scale = 0.08 + 0.5 * flank  # Quiet nights, volatile transitions.
    epsilon = generator.standard_normal(n)
    shocks = np.empty(n)
    variance = 1.0
    for i in range(n):
        if i > 0:
            variance = 0.05 + 0.25 * (shocks[i - 1] / base_scale[i - 1]) ** 2 + 0.70 * variance
        shocks[i] = base_scale[i] * np.sqrt(variance) * epsilon[i]

    noise = generator.normal(0.0, CAMPUS_ACCURACY / 3.0, size=n)
    values = 14.0 + diurnal + drift + shocks + noise
    return TimeSeries(values, timestamps, name="campus-data")


def campus_humidity(
    n: int = CAMPUS_SAMPLES,
    rng: int | np.random.Generator | None = None,
) -> TimeSeries:
    """Synthetic relative humidity from the same campus deployment.

    The paper's Fig. 4(b) shows relative humidity with volatility regimes
    that change more slowly than temperature's.  Humidity is generated as
    roughly anti-correlated with the diurnal temperature cycle (warm
    afternoons are dry), with smoother volatility modulation, and clamped
    to the physical [5, 100] %% range.

    >>> series = campus_humidity(n=2000, rng=0)
    >>> bool((series.values >= 5).all() and (series.values <= 100).all())
    True
    """
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    generator = ensure_rng(rng)
    timestamps = np.arange(n, dtype=float) * CAMPUS_INTERVAL_SECONDS
    day_seconds = 86400.0
    phase = 2.0 * np.pi * (timestamps % day_seconds) / day_seconds
    # Anti-phase with the afternoon temperature peak.
    diurnal = -12.0 * np.sin(phase - 2.2)
    daily_steps = max(int(day_seconds / CAMPUS_INTERVAL_SECONDS), 1)
    drift = np.cumsum(generator.normal(0.0, 1.2 / daily_steps, size=n))
    kernel_width = min(121, n if n % 2 == 1 else n - 1)
    kernel = np.ones(kernel_width) / kernel_width
    drift = np.convolve(drift, kernel, mode="same")
    # Volatility regimes driven by a slow random switch (weather fronts)
    # rather than the sharp diurnal flanks of temperature.
    regime = np.cumsum(generator.normal(0.0, 0.02, size=n))
    regime = np.convolve(regime, kernel, mode="same")
    regime = regime - regime.min()
    peak = max(float(regime.max()), 1e-9)
    scale = 0.3 + 1.7 * regime / peak  # Quiet vs frontal-passage noise.
    shocks = scale * generator.standard_normal(n)
    values = np.clip(62.0 + diurnal + drift + shocks, 5.0, 100.0)
    return TimeSeries(values, timestamps, name="campus-humidity")


def car_gps(
    n: int = CAR_SAMPLES,
    rng: int | np.random.Generator | None = None,
) -> TimeSeries:
    """Synthetic car-data: GPS x-coordinates of city driving.

    >>> series = car_gps(n=1000, rng=0)
    >>> len(series), series.name
    (1000, 'car-data')
    """
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    generator = ensure_rng(rng)
    intervals = generator.choice(CAR_INTERVAL_CHOICES, size=n)
    timestamps = np.concatenate(([0.0], np.cumsum(intervals[:-1])))

    # Drive model: alternate cruise segments (roughly constant x-velocity
    # with small jitter) and stops (zero velocity).  Turns flip the sign or
    # rescale the velocity, so the x-coordinate shows the piecewise-linear
    # trend a real urban trace has.
    velocity = np.empty(n)
    index = 0
    current = generator.normal(0.0, 8.0)
    while index < n:
        if generator.uniform() < 0.25:
            length = int(generator.integers(10, 60))  # Stop at a light.
            segment_velocity = 0.0
        else:
            length = int(generator.integers(30, 180))  # Cruise segment.
            segment_velocity = generator.normal(0.0, 8.0)
            if abs(segment_velocity) < 1.0:
                segment_velocity = 1.0 if current >= 0 else -1.0
        stop = min(index + length, n)
        velocity[index:stop] = segment_velocity
        current = segment_velocity
        index = stop
    # Within-segment jitter (driver speed adjustments) — the source of the
    # mild volatility clustering.
    velocity = velocity + generator.normal(0.0, 0.6, size=n)

    position = np.cumsum(velocity * intervals)
    noise = generator.normal(0.0, CAR_ACCURACY / 3.0, size=n)
    values = position + noise
    return TimeSeries(values, timestamps, name="car-data")


def make_dataset(
    name: str,
    scale: float = 1.0,
    rng: int | np.random.Generator | None = None,
) -> TimeSeries:
    """Generate ``campus`` or ``car`` data at a fraction of full size.

    ``scale`` in ``(0, 1]`` multiplies the Table II sample counts; the
    experiment harness uses it to keep laptop runs tractable
    (``REPRO_SCALE`` environment variable).
    """
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    key = name.lower().replace("_", "-").removesuffix("-data")
    if key == "campus":
        return campus_temperature(max(int(CAMPUS_SAMPLES * scale), 400), rng=rng)
    if key == "car":
        return car_gps(max(int(CAR_SAMPLES * scale), 400), rng=rng)
    raise InvalidParameterError(
        f"unknown dataset {name!r}; use 'campus' or 'car'"
    )
