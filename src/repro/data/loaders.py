"""Series persistence and Table II style dataset summaries."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.synthetic import (
    CAMPUS_ACCURACY,
    CAR_ACCURACY,
    make_dataset,
)
from repro.exceptions import DataError
from repro.timeseries.series import TimeSeries

__all__ = ["save_series_csv", "load_series_csv", "dataset_summary"]


def save_series_csv(series: TimeSeries, path: str | Path) -> None:
    """Write ``series`` as a two-column ``time,value`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "value"])
        for time, value in zip(series.timestamps, series.values):
            writer.writerow([repr(float(time)), repr(float(value))])


def load_series_csv(path: str | Path, name: str | None = None) -> TimeSeries:
    """Read a series written by :func:`save_series_csv`."""
    path = Path(path)
    times: list[float] = []
    values: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        if header != ["time", "value"]:
            raise DataError(f"{path} does not look like a series file: {header}")
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            values.append(float(row[1]))
    if not values:
        raise DataError(f"{path} holds no samples")
    return TimeSeries(np.array(values), np.array(times), name=name or path.stem)


def dataset_summary(scale: float = 1.0, rng_seed: int = 0) -> list[dict[str, object]]:
    """Rows mirroring the paper's Table II for the synthetic datasets.

    Each row reports the monitored parameter, sample count, nominal sensor
    accuracy and observed median sampling interval.
    """
    campus = make_dataset("campus", scale=scale, rng=rng_seed)
    car = make_dataset("car", scale=scale, rng=rng_seed + 1)
    rows: list[dict[str, object]] = []
    for series, parameter, accuracy, unit in (
        (campus, "Temperature", CAMPUS_ACCURACY, "deg C"),
        (car, "GPS Position", CAR_ACCURACY, "m"),
    ):
        summary = series.summary()
        rows.append(
            {
                "dataset": series.name,
                "monitored": parameter,
                "samples": summary.count,
                "accuracy": f"+/- {accuracy} {unit}",
                "median_interval_s": summary.median_interval,
                "mean": round(summary.mean, 3),
                "std": round(summary.std, 3),
            }
        )
    return rows
