"""Dataset generation and loading.

The paper evaluates on two proprietary datasets (Table II): EPFL campus
ambient temperature and Copenhagen car GPS logs.  Neither is public, so
this package provides synthetic generators that reproduce the statistical
properties the paper's experiments depend on — see DESIGN.md for the
substitution argument — plus the error-injection procedure of Section VII-B
and CSV loaders.
"""

from repro.data.errors import inject_errors
from repro.data.loaders import dataset_summary, load_series_csv, save_series_csv
from repro.data.synthetic import campus_temperature, car_gps, make_dataset

__all__ = [
    "campus_temperature",
    "car_gps",
    "dataset_summary",
    "inject_errors",
    "load_series_csv",
    "make_dataset",
    "save_series_csv",
]
