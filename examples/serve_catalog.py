"""Serving a catalog over the network: server, client, raw sockets.

The walkthrough builds a small persistent catalog, starts the asyncio
query server on a background thread (exactly what ``python -m repro
server serve <catalog>`` runs in the foreground), and then queries it
three ways:

1. the unified front door — ``repro.connect("tcp://host:port")`` —
   whose uniform result object is bit-identical to the local routes;
2. a raw socket speaking the newline-delimited JSON protocol by hand —
   the same bytes ``nc 127.0.0.1 7411`` would send;
3. many concurrent clients issuing the *same* statement, to show request
   coalescing doing the catalog's work once;
4. the observability surfaces: a traced query's stage-latency table,
   the Prometheus-style ``{"op": "metrics"}`` scrape, and the
   slow-query log.

It finishes by restarting the server on the **process executor backend**
(``--backend process`` on the CLI): per-statement fan-out runs on
spawn-started worker processes with zero-copy mmap segment reads —
the multi-core path for CPU-bound aggregates — and returns bit-identical
results.

Run with::

    PYTHONPATH=src python examples/serve_catalog.py
"""

from __future__ import annotations

import json
import socket
import tempfile
import threading
from pathlib import Path

import numpy as np

import repro
from repro.server import Client, QueryServer, ServerThread
from repro.store import Catalog
from repro.view.omega import OmegaGrid


def build_catalog(root: Path) -> Catalog:
    """A few plant-floor temperature series with drifting baselines.

    Layout v2 stores each segment as uncompressed ``.npy`` columns, the
    format the process backend memory-maps zero-copy.
    """
    catalog = Catalog(root, segment_layout="v2")
    rng = np.random.default_rng(0)
    for index in range(6):
        series_id = f"plant-{index}"
        catalog.create_series(
            series_id,
            metric="variable_threshold",
            H=40,
            grid=OmegaGrid(delta=0.5, n=8),
        )
        values = 20.0 + 0.1 * index + np.cumsum(
            rng.normal(0.0, 0.08, size=160)
        )
        catalog.append(series_id, values)
    return catalog


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="serve_catalog_"))
    catalog = build_catalog(workdir / "catalog")
    statement = (
        f"SELECT exceedance(21.0) FROM CATALOG '{catalog.root}' TOP 3"
    )

    server = QueryServer(catalog.root, port=0, max_inflight=8)
    with ServerThread(server) as (host, port):
        print(f"server listening on {host}:{port}\n")

        # -- 1. The unified front door. --------------------------------
        # The same repro.connect() that opens in-memory engines and local
        # catalog services also speaks tcp:// — the uniform result object
        # serializes bit-identically to the local routes.
        with repro.connect(f"tcp://{host}:{port}") as conn:
            result = conn.execute(statement)
            print("hottest series by P(value > 21.0) "
                  f"(kind: {result.kind}):")
            for entry in result.to_dict()["results"]:
                print(f"  {entry['series']}: max_p={entry['score']:.4f}")
            result = result.to_dict()

        # -- 2. Raw sockets: the protocol is one JSON object per line. -
        with socket.create_connection((host, port)) as sock:
            stream = sock.makefile("rwb")
            frame = {"id": 1, "statement": statement}
            stream.write(json.dumps(frame).encode() + b"\n")
            stream.flush()
            response = json.loads(stream.readline())
            print(
                f"\nraw-socket response: ok={response['ok']}, "
                f"{len(response['result']['results'])} series"
            )

        # -- 3. Concurrent identical statements coalesce. --------------
        def poll() -> None:
            with Client(host, port) as poller:
                for _ in range(10):
                    poller.query(statement)

        threads = [threading.Thread(target=poll) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with Client(host, port) as observer:
            stats = observer.stats()
        print(
            f"\n40 polling requests: executed {stats['executed']}, "
            f"coalesced {stats['coalesced']} "
            f"(cache: {stats['cache']['entries']} views resident)"
        )

        # -- 4. Observability: trace, metrics scrape, slow log. --------
        with Client(host, port) as client:
            traced = client.query(statement, trace=True)
            trace = traced["trace"]
            print(
                f"\nwhere {trace['wall_ms']:.2f} ms of wall time went "
                f"(backend={trace['backend']}):"
            )
            for span in trace["stages"]:
                share = span["ms"] / trace["wall_ms"]
                print(
                    f"  {span['name']:<10} {span['ms']:8.3f} ms  "
                    f"{'#' * round(40 * share)}"
                )

            metrics = client.metrics()
            latency = metrics["metrics"]["repro_query_seconds"]["values"]
            print("\nper-aggregate latency (streaming quantiles):")
            for labels, sample in latency.items():
                print(
                    f"  {labels}: n={sample['count']}, "
                    f"p50={sample['p50'] * 1e3:.2f} ms, "
                    f"p99={sample['p99'] * 1e3:.2f} ms"
                )
            scrape = metrics["text"].splitlines()
            print(
                f"\nPrometheus exposition: {len(scrape)} lines, e.g. "
                f"{scrape[-1]!r}"
            )

            slowlog = client.slowlog(limit=3)
            print(
                f"slow-query log (threshold "
                f"{slowlog['threshold_ms']:.0f} ms): "
                f"{slowlog['recorded']}/{slowlog['observed']} recorded"
            )
        baseline = result
    print("\nserver drained and stopped")

    # -- 5. The process backend: multi-core fan-out, same answers. -----
    # Equivalent CLI:  python -m repro server serve <catalog> --backend
    # process.  Worker processes spawn once, keep per-worker warm caches,
    # and mmap the v2 segments read-only.
    server = QueryServer(
        catalog.root, port=0, max_inflight=8, backend="process"
    )
    with ServerThread(server) as (host, port):
        with Client(host, port) as client:
            result = client.query(statement)
            stats = client.stats()
        assert result == baseline  # Bit-identical across backends.
        print(
            f"\nprocess backend ({stats['backend']}): same top series, "
            "bit-identical result"
        )
    print("process-backend server drained and stopped")


if __name__ == "__main__":
    main()
