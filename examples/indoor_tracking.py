"""Indoor tracking: the paper's motivating Alice example (Fig. 1).

Alice walks through a 2x2 grid of rooms while an indoor-positioning system
records noisy (x, y) fixes.  Each axis gets its own dynamic density metric;
the per-room probability is the product of the axis range probabilities
(axis noise is independent), giving exactly the ``prob_view`` table of the
paper's Fig. 1: P(Alice in room k) per timestamp.

Run:  python examples/indoor_tracking.py
"""

import numpy as np

from repro import TimeSeries, VariableThresholdingMetric, ViewBuilder
from repro.view.omega import OmegaRange

#: Rooms of Fig. 1: a 2x2 grid, four metres per side.
ROOMS = {
    "room 1": ((0.0, 2.0), (2.0, 4.0)),  # x-range, y-range (top-left).
    "room 2": ((2.0, 4.0), (2.0, 4.0)),
    "room 3": ((0.0, 2.0), (0.0, 2.0)),
    "room 4": ((2.0, 4.0), (0.0, 2.0)),
}


def simulate_walk(n: int, rng: np.random.Generator) -> tuple[TimeSeries, TimeSeries]:
    """Alice strolls from room 3 to room 2 with noisy position fixes."""
    path_x = np.linspace(0.8, 3.0, n)
    path_y = np.linspace(0.9, 3.2, n)
    noise = 0.18  # Indoor positioning error (metres).
    x = path_x + rng.normal(0.0, noise, n)
    y = path_y + rng.normal(0.0, noise, n)
    return TimeSeries(x, name="alice-x"), TimeSeries(y, name="alice-y")


def room_probabilities(
    x_series: TimeSeries, y_series: TimeSeries, H: int = 30
) -> list[dict[str, float]]:
    """Per-time room probabilities from two independent axis metrics."""
    metric_x = VariableThresholdingMetric()
    metric_y = VariableThresholdingMetric()
    forecasts_x = metric_x.run(x_series, H)
    forecasts_y = metric_y.run(y_series, H)
    rows = []
    for fx, fy in zip(forecasts_x, forecasts_y):
        row: dict[str, float] = {"t": fx.t}
        for room, ((x_lo, x_hi), (y_lo, y_hi)) in ROOMS.items():
            px = ViewBuilder.probabilities_for_ranges(
                fx, [OmegaRange(x_lo, x_hi, label="x")]
            )["x"]
            py = ViewBuilder.probabilities_for_ranges(
                fy, [OmegaRange(y_lo, y_hi, label="y")]
            )["y"]
            row[room] = px * py  # Independent axis noise.
        rows.append(row)
    return rows


def main() -> None:
    rng = np.random.default_rng(11)
    x_series, y_series = simulate_walk(200, rng)
    rows = room_probabilities(x_series, y_series)

    print("prob_view (every 30th timestamp):")
    print(f"{'t':>5}  " + "  ".join(f"{room:>7}" for room in ROOMS))
    for row in rows[::30]:
        cells = "  ".join(f"{row[room]:7.3f}" for room in ROOMS)
        print(f"{row['t']:5d}  {cells}")

    first, last = rows[0], rows[-1]
    start_room = max(ROOMS, key=lambda r: first[r])
    end_room = max(ROOMS, key=lambda r: last[r])
    print(f"\nAlice most likely started in {start_room} "
          f"(p={first[start_room]:.2f}) and ended in {end_room} "
          f"(p={last[end_room]:.2f})")


if __name__ == "__main__":
    main()
