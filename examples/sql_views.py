"""SQL-like probabilistic view generation (the paper's offline mode, Fig. 7).

Opens an in-memory connection through the unified ``repro.connect()``
front door, registers a raw-values table with the underlying engine, and
creates probabilistic views declaratively, including the paper's own
Fig. 7 query shape, a cached variant, and downstream probabilistic
queries over the result.

Run:  python examples/sql_views.py
"""

import repro
from repro import Table, campus_temperature, threshold_query
from repro.db.queries import expected_value_query


def main() -> None:
    series = campus_temperature(n=800, rng=5)
    table = Table("raw_values", ["t", "r"])
    table.insert_many(zip(series.timestamps.tolist(), series.values.tolist()))

    # connect() with no target opens the in-memory engine; the Database
    # itself stays reachable for table registration.
    conn = repro.connect()
    db = conn.database
    db.register_table(table)
    print(f"registered {table!r}")

    # The paper's Fig. 7 query, extended with metric/window/cache clauses.
    query = """
        CREATE VIEW prob_view AS DENSITY r OVER t
            OMEGA delta=0.5, n=12
            METRIC arma_garch (p=1, kappa=3.0)
            WINDOW 60
            CACHE (distance=0.01)
        FROM raw_values
        WHERE t >= 0 AND t <= 40000
    """
    result = conn.execute(query)       # kind == "view"
    view = result.view
    print(f"created {view!r} (result kind: {result.kind})")

    # Threshold query (Cheng et al. style): which (time, range) tuples
    # carry at least 35% probability?
    confident = threshold_query(view, tau=0.35)
    print(f"\n{len(confident)} tuples with probability >= 0.35; first five:")
    for tup in confident[:5]:
        print(
            f"  t={tup.t:4d}  [{tup.low:6.2f}, {tup.high:6.2f}]  "
            f"p={tup.probability:.3f}"
        )

    # Expected value per time, computed from the view alone.
    expectations = expected_value_query(view)
    sample_times = view.times[:3]
    print("\nexpected temperature from the view vs raw value:")
    for t in sample_times:
        print(f"  t={t:4d}  E[R_t]={expectations[t]:6.2f}  raw={series[t]:6.2f}")

    # A second, uniform-metric view over a restricted time range shows the
    # WHERE clause and metric swapping.
    conn.execute(
        "CREATE VIEW ut_view AS DENSITY r OVER t OMEGA delta=1, n=4 "
        "METRIC ut (threshold=0.3) WINDOW 40 FROM raw_values "
        "WHERE t BETWEEN 12000 AND 60000"
    )
    print(f"\ncatalog: tables={db.list_tables()} views={db.list_views()}")


if __name__ == "__main__":
    main()
