"""Sensor cleaning: C-GARCH vs plain ARMA-GARCH on erroneous values.

Reproduces the story of the paper's Section V / Fig. 5 on a corrupted
temperature stream: plain ARMA-GARCH's inferred bounds explode after a
spike enters its training window, while C-GARCH detects the spikes online,
replaces them with inferred values, and re-adjusts through genuine trend
changes.

Run:  python examples/sensor_cleaning.py
"""

import numpy as np

from repro import ARMAGARCHMetric, CGARCHMetric, campus_temperature, inject_errors

H = 50


def main() -> None:
    clean = campus_temperature(n=900, rng=3)
    injection = inject_errors(
        clean, count=8, magnitude=10.0, max_burst=3, rng=4,
        protect_prefix=H + 1,
    )
    corrupted = injection.series
    print(
        f"injected {injection.error_indices.size} erroneous values "
        f"(bursts up to 3) at indices {injection.error_indices.tolist()}"
    )

    # Plain ARMA-GARCH: no cleaning, volatility blows up (Fig. 5a).
    plain = ARMAGARCHMetric(kappa=3.0).run(corrupted, H)
    plain_widths = np.array([f.upper - f.lower for f in plain])

    # C-GARCH: online detection + replacement + trend handling (Fig. 5b).
    # SVmax is learned from a clean sample, exactly as the paper
    # prescribes ("using a sample of size T of clean data").
    oc_max = 8
    sv_max = CGARCHMetric.learn_sv_max(clean.values[:300], oc_max)
    cgarch = CGARCHMetric(kappa=3.0, oc_max=oc_max, sv_max=sv_max)
    cg_forecasts, report = cgarch.run_with_report(corrupted, H)
    cg_widths = np.array([f.upper - f.lower for f in cg_forecasts])

    print("\ninferred 3-sigma bound widths (deg C):")
    print(f"  {'model':12} {'median':>8} {'p99':>8} {'max':>9}")
    for name, widths in (("ARMA-GARCH", plain_widths), ("C-GARCH", cg_widths)):
        print(
            f"  {name:12} {np.median(widths):8.2f} "
            f"{np.percentile(widths, 99):8.2f} {np.max(widths):9.2f}"
        )

    detected = set(report.flagged) & set(injection.error_indices.tolist())
    rate = 100.0 * len(detected) / injection.error_indices.size
    print(f"\nC-GARCH detected {len(detected)}/{injection.error_indices.size} "
          f"injected errors ({rate:.0f}%)")
    print(f"trend changes recognised: {len(report.trend_changes)}")

    # Cleaning quality: the cleaned values at spike positions are close to
    # the uncorrupted truth.
    errors_before = np.abs(
        corrupted.values[injection.error_indices]
        - clean.values[injection.error_indices]
    )
    errors_after = np.abs(
        report.cleaned[injection.error_indices]
        - clean.values[injection.error_indices]
    )
    print(
        f"mean |error| at spike positions: {errors_before.mean():.2f} deg C "
        f"before cleaning -> {errors_after.mean():.2f} deg C after"
    )


if __name__ == "__main__":
    main()
