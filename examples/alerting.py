"""Alerting over a probabilistic view: stream queries + possible worlds.

A plant operator monitors a temperature sensor and wants principled alerts:

* "How likely is the temperature above 20 degC right now?"
* "How likely is it to stay above 20 degC for five consecutive readings?"
* "What is the expected number of exceedances in the next hour?"
* "What is the chance the *maximum* over the window exceeds 24 degC?"
  (a non-decomposable functional -> Monte Carlo over possible worlds)

The densities are inferred once, persisted in a DensityStore, and every
question is answered from the store-backed probabilistic view — no access
to the raw stream is needed, which is the paper's core promise.

Run:  python examples/alerting.py
"""

import numpy as np

from repro import (
    ARMAGARCHMetric,
    DensityStore,
    OmegaGrid,
    ViewBuilder,
    campus_temperature,
    calibration_report,
    exceedance_probability,
    expected_time_above,
    monte_carlo_query,
    sustained_exceedance_probability,
)
from repro.db.prob_view import ProbabilisticView

H = 60
THRESHOLD = 20.0


def main() -> None:
    series = campus_temperature(n=1000, rng=13)

    # Infer once, persist the densities.
    metric = ARMAGARCHMetric()
    forecasts = metric.run(series, H)
    store = DensityStore()
    store.append_series(forecasts)
    print(f"persisted {store!r}")

    # Check the metric is calibrated before trusting its alerts.
    report = calibration_report(forecasts, series)
    print(
        f"calibration: density distance {report.density_distance:.3f}, "
        f"KS p-value {report.ks_p_value:.3f}, worst coverage gap "
        f"{report.worst_coverage_gap():.3f}"
    )

    # Build the probabilistic view from the *store*, not the stream.
    grid = OmegaGrid(delta=0.25, n=60)
    builder = ViewBuilder(grid)
    rows = builder.build_rows(store.all())
    view = ProbabilisticView.from_rows("plant_view", rows, grid)
    print(f"view: {len(view)} tuples over {len(view.times)} times\n")

    # Q1: instantaneous exceedance probability (last five readings).
    exceed = exceedance_probability(view, THRESHOLD)
    print(f"P(temp > {THRESHOLD} degC) at the last five times:")
    for t in view.times[-5:]:
        print(f"  t={t:4d}  p={exceed[t]:.3f}")

    # Q2: sustained exceedance over five consecutive readings.
    sustained = sustained_exceedance_probability(view, THRESHOLD, window=5)
    worst_t = max(sustained, key=sustained.get)
    print(
        f"\nhighest P(5 consecutive readings > {THRESHOLD}): "
        f"{sustained[worst_t]:.3f} ending at t={worst_t}"
    )

    # Q3: expected exceedance count over a 30-reading (1 hour) window.
    counts = expected_time_above(view, THRESHOLD, window=30)
    last = view.times[-1]
    print(f"expected exceedances in the last hour: {counts[last]:.1f} of 30")

    # Q4: distributional max — not decomposable per time, so estimate it
    # by sampling possible worlds (MCDB style).
    estimate = monte_carlo_query(
        view,
        lambda world: float(
            max(
                (v for v in world.values.values() if v is not None),
                default=-np.inf,
            )
            > 22.0
        ),
        n_samples=2000,
        rng=1,
    )
    low, high = estimate.confidence_interval()
    print(
        f"P(max temperature over the window > 22 degC) = "
        f"{estimate.mean:.3f}  (95% CI [{low:.3f}, {high:.3f}])"
    )


if __name__ == "__main__":
    main()
