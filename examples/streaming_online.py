"""Online mode: streaming density inference with a pre-sized sigma-cache.

The paper's online mode infers p_t(R_t) as each value arrives.  This
example streams car GPS data through an :class:`OnlinePipeline`, serving
probability rows from a sigma-cache sized in advance from expected
volatility extremes, and reports the cache hit statistics at the end.

Run:  python examples/streaming_online.py
"""

from repro import (
    ARMAGARCHMetric,
    OmegaGrid,
    OnlinePipeline,
    SigmaCache,
    car_gps,
)

H = 60


def main() -> None:
    series = car_gps(n=600, rng=9)
    grid = OmegaGrid(delta=2.0, n=30)  # 30 ranges x 2 m around r_hat.

    # Online mode cannot size the cache from a WHERE clause, so the
    # operator provides expected sigma extremes (here: from the sensor
    # spec and a generous headroom factor).
    cache = SigmaCache(
        grid, min_sigma=0.5, max_sigma=500.0, distance_constraint=0.02
    )
    print(f"pre-sized cache: {cache!r}")

    pipeline = OnlinePipeline(ARMAGARCHMetric(), H=H, grid=grid, cache=cache)

    emitted = 0
    for value in series.values:
        step = pipeline.feed(value)
        if step.row is None:
            continue  # Warm-up.
        emitted += 1
        if emitted % 100 == 1:
            forecast = step.forecast
            print(
                f"t={step.t:4d}  r={value:9.1f}  r_hat={forecast.mean:9.1f}  "
                f"sigma={forecast.volatility:7.2f}  "
                f"row mass={step.row.total_mass:.3f}"
            )

    view = pipeline.to_view("car_online_view")
    print(f"\nmaterialised {view!r}")
    print(
        f"cache: {cache.stats.lookups} lookups, "
        f"hit rate {cache.stats.hit_rate:.1%}, "
        f"{len(cache)} stored distributions, "
        f"{cache.size_bytes() / 1024:.0f} kB"
    )
    print(f"guaranteed Hellinger error <= {cache.guaranteed_distance():.3f}")


if __name__ == "__main__":
    main()
