"""Quickstart: from an imprecise time series to a probabilistic database.

Runs the paper's whole pipeline in ~20 lines of API:
generate sensor data -> infer time-varying densities with ARMA-GARCH ->
build a tuple-level probabilistic view -> ask a probabilistic query.

Run:  python examples/quickstart.py
"""

from repro import (
    ARMAGARCHMetric,
    OmegaGrid,
    campus_temperature,
    create_probabilistic_view,
    most_probable_range_query,
)


def main() -> None:
    # 1. An imprecise temperature stream (synthetic stand-in for the
    #    paper's EPFL campus deployment; +-0.3 deg C sensor accuracy).
    series = campus_temperature(n=1200, rng=7)
    print(f"raw series: {len(series)} samples of {series.name!r}")

    # 2. Infer p_t(R_t) for every time with the paper's main metric and
    #    build the probabilistic view in one call.  Delta and n are the
    #    paper's view parameters: 20 ranges of 0.5 deg C around the
    #    expected true value.
    view = create_probabilistic_view(
        series,
        metric=ARMAGARCHMetric(p=1, q=0, kappa=3.0),
        H=60,                       # Sliding window (Definition 1).
        grid=OmegaGrid(delta=0.5, n=20),
        step=10,                    # Subsample inference times for speed.
        distance_constraint=0.01,   # Sigma-cache with Hellinger bound H'.
    )
    print(f"probabilistic view: {len(view)} tuples at {len(view.times)} times")

    # 3. A first probabilistic query: the most probable temperature range
    #    at each time (shown for the first five).
    modal = most_probable_range_query(view)
    print("\nmost probable range (first 5 inference times):")
    for t in view.times[:5]:
        tup = modal[t]
        print(
            f"  t={t:4d}  [{tup.low:6.2f}, {tup.high:6.2f}] deg C  "
            f"p={tup.probability:.3f}"
        )

    # 4. The captured mass tells us how much probability the grid covers.
    t0 = view.times[0]
    print(f"\nprobability mass captured at t={t0}: {view.total_mass_at(t0):.4f}")


if __name__ == "__main__":
    main()
