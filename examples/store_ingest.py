"""Persistent catalog walkthrough: ingest, standing queries, reload.

A plant operator stores two sensor series in one catalog, streams values
in micro-batches as they arrive, and keeps standing queries registered so
each append immediately reports the newly answerable results — then
"restarts" by reopening the catalog and continues exactly where ingestion
left off.  One catalog-wide SELECT then asks a question of *every*
stored series at once through ``repro.connect()``, and a late
re-forecast shows time-of-knowledge revisions: ``AS OF`` replays the
catalog exactly as it was known before the revision landed.

Run:  python examples/store_ingest.py
"""

import tempfile

import numpy as np

import repro
from repro import (
    Catalog,
    OmegaGrid,
    StandingQuery,
    campus_temperature,
    car_gps,
)
from repro.db.prob_view import ProbabilisticView, ProbTuple

H = 40
THRESHOLD = 21.0


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro_catalog_")
    catalog = Catalog(root)

    # One catalog, many series: each binds a metric + omega grid once and
    # the binding survives restarts (it lives in series.json).
    catalog.create_series(
        "plant_temp", metric="arma_garch", H=H,
        grid=OmegaGrid(delta=0.25, n=20),
        # The sigma-cache is sized from expected volatility extremes and
        # then reused across every append.
        cache_min_sigma=1e-3, cache_max_sigma=50.0, cache_distance=0.02,
    )
    catalog.create_series(
        "car_gps", metric="variable_threshold", H=H,
        grid=OmegaGrid(delta=2.0, n=30),
    )

    # Standing queries: registered once, updated incrementally per append.
    exceed = catalog.register_query(
        "plant_temp", StandingQuery.exceedance(THRESHOLD))
    sustained = catalog.register_query(
        "plant_temp", StandingQuery.sustained_exceedance(THRESHOLD, window=5))

    temperature = campus_temperature(400, rng=3).values
    gps = car_gps(300, rng=9).values

    # Values arrive in micro-batches (e.g. one flush per minute).
    for start in range(0, temperature.size, 64):
        result = catalog.append("plant_temp", temperature[start : start + 64])
        if result.emitted:
            worst = max(exceed.last_delta.values(), default=0.0)
            print(
                f"append [{start:3d}..{start + result.fed:3d}): "
                f"{result.emitted:2d} new times, "
                f"max new P(>{THRESHOLD}) = {worst:.3f}"
            )
    for start in range(0, gps.size, 50):
        catalog.append("car_gps", gps[start : start + 50])

    print(f"\ncatalog series: {catalog.list_series()}")
    handle = catalog.series("plant_temp")
    print(f"plant_temp: {handle.tuple_count} tuples in "
          f"{len(handle.segment_names)} segments, next t={handle.next_t}")
    cache = handle.sigma_cache
    print(f"sigma-cache: {cache.stats.lookups} lookups, "
          f"hit rate {cache.stats.hit_rate:.1%}")
    risky = max(sustained.result().values(), default=0.0)
    print(f"highest P(5 consecutive readings > {THRESHOLD}): {risky:.4f}")

    # --- process restart ------------------------------------------------
    # A fresh Catalog object sees everything: the views, the metric
    # bindings, and the resume position.  Appends continue at the right t
    # without re-warming the window.
    reopened = Catalog(root)
    more = 20.5 + 0.1 * np.sin(np.arange(30))
    result = reopened.append("plant_temp", more)
    print(
        f"\nafter reopen: fed {result.fed} values, emitted times "
        f"{result.times[0]}..{result.times[-1]}"
    )
    view = reopened.view("plant_temp")
    print(f"stored view: {view!r}")

    # --- one question over the whole catalog ----------------------------
    # repro.connect(<path>) opens the catalog query service behind the
    # unified Connection facade: it plans a SELECT across every matched
    # series, fans the work over a thread pool, and caches the
    # materialised views so a repeated statement skips the .npz reloads.
    conn = repro.connect(root, cache_budget_bytes=64 << 20)
    service = conn.service
    result = conn.execute(
        f"SELECT exceedance({THRESHOLD}) FROM CATALOG '{root}' TOP 2"
    )
    print(f"\ncatalog-wide P(value > {THRESHOLD}), hottest series first:")
    for entry in result.results:
        print(f"  {entry.series_id:12s} max_p={entry.score:.4f} "
              f"({entry.size} times)")
    warm = conn.execute(
        f"SELECT exceedance({THRESHOLD}) FROM CATALOG '{root}' TOP 2"
    )
    assert warm.results == result.results
    print(f"matrix cache after the warm re-run: {service.cache!r}")

    # --- bounded answers without touching segment data ------------------
    # SELECT APPROX reads only the per-segment synopses written at append
    # time: each series gets an interval guaranteed to contain its exact
    # score, at a fraction of the exact scan's cost.
    approx = conn.execute(
        f"SELECT APPROX exceedance({THRESHOLD}) FROM CATALOG '{root}' TOP 2"
    )
    print(f"\nAPPROX P(value > {THRESHOLD}) from synopses alone:")
    for entry in approx.results:
        est = entry.result
        print(f"  {entry.series_id:12s} estimate={est['estimate']:.4f} "
              f"+/-{est['error_bound']:.4f} "
              f"(in [{est['lower']:.4f}, {est['upper']:.4f}])")
    exact_scores = {e.series_id: e.score for e in result.results}
    for entry in approx.results:
        est = entry.result
        assert est["lower"] <= exact_scores[entry.series_id] <= est["upper"]

    # --- possible worlds -------------------------------------------------
    # The created views are block-independent-disjoint probabilistic
    # databases, so we can do more than aggregate them: SIMULATE samples
    # complete possible worlds, MCDB-style.  Each world picks one
    # concrete value per time (None = the residual off-grid alternative);
    # with a SEED the result is bit-identical on every backend.
    worlds = conn.execute(f"SIMULATE 3 SEED 7 FROM CATALOG '{root}'")
    print(f"\n{worlds.n_worlds} sampled worlds per series (seed "
          f"{worlds.seed}):")
    for entry in worlds.results:
        head = ", ".join(
            "outside" if v is None else f"{v:.2f}"
            for _t, v in entry.result[0][:4]
        )
        print(f"  {entry.series_id:12s} world 0 starts: {head}, ...")

    # A multi-aggregate select list shares one scan; each item's results
    # are bit-identical to running it alone.  PROBABILITY OF answers the
    # per-time range question exactly (half-open, no sampling).
    combo = conn.execute(
        f"SELECT expected_value, PROBABILITY OF v BETWEEN 20 AND 21 "
        f"FROM CATALOG '{root}'"
    )
    ev_item, prob_item = combo.items
    for entry in prob_item.results:
        peak_t = max(entry.result, key=entry.result.get)
        print(f"  {entry.series_id:12s} "
              f"max P(20 <= v < 21) = {entry.score:.4f} at t={peak_t}")

    # --- revisions: a better model re-forecasts history ------------------
    # Later knowledge often changes what we believe about *old* valid
    # times: sensor recalibration, a better model run, backfilled data.
    # revise() overlays a re-forecast over the already-covered range; the
    # original rows stay on disk, and every query resolves latest-wins.
    before = conn.execute(
        f"SELECT expected_value FROM CATALOG '{root}' SERIES 'plant_temp'"
    ).results[0].score
    times = sorted(reopened.view("plant_temp").times)[:6]
    recal = ProbabilisticView("plant_temp", [
        ProbTuple(t, 25.0, 25.5, 0.95, "recalibrated") for t in times
    ])
    revision = reopened.revise("plant_temp", recal)
    print(f"\nrevised plant_temp at knowledge_time="
          f"{revision['knowledge_time']}: "
          f"{len(times)} early times re-forecast")

    # AS OF <knowledge_time> backtests against what was known *then*:
    # AS OF 0 ignores the revision entirely; the default sees it.
    backtest = conn.execute(
        f"SELECT expected_value FROM CATALOG '{root}' "
        f"SERIES 'plant_temp'", as_of=0
    ).results[0].score
    after = conn.execute(
        f"SELECT expected_value FROM CATALOG '{root}' SERIES 'plant_temp'"
    ).results[0].score
    assert backtest == before          # bit-identical replay
    print(f"max E[R_t] before revision (AS OF 0): {backtest:.3f}, "
          f"after: {after:.3f}")

    # replay() iterates the whole knowledge timeline.
    for k, view in reopened.replay("plant_temp"):
        lows = view.columns.low
        print(f"  knowledge_time {k}: min low = {lows.min():.2f}")
    print(f"(catalog left in {root})")


if __name__ == "__main__":
    main()
