"""Fig. 12 — effect of ARMA model order on density distance."""

from repro.experiments.fig12 import run_fig12


def test_fig12_model_order(benchmark, record_table):
    table = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    record_table(table)
    dd = table.column("ARMA-GARCH")
    # Paper shape: the ARMA-GARCH density distance does not improve as the
    # model order grows — low orders are justified.
    assert dd[-1] >= dd[0] * 0.8
    assert all(d > 0 for d in dd)
