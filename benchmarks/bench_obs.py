"""Observability overhead benchmark: instrumentation must stay <= 2%.

The `repro.obs` design promise is that metrics and tracing are **always
on** — no sampling flag, no debug build — because their cost on the hot
path is negligible.  This benchmark defends that promise with a number,
recorded in ``BENCH_obs.json`` at the repo root and gated by
``check_regression.py``: ``headline.overhead_ratio``, the warm-cache
wall-time ratio of an instrumented service (live
:class:`~repro.obs.metrics.MetricsRegistry`: per-query trace, latency
histograms, counters, slow-log offer) over an uninstrumented one
(:class:`~repro.obs.metrics.NullRegistry`: every hook a no-op,
worker-side timing capture disabled).  The gate caps the ratio at
**1.02** — if instrumentation ever costs more than 2% on the warm path,
CI fails.

Measuring a sub-2% delta on a shared 1-core container needs a noise-proof
estimator; three choices matter more than any amount of repetition:

* both arms share **one** :class:`~repro.service.MatrixCache`, so they
  compute over literally the same resident view objects — otherwise each
  arm's private heap/cache layout biases the comparison by more than the
  effect being measured;
* statements run in **back-to-back pairs** (order alternating), so the
  host's low-frequency drift — CPU frequency, co-tenant load — hits both
  arms of a pair equally and cancels in the difference;
* each pass of pairs yields ``1 + median(paired diff) / median(bare)``,
  and the headline is the **median over passes**: the inner median is
  robust to scheduler-preemption outliers that a mean smears into a
  false gap, and the outer median rejects a whole pass corrupted by a
  sustained co-tenant burst (observed to inflate a single pass by +8%
  on this container).

Run directly (``python benchmarks/bench_obs.py``) or via pytest; set
``REPRO_BENCH_QUICK=1`` (the CI smoke job does) to trim the timed pair
count.  The catalog stays full-size either way — shrinking the
statement below ~10 ms would push the per-pair diff under timer noise
and defeat the estimator.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.obs import MetricsRegistry, NullRegistry
from repro.service import CatalogQueryService, MatrixCache
from repro.store import Catalog
from repro.view.omega import OmegaGrid

_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
_GRID = OmegaGrid(delta=0.5, n=8)
_H = 40
# The catalog is full-size in both modes: a ~13 ms statement keeps the
# per-pair diff above timer/scheduler noise, and building it costs ~1 s.
# Quick mode only trims the number of timed pairs.  Pass-ratio spread
# scales inversely with pairs per pass (40-pair passes swing +-3% on
# this container, 100-pair passes ~+-0.5%), so keep passes long and few.
_SERIES_COUNT = 80
_TIMES_PER_SERIES = 300
_PASSES = 3 if _QUICK else 5
_PAIRS_PER_PASS = 60 if _QUICK else 100
_CACHE_BUDGET = 512 << 20
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

#: The acceptance bound: instrumented / uninstrumented warm wall time.
OVERHEAD_CAP = 1.02


def build_catalog(workdir: Path) -> Catalog:
    catalog = Catalog(workdir / "catalog")
    rng = np.random.default_rng(11)
    for index in range(_SERIES_COUNT):
        series_id = f"sensor-{index:03d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=_H, grid=_GRID
        )
        values = 20.0 + np.cumsum(
            rng.normal(0.0, 0.1, size=_TIMES_PER_SERIES + _H)
        )
        catalog.append(series_id, values)
    return catalog


def _statement(catalog: Catalog) -> str:
    return f"SELECT exceedance(21.0) FROM CATALOG '{catalog.root}'"


def _timed(service: CatalogQueryService, statement: str) -> float:
    start = time.perf_counter()
    service.execute(statement)
    return time.perf_counter() - start


def bench_overhead(catalog: Catalog) -> dict:
    statement = _statement(catalog)
    # One shared cache: both arms reduce over the same resident arrays.
    # The sequential backend keeps the measurement pure — no pool-handoff
    # jitter burying the instrumentation delta.
    cache = MatrixCache(_CACHE_BUDGET)
    instrumented = CatalogQueryService(
        catalog,
        backend="sequential",
        cache=cache,
        registry=MetricsRegistry(),
    )
    bare = CatalogQueryService(
        catalog,
        backend="sequential",
        cache=cache,
        registry=NullRegistry(),
    )
    pass_ratios: list[float] = []
    pass_details: list[dict] = []
    try:
        # Warm the shared cache fully before any timing.
        instrumented.execute(statement)
        bare.execute(statement)
        for _ in range(_PASSES):
            diffs: list[float] = []
            bare_times: list[float] = []
            instrumented_times: list[float] = []
            for pair in range(_PAIRS_PER_PASS):
                if pair % 2:
                    cost_i = _timed(instrumented, statement)
                    cost_b = _timed(bare, statement)
                else:
                    cost_b = _timed(bare, statement)
                    cost_i = _timed(instrumented, statement)
                diffs.append(cost_i - cost_b)
                bare_times.append(cost_b)
                instrumented_times.append(cost_i)
            median_diff = statistics.median(diffs)
            median_bare = statistics.median(bare_times)
            pass_ratios.append(1.0 + median_diff / median_bare)
            pass_details.append(
                {
                    "median_bare_s": median_bare,
                    "median_instrumented_s": statistics.median(
                        instrumented_times
                    ),
                    "median_paired_diff_s": median_diff,
                }
            )
        # Sanity: the instrumented arm really was instrumented and the
        # bare arm really was not.
        executed = 1 + _PASSES * _PAIRS_PER_PASS
        histogram = instrumented.registry.histogram("repro_query_seconds")
        assert histogram.total_count() == executed
        assert bare.registry.snapshot() == {}
    finally:
        instrumented.close()
        bare.close()
    ratio = statistics.median(pass_ratios)
    out = {
        "passes": _PASSES,
        "pairs_per_pass": _PAIRS_PER_PASS,
        "pass_ratios": pass_ratios,
        "pass_details": pass_details,
        "overhead_ratio": ratio,
    }
    per_pass = ", ".join(f"{100.0 * (r - 1.0):+.2f}%" for r in pass_ratios)
    print(
        f"warm SELECT over {_SERIES_COUNT} series: per-pass overhead "
        f"[{per_pass}] -> median {100.0 * (ratio - 1.0):+.2f}%"
    )
    return out


def run_benchmark() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_obs_"))
    try:
        catalog = build_catalog(workdir)
        overhead = bench_overhead(catalog)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    results = {
        "quick": _QUICK,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "series_count": _SERIES_COUNT,
        "times_per_series": _TIMES_PER_SERIES,
        "grid": {"delta": _GRID.delta, "n": _GRID.n},
        "H": _H,
        "statement": "SELECT exceedance(21.0) FROM CATALOG '<root>'",
        "overhead": overhead,
        "headline": {"overhead_ratio": overhead["overhead_ratio"]},
    }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {_OUTPUT}")
    return results


# ----------------------------------------------------------------------
# Pytest entry point (the acceptance cap).
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_benchmark()
    return _RESULTS


def test_instrumentation_overhead_within_two_percent():
    results = _results()
    ratio = results["headline"]["overhead_ratio"]
    assert ratio <= OVERHEAD_CAP, (
        f"always-on instrumentation costs {100.0 * (ratio - 1.0):+.2f}% on "
        f"the warm-cache path (cap {100.0 * (OVERHEAD_CAP - 1.0):.0f}%)"
    )


if __name__ == "__main__":
    run_benchmark()
