"""Fig. 13 — C-GARCH vs plain GARCH error detection and cost."""

import numpy as np

from repro.experiments.fig13 import run_fig13


def test_fig13_cgarch_detection(benchmark, record_table):
    table = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    record_table(table)
    cgarch = np.array(table.column("C-GARCH % captured"))
    garch = np.array(table.column("GARCH % captured"))
    # C-GARCH never detects fewer errors than plain GARCH...
    assert np.all(cgarch >= garch - 1e-9)
    # ...and is strictly better at the highest corruption rate, where the
    # plain model's inflated variance masks subsequent spikes.
    assert cgarch[-1] > garch[-1]
    # Comparable per-value cost (paper: "does not require excessive
    # computational cost").
    cg_ms = np.array(table.column("C-GARCH ms/value"))
    g_ms = np.array(table.column("GARCH ms/value"))
    assert float(np.mean(cg_ms)) < 3.0 * float(np.mean(g_ms))
