"""Table II — dataset generation and summary."""

from repro.experiments.table02 import run_table02


def test_table2_datasets(benchmark, record_table):
    table = benchmark.pedantic(run_table02, rounds=1, iterations=1)
    record_table(table)
    datasets = table.column("dataset")
    assert datasets == ["campus-data", "car-data"]
    samples = table.column("samples")
    assert all(count >= 400 for count in samples)
    # Campus must be the larger dataset, as in the paper's Table II.
    assert samples[0] > samples[1]
