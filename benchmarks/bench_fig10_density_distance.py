"""Fig. 10 — density distance of the four metrics vs window size."""

import numpy as np

from repro.experiments.fig10 import run_fig10


def test_fig10_density_distance(benchmark, record_table):
    table = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    record_table(table)
    # Expected shape: averaged over window sizes, the GARCH metrics beat
    # the naive ones on both datasets; ARMA-GARCH is the best overall.
    for dataset in ("campus-data", "car-data"):
        rows = [row for row in table.rows if row[0] == dataset]
        ut = float(np.mean([row[2] for row in rows]))
        vt = float(np.mean([row[3] for row in rows]))
        ag = float(np.mean([row[4] for row in rows]))
        assert ag < max(ut, vt), (
            f"{dataset}: ARMA-GARCH ({ag:.3f}) should beat the worse naive "
            f"metric (UT={ut:.3f}, VT={vt:.3f})"
        )
    # Overall winner across both datasets must be a GARCH-family metric.
    all_means = {
        name: float(np.mean(table.column(name)))
        for name in ("UT", "VT", "ARMA-GARCH", "Kalman-GARCH")
    }
    assert min(all_means, key=all_means.get) in ("ARMA-GARCH", "Kalman-GARCH")
