"""Fig. 14 — sigma-cache speedup and logarithmic size scaling."""

import numpy as np

from repro.experiments.fig14 import run_fig14a, run_fig14b


def test_fig14a_cache_speedup(benchmark, record_table):
    table = benchmark.pedantic(run_fig14a, rounds=1, iterations=1)
    record_table(table)
    speedups = table.column("speedup")
    # The cache must win at every database size, and decisively at 18k
    # tuples (paper: 9.6x; we accept anything clearly multi-fold).
    assert all(s > 1.5 for s in speedups)
    assert speedups[-1] > 3.0


def test_fig14b_cache_size_scaling(benchmark, record_table):
    table = benchmark.pedantic(run_fig14b, rounds=1, iterations=1)
    record_table(table)
    counts = np.array(table.column("distributions"), dtype=float)
    # Doubling Ds must add a roughly constant number of distributions
    # (logarithmic growth): increments between consecutive doublings agree.
    increments = np.diff(counts)
    assert np.all(increments > 0)
    assert float(increments.max() - increments.min()) <= 2.0
    # Size in kilobytes mirrors the paper's ~0.9-1.2 MB range for the same
    # view parameters (Delta=0.05, n=300, H'=0.01).
    sizes = table.column("cache size (kB)")
    assert 500 < sizes[0] < sizes[-1] < 2500
