"""Revision benchmark: AS OF replay cost and the revision-free fast path.

Two claims back the time-of-knowledge design, recorded in
``BENCH_revisions.json`` at the repo root:

1. **The fast path stays free**: on a catalog with *no* revisions,
   executing with an ``AS OF`` clause (which still resolves every
   series' revision frontier) must cost within 5% of the plain
   statement — the frontier of a never-revised series is a constant.
   Recorded and gated as ``headline.asof_overhead_ratio`` (a cap).
2. **Replay is bit-identical**: on a revised catalog, ``AS OF`` the
   latest knowledge time serializes identically to the default, and
   ``AS OF 0`` answers match a fresh catalog built only from the base
   segments.  Recorded and gated as ``bit_identical``.

The ungated ``resolve`` block records what resolving the revision
frontier costs on a 1000-series / 5-revisions-each catalog (100 series
in quick mode) — the absolute per-series microseconds are
machine-dependent and therefore never gated.

Run directly (``python benchmarks/bench_revisions.py``) or via pytest;
set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) to shrink the
catalogs 10x while keeping the same shape.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.service import CatalogQueryService
from repro.store import Catalog
from repro.util.jsonio import canonical_dumps

_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
_SERIES_COUNT = 100 if _QUICK else 1000
_TIMES_PER_SERIES = 48
_REVISIONS_PER_SERIES = 5
_REVISION_SPAN = 8
_CACHE_BUDGET = 512 << 20
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_revisions.json"


def _time(function, *, repeat: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _series_view(series_id: str, index: int) -> ProbabilisticView:
    base = 20.0 + 0.01 * index
    return ProbabilisticView(series_id, [
        ProbTuple(t, base + 0.05 * t, base + 0.05 * t + 1.0, 0.9, "base")
        for t in range(_TIMES_PER_SERIES)
    ])


def _revision_view(series_id: str, revision: int) -> ProbabilisticView:
    start = revision * _REVISION_SPAN
    return ProbabilisticView(series_id, [
        ProbTuple(t, 26.0 + revision, 27.0 + revision, 0.85,
                  f"rev{revision}")
        for t in range(start, start + _REVISION_SPAN)
    ])


def build_catalog(root: Path, *, revisions: int) -> Catalog:
    """``_SERIES_COUNT`` series; optionally ``revisions`` overlays each."""
    catalog = Catalog(root)
    for index in range(_SERIES_COUNT):
        series_id = f"sensor-{index:04d}"
        catalog.save_view(series_id, _series_view(series_id, index))
        for revision in range(revisions):
            catalog.revise(
                series_id,
                _revision_view(series_id, revision),
                knowledge_time=revision + 1,
            )
    return catalog


def _answer_sans_stats(result) -> str:
    payload = result.to_dict()
    payload.pop("pruning", None)
    return canonical_dumps(payload)


def bench_fast_path(workdir: Path) -> dict:
    """AS OF on a revision-free catalog vs the plain statement (warm)."""
    catalog = build_catalog(workdir / "plain", revisions=0)
    statement = f"SELECT exceedance(21.0) FROM CATALOG '{catalog.root}'"
    service = CatalogQueryService(
        catalog,
        backend="sequential",
        cache_budget_bytes=_CACHE_BUDGET,
    )
    # Warm the matrix cache once so both paths measure plan + aggregate.
    service.execute(statement)
    default_s, default_result = _time(
        lambda: service.execute(statement), repeat=7
    )
    asof_s, asof_result = _time(
        lambda: service.execute(statement + " AS OF 0"), repeat=7
    )
    identical = default_result.json() == asof_result.json()
    service.close()
    ratio = asof_s / default_s
    print(
        f"revision-free fast path: default {default_s * 1e3:7.1f} ms, "
        f"AS OF 0 {asof_s * 1e3:7.1f} ms (ratio {ratio:.3f})"
    )
    return {
        "default_warm_s": default_s,
        "asof_warm_s": asof_s,
        "asof_overhead_ratio": ratio,
        "bit_identical": identical,
    }


def bench_resolve(workdir: Path) -> tuple[dict, bool]:
    """Frontier-resolve cost and replay bit-identity on a revised catalog."""
    catalog = build_catalog(
        workdir / "revised", revisions=_REVISIONS_PER_SERIES
    )
    snapshots = catalog.open_many("*")
    latest = _REVISIONS_PER_SERIES

    def resolve_all(knowledge_time):
        return [s.as_of(knowledge_time) for s in snapshots]

    resolve_latest_s, _ = _time(lambda: resolve_all(None), repeat=5)
    resolve_pinned_s, _ = _time(lambda: resolve_all(1), repeat=5)
    per_series_us = resolve_latest_s / len(snapshots) * 1e6
    print(
        f"frontier resolve over {len(snapshots)} series x "
        f"{_REVISIONS_PER_SERIES} revisions: latest "
        f"{resolve_latest_s * 1e3:6.1f} ms, pinned "
        f"{resolve_pinned_s * 1e3:6.1f} ms "
        f"({per_series_us:.1f} us/series)"
    )

    service = CatalogQueryService(
        catalog,
        backend="sequential",
        cache_budget_bytes=_CACHE_BUDGET,
    )
    statement = f"SELECT exceedance(21.0) FROM CATALOG '{catalog.root}'"
    identical = (
        service.execute(statement + f" AS OF {latest}").json()
        == service.execute(statement).json()
    )
    pinned_s, pinned_result = _time(
        lambda: service.execute(statement + " AS OF 0"), repeat=3
    )
    service.close()

    # AS OF 0 must answer exactly like a catalog that never revised.
    base_only = build_catalog(workdir / "base_only", revisions=0)
    base_service = CatalogQueryService(
        base_only,
        backend="sequential",
        cache_budget_bytes=_CACHE_BUDGET,
    )
    base_statement = (
        f"SELECT exceedance(21.0) FROM CATALOG '{base_only.root}'"
    )
    identical = identical and (
        _answer_sans_stats(pinned_result).replace(str(catalog.root), "R")
        == _answer_sans_stats(
            base_service.execute(base_statement)
        ).replace(str(base_only.root), "R")
    )
    base_service.close()
    print(
        f"replay AS OF 0 over the revised catalog: "
        f"{pinned_s * 1e3:6.1f} ms (bit-identical: {identical})"
    )
    return {
        "series_count": len(snapshots),
        "revisions_per_series": _REVISIONS_PER_SERIES,
        "resolve_latest_s": resolve_latest_s,
        "resolve_pinned_s": resolve_pinned_s,
        "resolve_us_per_series": per_series_us,
        "asof_query_s": pinned_s,
    }, identical


def run_benchmark() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_revisions_"))
    try:
        fast_path = bench_fast_path(workdir)
        resolve, replay_identical = bench_resolve(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    results = {
        "quick": _QUICK,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "series_count": _SERIES_COUNT,
        "times_per_series": _TIMES_PER_SERIES,
        "fast_path": fast_path,
        "resolve": resolve,
        "bit_identical": fast_path["bit_identical"] and replay_identical,
        "headline": {
            "asof_overhead_ratio": fast_path["asof_overhead_ratio"],
        },
    }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {_OUTPUT}")
    return results


# ----------------------------------------------------------------------
# Pytest entry points (the acceptance caps).
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_benchmark()
    return _RESULTS


def test_asof_fast_path_within_cap():
    results = _results()
    ratio = results["headline"]["asof_overhead_ratio"]
    cap = 1.05
    assert ratio <= cap, (
        f"AS OF on a revision-free catalog costs {ratio:.3f}x the plain "
        f"statement (cap {cap}x): the fast path is not free"
    )


def test_replay_bit_identical():
    results = _results()
    assert results["bit_identical"], (
        "AS OF replay serialized differently from its reference run"
    )


def test_resolve_cost_recorded():
    results = _results()
    resolve = results["resolve"]
    assert resolve["resolve_latest_s"] > 0
    assert resolve["revisions_per_series"] == _REVISIONS_PER_SERIES


if __name__ == "__main__":
    run_benchmark()
