"""Query-server load benchmark: sustained throughput and tail latency.

A real :class:`~repro.server.app.QueryServer` is started on a background
event-loop thread and hammered by several concurrent blocking clients —
each connection issuing a rotating mix of catalog-wide SELECT statements
over its own socket.  Three claims are recorded in ``BENCH_server.json``
and asserted as pytest floors:

1. **Batched is never slower** — with request coalescing enabled
   (concurrent identical statements share one execution), sustained
   throughput is at least on par with the one-query-per-request server;
   under an overlapping workload it is typically *faster* because the
   catalog does each unit of work once.
2. **Tail latency is recorded honestly** — per-request wall times from
   ``>= 4`` concurrent connections, reported as p50/p95/p99 plus
   sustained requests/second.
3. **The wire adds no semantics** — every statement's served result is
   bit-identical (canonical-JSON bytes) to running the same statement
   through ``Database.execute`` in process.

Run directly (``python benchmarks/bench_server.py``) or via pytest
(``pytest benchmarks/bench_server.py``).  Set ``REPRO_BENCH_QUICK=1``
(the CI smoke job does) to shrink the catalog and request counts while
keeping the same shape.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.db.engine import Database
from repro.server import (
    Client,
    QueryServer,
    ServerThread,
    canonical_dumps,
    serialize_result,
)
from repro.store import Catalog
from repro.view.omega import OmegaGrid

_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
_GRID = OmegaGrid(delta=0.5, n=8)
_H = 40
_SERIES_COUNT = 16 if _QUICK else 64
_TIMES_PER_SERIES = 120 if _QUICK else 300
_CONNECTIONS = 4 if _QUICK else 8
_REQUESTS_PER_CONNECTION = 40 if _QUICK else 120
_MAX_INFLIGHT = 64  # Admission control must never skew the measurement.
_CACHE_BUDGET = 256 << 20
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_server.json"


def build_catalog(workdir: Path) -> Catalog:
    catalog = Catalog(workdir / "catalog")
    rng = np.random.default_rng(42)
    for index in range(_SERIES_COUNT):
        series_id = f"sensor-{index:03d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=_H, grid=_GRID
        )
        values = 20.0 + np.cumsum(
            rng.normal(0.0, 0.1, size=_TIMES_PER_SERIES + _H)
        )
        catalog.append(series_id, values)
    return catalog


def _statements(catalog: Catalog) -> list[str]:
    root = catalog.root
    return [
        f"SELECT exceedance(21.0) FROM CATALOG '{root}'",
        f"SELECT expected_value FROM CATALOG '{root}' SERIES 'sensor-0*'",
        f"SELECT threshold(0.3) FROM CATALOG '{root}' TOP 5",
        f"SELECT time_above(21.0, 5) FROM CATALOG '{root}' TOP 3",
    ]


def _run_load(
    address: tuple[str, int], statements: list[str]
) -> dict:
    """Hammer the server from ``_CONNECTIONS`` concurrent client threads."""
    latencies: list[list[float]] = [[] for _ in range(_CONNECTIONS)]
    failures: list[str] = []
    barrier = threading.Barrier(_CONNECTIONS + 1)

    def worker(slot: int) -> None:
        with Client(*address, timeout=120.0) as client:
            barrier.wait()
            for index in range(_REQUESTS_PER_CONNECTION):
                # Per-connection offset keeps concurrent connections on
                # the same statement much of the time — the coalescing
                # opportunity a polling fleet produces naturally.
                statement = statements[(slot + index) % len(statements)]
                start = time.perf_counter()
                try:
                    client.query(statement)
                except Exception as exc:  # noqa: BLE001 - recorded below.
                    failures.append(f"conn {slot} req {index}: {exc}")
                    return
                latencies[slot].append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(_CONNECTIONS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    if failures:
        raise AssertionError(
            f"{len(failures)} requests failed, first: {failures[0]}"
        )
    flat = np.array([value for per in latencies for value in per])
    total = int(flat.size)
    return {
        "requests": total,
        "wall_s": wall,
        "throughput_rps": total / wall,
        "p50_ms": float(np.percentile(flat, 50) * 1e3),
        "p95_ms": float(np.percentile(flat, 95) * 1e3),
        "p99_ms": float(np.percentile(flat, 99) * 1e3),
        "mean_ms": float(flat.mean() * 1e3),
    }


def _bench_mode(catalog: Catalog, *, coalesce: bool) -> dict:
    server = QueryServer(
        catalog,
        port=0,
        coalesce=coalesce,
        max_inflight=_MAX_INFLIGHT,
        cache_budget_bytes=_CACHE_BUDGET,
    )
    statements = _statements(catalog)
    with ServerThread(server) as address:
        with Client(*address, timeout=120.0) as warmer:
            for statement in statements:  # Warm the matrix cache.
                warmer.query(statement)
        measured = _run_load(address, statements)
        with Client(*address) as observer:
            stats = observer.stats()
    measured["coalesced"] = stats["coalesced"]
    measured["executed"] = stats["executed"]
    measured["rejected"] = stats["rejected"]
    label = "batched" if coalesce else "unbatched"
    print(
        f"{label:>9}: {measured['throughput_rps']:8.1f} req/s over "
        f"{_CONNECTIONS} connections | p50 {measured['p50_ms']:6.2f} ms, "
        f"p95 {measured['p95_ms']:6.2f} ms, p99 {measured['p99_ms']:6.2f} ms"
        f" | executed {measured['executed']}, coalesced "
        f"{measured['coalesced']}"
    )
    return measured


def _check_bit_identical(catalog: Catalog) -> bool:
    """Served bytes == in-process ``Database.execute`` bytes, statement by
    statement."""
    server = QueryServer(catalog, port=0, cache_budget_bytes=_CACHE_BUDGET)
    database = Database()
    identical = True
    with ServerThread(server) as address:
        with Client(*address) as client:
            for statement in _statements(catalog):
                served = canonical_dumps(client.query(statement))
                direct = canonical_dumps(
                    serialize_result(database.execute(statement))
                )
                if served != direct:
                    identical = False
                    print(f"MISMATCH for {statement!r}")
    return identical


def run_benchmark() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_server_"))
    try:
        catalog = build_catalog(workdir)
        batched = _bench_mode(catalog, coalesce=True)
        unbatched = _bench_mode(catalog, coalesce=False)
        bit_identical = _check_bit_identical(catalog)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    ratio = batched["throughput_rps"] / unbatched["throughput_rps"]
    results = {
        "quick": _QUICK,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "series_count": _SERIES_COUNT,
        "times_per_series": _TIMES_PER_SERIES,
        "connections": _CONNECTIONS,
        "requests_per_connection": _REQUESTS_PER_CONNECTION,
        "statements": len(_statements(catalog)),
        "batched": batched,
        "unbatched": unbatched,
        "bit_identical": bit_identical,
        "headline": {
            "throughput_rps": batched["throughput_rps"],
            "p50_ms": batched["p50_ms"],
            "p95_ms": batched["p95_ms"],
            "p99_ms": batched["p99_ms"],
            "batched_vs_unbatched": ratio,
        },
    }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"\nbatched/unbatched throughput ratio: {ratio:.2f}x; "
        f"bit-identical to Database.execute: {bit_identical}"
    )
    print(f"wrote {_OUTPUT}")
    return results


# ----------------------------------------------------------------------
# Pytest entry points (the acceptance floors).
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_benchmark()
    return _RESULTS


def test_load_ran_at_required_concurrency():
    results = _results()
    assert results["connections"] >= 4
    expected = results["connections"] * results["requests_per_connection"]
    assert results["batched"]["requests"] == expected
    assert results["batched"]["rejected"] == 0


def test_batched_path_is_no_slower():
    results = _results()
    ratio = results["headline"]["batched_vs_unbatched"]
    # "No slower" with a noise band: scheduling jitter on busy CI hosts
    # can move either side by a few percent.
    assert ratio >= 0.85, (
        f"coalescing made the server {1 / ratio:.2f}x slower than "
        f"one-query-per-request"
    )


def test_coalescing_actually_happened():
    results = _results()
    assert results["batched"]["coalesced"] > 0
    assert results["unbatched"]["coalesced"] == 0
    assert (
        results["batched"]["executed"]
        < results["batched"]["requests"]
    )


def test_served_results_bit_identical_to_engine():
    assert _results()["bit_identical"] is True


def test_latency_percentiles_are_coherent():
    results = _results()
    for mode in ("batched", "unbatched"):
        entry = results[mode]
        assert 0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]


if __name__ == "__main__":
    run_benchmark()
