"""CI benchmark-regression gate.

Every perf claim this repo has recorded — columnar speedups (PR 1), binary
store round-trip and flat appends (PR 2), service cache gap and thread
scaling (PR 3), server batching parity (PR 4), synopsis pruning and
APPROX speedups (PR 6), observability overhead (PR 7) — lives in a
``BENCH_*.json``
at the repo root.  Until now CI only *uploaded* those files; this gate
makes it *defend* them: after a bench job refreshes its JSON, the gate
compares the fresh values against the committed baselines under
``benchmarks/baselines/`` and fails the job when a tracked metric falls
out of its tolerance band.

Design notes:

* Only **machine-relative** metrics are gated (speedup ratios, parity
  ratios, boolean invariants) — absolute wall times differ wildly between
  the committing host and CI runners, so they are recorded but never
  compared.
* Bands are deliberately wide (benchmarks are noisy; a gate that cries
  wolf gets deleted).  Each metric also carries an absolute **floor**
  (or cap, for lower-is-better metrics): even if the baseline drifts low
  over time, the floor pins the qualitative claim itself.
* Hardware-conditional metrics (thread-scaling needs >= 2 cores) declare
  ``min_cpus`` and are skipped — loudly — on smaller machines.

Usage::

    python benchmarks/check_regression.py                  # gate everything
    python benchmarks/check_regression.py BENCH_store.json # one file
    python benchmarks/check_regression.py --write-baselines

Exit status 0 when every gated metric holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"


@dataclass(frozen=True)
class Metric:
    """One gated value inside a benchmark JSON.

    ``path`` is a dotted lookup (``headline.warm_speedup``).  For
    ``direction="higher"`` the fresh value must stay above both
    ``baseline * (1 - tolerance)`` and the absolute ``floor``; for
    ``direction="lower"`` it must stay below ``baseline * (1 + tolerance)``
    and below ``floor`` (a cap).  ``direction="true"`` gates a boolean
    invariant.  ``min_cpus`` skips the check on hosts too small to
    exhibit the claim.
    """

    path: str
    direction: str = "higher"  # "higher" | "lower" | "true"
    tolerance: float = 0.5
    floor: float | None = None
    min_cpus: int | None = None


SPECS: dict[str, tuple[Metric, ...]] = {
    "BENCH_columnar.json": (
        Metric("sizes.100000.view_build.speedup", tolerance=0.6, floor=20.0),
        Metric(
            "sizes.100000.threshold_query.speedup",
            tolerance=0.8,
            floor=20.0,
        ),
        Metric(
            "sizes.100000.expected_value_query.speedup",
            tolerance=0.6,
            floor=4.0,
        ),
    ),
    "BENCH_store.json": (
        Metric(
            "headline.roundtrip_speedup_at_max_T", tolerance=0.6, floor=8.0
        ),
        Metric(
            "headline.append_latency_ratio_max_vs_min_T",
            direction="lower",
            tolerance=2.0,
            floor=4.0,  # Appends must stay ~flat in stored size.
        ),
    ),
    "BENCH_service.json": (
        Metric("cache_gap.warm_speedup", tolerance=0.75, floor=1.5),
        Metric(
            "headline.parallel_speedup",
            tolerance=0.6,
            floor=1.5,
            min_cpus=2,
        ),
    ),
    "BENCH_backends.json": (
        # The tentpole claim: true multi-core execution.  Gated only
        # where the hardware can exhibit it; the absolute floor (not the
        # committed baseline, which may come from a small host) carries
        # the qualitative claim.  The gated floor is 1.0x — processes
        # must at least hold thread parity on multi-core hosts — while
        # the 2.0x stretch target is recorded ungated in the payload
        # (``stretch.process_vs_thread_meets_target``).
        Metric(
            "headline.process_vs_thread",
            tolerance=0.6,
            floor=1.0,
            min_cpus=2,
        ),
        # Warm scans ship results over the shm transport with every
        # view already resident: parity with threads is the floor there
        # too, and a warm collapse is how a transport regression shows
        # up first.
        Metric(
            "headline.warm_process_vs_thread",
            tolerance=0.6,
            floor=1.0,
            min_cpus=2,
        ),
        Metric("bit_identical", direction="true"),
        # The shm and pickle transports must agree byte-for-byte on any
        # host, including single-core ones.
        Metric("shm_transport.pickle_parity", direction="true"),
    ),
    "BENCH_synopsis.json": (
        # Zone-map pruning on a selective query: the 10x acceptance
        # floor carries the claim; the band only catches collapses.
        Metric("headline.prune_speedup", tolerance=0.6, floor=10.0),
        # APPROX answers from synopses alone — if this nears 1x the
        # estimator started scanning segments.  The measured ratio is
        # hundreds-of-x and swings with catalog size, so the band is
        # nearly open and the floor carries the claim.
        Metric("headline.approx_speedup", tolerance=0.95, floor=5.0),
        Metric("bit_identical", direction="true"),
        Metric("within_bound", direction="true"),
    ),
    "BENCH_server.json": (
        # The qualitative claim is *parity* ("batched is no slower"); the
        # measured 1.7x win is load-shape dependent, so the absolute floor
        # carries this gate and the band is deliberately slack.
        Metric(
            "headline.batched_vs_unbatched", tolerance=0.6, floor=0.85
        ),
        Metric("bit_identical", direction="true"),
    ),
    "BENCH_worlds.json": (
        # Possible-worlds work (PR 8).  SIMULATE determinism is the hard
        # claim — seeded sampling must serialise identically on every
        # backend — and so is multi == singles bit-identity.  The
        # shared-scan speedup swings with catalog size and cache-clear
        # cost, so the band is slack and the modest floor ("a select
        # list beats cold singles at all") carries the claim.  The
        # recorded worlds/sec throughput is machine-absolute: never
        # gated.
        Metric("bit_identical", direction="true"),
        Metric("multi_identical", direction="true"),
        Metric("headline.shared_scan_speedup", tolerance=0.6, floor=1.1),
    ),
    "BENCH_revisions.json": (
        # Time-of-knowledge revisions (PR 9): the revision-free default
        # path must stay free — AS OF on a never-revised catalog resolves
        # constant frontiers, so its cost is capped at 5% over the plain
        # statement.  The measured ratio hovers around 1.0, so the
        # absolute cap carries the claim and the relative band is slack.
        Metric(
            "headline.asof_overhead_ratio",
            direction="lower",
            tolerance=0.10,
            floor=1.05,
        ),
        # AS OF replay must serialize bit-identically to its reference
        # run (default == AS OF latest; AS OF 0 == a base-only catalog).
        Metric("bit_identical", direction="true"),
    ),
    "BENCH_obs.json": (
        # Always-on instrumentation (PR 7): warm-path cost versus
        # NullRegistry must stay under the 2% cap.  The measured ratio
        # hovers around 1.0 (noise pushes it both ways), so the absolute
        # cap carries the claim and the relative band is slack.
        Metric(
            "headline.overhead_ratio",
            direction="lower",
            tolerance=0.05,
            floor=1.02,
        ),
    ),
}


def _lookup(payload: dict[str, Any], dotted: str) -> Any:
    value: Any = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(dotted)
        value = value[part]
    return value


def check_payloads(
    name: str, fresh: dict[str, Any], baseline: dict[str, Any]
) -> tuple[list[str], list[str]]:
    """Gate one benchmark file; returns ``(failures, notes)``."""
    failures: list[str] = []
    notes: list[str] = []
    cpus = fresh.get("cpu_count") or 1
    for metric in SPECS[name]:
        if metric.min_cpus is not None and cpus < metric.min_cpus:
            notes.append(
                f"SKIP {name}:{metric.path} (needs >= {metric.min_cpus} "
                f"cpus, host has {cpus})"
            )
            continue
        try:
            fresh_value = _lookup(fresh, metric.path)
        except KeyError:
            failures.append(f"{name}:{metric.path} missing from fresh run")
            continue
        if metric.direction == "true":
            if fresh_value is not True:
                failures.append(
                    f"{name}:{metric.path} = {fresh_value!r}, expected true"
                )
            else:
                notes.append(f"ok   {name}:{metric.path} = true")
            continue
        try:
            base_value = float(_lookup(baseline, metric.path))
        except KeyError:
            failures.append(f"{name}:{metric.path} missing from baseline")
            continue
        fresh_value = float(fresh_value)
        if metric.direction == "higher":
            band = base_value * (1.0 - metric.tolerance)
            bound = max(
                band,
                metric.floor if metric.floor is not None else band,
            )
            ok = fresh_value >= bound
            relation = ">="
        else:
            band = base_value * (1.0 + metric.tolerance)
            bound = min(
                band,
                metric.floor if metric.floor is not None else band,
            )
            ok = fresh_value <= bound
            relation = "<="
        line = (
            f"{name}:{metric.path} = {fresh_value:.3f} "
            f"(needs {relation} {bound:.3f}; baseline {base_value:.3f})"
        )
        if ok:
            notes.append(f"ok   {line}")
        else:
            failures.append(line)
    return failures, notes


def check_files(
    names: list[str], *, fresh_dir: Path, baseline_dir: Path
) -> tuple[list[str], list[str]]:
    """Gate several benchmark files from disk."""
    failures: list[str] = []
    notes: list[str] = []
    for name in names:
        if name not in SPECS:
            failures.append(
                f"{name}: no regression spec (known: {sorted(SPECS)})"
            )
            continue
        fresh_path = fresh_dir / name
        baseline_path = baseline_dir / name
        if not fresh_path.exists():
            failures.append(f"{name}: fresh results missing ({fresh_path})")
            continue
        if not baseline_path.exists():
            failures.append(
                f"{name}: committed baseline missing ({baseline_path})"
            )
            continue
        fresh = json.loads(fresh_path.read_text())
        baseline = json.loads(baseline_path.read_text())
        file_failures, file_notes = check_payloads(name, fresh, baseline)
        failures.extend(file_failures)
        notes.extend(file_notes)
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        default=sorted(SPECS),
        help="benchmark JSON names to gate (default: all known)",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the freshly produced BENCH_*.json",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=BASELINE_DIR,
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--write-baselines",
        action="store_true",
        help="copy the fresh files over the baselines instead of gating",
    )
    args = parser.parse_args(argv)
    names = list(args.files)
    if args.write_baselines:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            source = args.fresh_dir / name
            shutil.copyfile(source, args.baseline_dir / name)
            print(f"baseline updated: {args.baseline_dir / name}")
        return 0
    failures, notes = check_files(
        names, fresh_dir=args.fresh_dir, baseline_dir=args.baseline_dir
    )
    for note in notes:
        print(note)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print(f"\nall gated metrics hold ({len(notes)} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
