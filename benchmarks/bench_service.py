"""Catalog-wide query service benchmark: thread scaling and cache gap.

Two claims back the `repro.service` design, both recorded in
``BENCH_service.json`` at the repo root:

1. **Fan-out scales**: one catalog-wide SELECT over a 200-series catalog
   fans per-series work over a thread pool; the per-series work is numpy
   (``.npz`` decoding, vectorised validation, grouped reductions), which
   releases the GIL, so cold-query wall time drops near-linearly with
   workers *on multi-core hosts*.  The JSON records the full worker sweep
   plus ``cpu_count``; the pytest floor asserts >= 2x only where the
   hardware has >= 2 cores (CI does), because a single-core host cannot
   exhibit thread parallelism.
2. **The matrix cache pays**: a warm statement (materialised views
   resident in the byte-budgeted LRU cache) skips every segment reload
   and runs several times faster than a cold one.

Run directly (``python benchmarks/bench_service.py``) or via pytest
(``pytest benchmarks/bench_service.py``); the pytest entries assert the
floors.  Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) to shrink
the catalog ~5x while keeping the same shape.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.service import CatalogQueryService, MatrixCache
from repro.store import Catalog
from repro.view.omega import OmegaGrid

_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
_GRID = OmegaGrid(delta=0.5, n=8)
_H = 40
_SERIES_COUNT = 40 if _QUICK else 200
_TIMES_PER_SERIES = 150 if _QUICK else 400
_WORKER_SWEEP = (1, 2, 4, 8)
_CACHE_BUDGET = 512 << 20
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def _time(function, *, repeat: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def build_catalog(workdir: Path) -> Catalog:
    """A many-series catalog of independent random walks."""
    catalog = Catalog(workdir / "catalog")
    rng = np.random.default_rng(42)
    for index in range(_SERIES_COUNT):
        series_id = f"sensor-{index:03d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=_H, grid=_GRID
        )
        values = 20.0 + np.cumsum(
            rng.normal(0.0, 0.1, size=_TIMES_PER_SERIES + _H)
        )
        catalog.append(series_id, values)
    return catalog


def _statement(catalog: Catalog) -> str:
    return f"SELECT exceedance(21.0) FROM CATALOG '{catalog.root}'"


def bench_worker_sweep(catalog: Catalog) -> dict:
    """Cold-query wall time per worker count (fresh cache each run)."""
    statement = _statement(catalog)
    out: dict = {}
    reference_scores = None
    for workers in _WORKER_SWEEP:
        service = CatalogQueryService(
            catalog, max_workers=workers, cache_budget_bytes=_CACHE_BUDGET
        )

        def cold_run():
            service.cache.clear()
            return service.execute(statement)

        cold_s, result = _time(cold_run, repeat=3)
        if reference_scores is None:
            reference_scores = result.scores()
        else:
            # Parallel execution must not change a single result.
            assert result.scores() == reference_scores
        out[str(workers)] = {"cold_s": cold_s}
        print(
            f"cold SELECT over {_SERIES_COUNT} series, "
            f"workers={workers}: {cold_s * 1e3:7.1f} ms"
        )
    return out


def bench_cache_gap(catalog: Catalog) -> dict:
    """Cold-vs-warm gap on one long-lived service."""
    statement = _statement(catalog)
    cache = MatrixCache(_CACHE_BUDGET)
    workers = min(8, max(2, os.cpu_count() or 1))
    service = CatalogQueryService(
        catalog, max_workers=workers, cache=cache
    )

    def cold_run():
        cache.clear()
        return service.execute(statement)

    cold_s, _ = _time(cold_run, repeat=3)
    warm_s, _ = _time(lambda: service.execute(statement), repeat=5)
    stats = cache.stats
    out = {
        "workers": workers,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": cold_s / warm_s,
        "cached_entries": stats.entries,
        "cached_bytes": stats.current_bytes,
        "hit_rate": stats.hit_rate,
    }
    print(
        f"cache gap (workers={workers}): cold {cold_s * 1e3:7.1f} ms, "
        f"warm {warm_s * 1e3:7.1f} ms ({out['warm_speedup']:.1f}x, "
        f"{stats.entries} views / {stats.current_bytes / 1e6:.1f} MB resident)"
    )
    return out


def run_benchmark() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_service_"))
    try:
        catalog = build_catalog(workdir)
        sweep = bench_worker_sweep(catalog)
        cache = bench_cache_gap(catalog)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    single = sweep["1"]["cold_s"]
    best_workers, best = min(
        sweep.items(), key=lambda item: item[1]["cold_s"]
    )
    results = {
        "quick": _QUICK,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "series_count": _SERIES_COUNT,
        "times_per_series": _TIMES_PER_SERIES,
        "grid": {"delta": _GRID.delta, "n": _GRID.n},
        "H": _H,
        "statement": "SELECT exceedance(21.0) FROM CATALOG '<root>'",
        "worker_sweep": sweep,
        "cache_gap": cache,
        "headline": {
            "parallel_speedup": single / best["cold_s"],
            "best_workers": int(best_workers),
            "warm_speedup": cache["warm_speedup"],
        },
    }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {_OUTPUT}")
    return results


# ----------------------------------------------------------------------
# Pytest entry points (the acceptance floors).
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_benchmark()
    return _RESULTS


def test_warm_cache_beats_cold_reads():
    results = _results()
    speedup = results["cache_gap"]["warm_speedup"]
    floor = 2.0
    assert speedup >= floor, (
        f"warm statement only {speedup:.1f}x faster than cold over "
        f"{results['series_count']} series (floor {floor}x)"
    )


def test_cache_holds_every_series():
    results = _results()
    assert results["cache_gap"]["cached_entries"] == results["series_count"]
    assert results["cache_gap"]["hit_rate"] > 0.0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="thread scaling needs >= 2 cores; single-core hosts record the "
           "sweep without asserting the floor",
)
def test_parallel_execution_speedup():
    results = _results()
    speedup = results["headline"]["parallel_speedup"]
    assert speedup >= 2.0, (
        f"best worker count only {speedup:.1f}x faster than sequential on "
        f"{results['cpu_count']} cores (floor 2x)"
    )


def test_parallel_overhead_bounded_on_any_host():
    # Even where threads cannot win (1 core), the fan-out machinery must
    # not add more than ~45% to the sequential wall time.
    results = _results()
    sweep = results["worker_sweep"]
    worst = max(entry["cold_s"] for entry in sweep.values())
    assert worst <= sweep["1"]["cold_s"] * 1.45


if __name__ == "__main__":
    run_benchmark()
