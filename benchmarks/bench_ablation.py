"""Ablations of the implementation choices documented in DESIGN.md."""

from repro.experiments.ablation import run_ablation


def test_ablations(benchmark, record_table):
    table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table(table)
    rows = {(row[0], row[1]): row for row in table.rows}

    # Warm-starting must be faster and quality-neutral.
    warm = rows[("garch estimation", "warm-start")]
    cold = rows[("garch estimation", "cold multi-start")]
    assert warm[2] < cold[2]
    assert abs(warm[3] - cold[3]) < 0.4

    # The analytic gradient must beat finite differences.
    analytic = rows[("garch(1,1) mle", "analytic gradient")]
    numeric = rows[("garch(1,1) mle", "finite differences")]
    assert analytic[2] < numeric[2]

    # Serving stored rows must beat recomputing the CDF at lookup time.
    stored = rows[("sigma-cache payload", "stored rho rows")]
    recompute = rows[("sigma-cache payload", "recompute CDF per hit")]
    assert stored[2] < recompute[2]
