"""Store-subsystem benchmark: persistence round trips and append scaling.

Two claims back the `repro.store` design, both recorded in
``BENCH_store.json`` at the repo root:

1. **Binary beats text**: saving + loading a view through the columnar
   ``.npz`` backend is >= 10x faster than the (already vectorised) CSV
   path at T = 1e5 inference times.
2. **Appends are incremental**: appending a 100-value micro-batch to a
   catalog series costs the same whether the stored view holds 1e3 or
   1e5 rows — cost scales with the batch, not with everything stored
   (the per-batch segment layout never rebuilds earlier rows).

Run directly (``python benchmarks/bench_store.py``) or via pytest
(``pytest benchmarks/bench_store.py``); the pytest entry asserts the two
acceptance floors.  Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does)
to shrink the workloads ~100x while keeping the same shape.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.db.prob_view import ProbabilisticView
from repro.db.storage import load_view_csv, save_view_csv
from repro.metrics.base import DensitySeries
from repro.store import Catalog
from repro.store.binary import load_view_npz, save_view_npz
from repro.view.builder import ViewBuilder
from repro.view.omega import OmegaGrid

_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
_GRID = OmegaGrid(delta=0.5, n=8)
_H = 40
_BATCH = 100
_ROUNDTRIP_SIZES = (1_000, 10_000, 100_000) if not _QUICK else (500, 2_000)
_APPEND_TOTALS = (1_000, 10_000, 100_000) if not _QUICK else (500, 2_000)
_BATCH_SIZES = (10, 100, 1_000)
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_store.json"


def _time(function, *, repeat: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _view(count: int) -> ProbabilisticView:
    rng = np.random.default_rng(count)
    means = 20.0 + np.cumsum(rng.normal(0.0, 0.25, size=count))
    sigmas = rng.uniform(0.5, 2.0, size=count)
    forecasts = DensitySeries.from_columns(
        np.arange(count, dtype=np.int64),
        means,
        sigmas,
        means - 3.0 * sigmas,
        means + 3.0 * sigmas,
        family="gaussian",
    )
    return ProbabilisticView.from_matrix(
        "bench", ViewBuilder(_GRID).build_matrix(forecasts), _GRID
    )


def bench_roundtrips(workdir: Path) -> dict:
    """Save + load through both backends at each size."""
    out: dict = {}
    for count in _ROUNDTRIP_SIZES:
        view = _view(count)
        csv_path = workdir / f"view_{count}.csv"
        npz_path = workdir / f"view_{count}.npz"
        csv_save_s, _ = _time(lambda: save_view_csv(view, csv_path))
        csv_load_s, _ = _time(lambda: load_view_csv(csv_path))
        npz_save_s, _ = _time(lambda: save_view_npz(view, npz_path), repeat=3)
        npz_load_s, _ = _time(lambda: load_view_npz(npz_path), repeat=3)
        csv_total = csv_save_s + csv_load_s
        npz_total = npz_save_s + npz_load_s
        out[str(count)] = {
            "tuples": len(view),
            "csv_save_s": csv_save_s,
            "csv_load_s": csv_load_s,
            "npz_save_s": npz_save_s,
            "npz_load_s": npz_load_s,
            "roundtrip_speedup": csv_total / npz_total,
            "csv_bytes": csv_path.stat().st_size,
            "npz_bytes": npz_path.stat().st_size,
        }
        print(
            f"roundtrip T={count:>7}: csv {csv_total * 1e3:8.1f} ms, "
            f"npz {npz_total * 1e3:7.1f} ms  "
            f"({out[str(count)]['roundtrip_speedup']:6.1f}x)"
        )
    return out


def _prefill(workdir: Path, total_times: int, tag: str) -> Catalog:
    """A catalog series already holding ``total_times`` view times.

    Prefills in 1000-value appends so the large series also carries a
    realistic segment count — the flat-latency claim is then measured
    against a catalog that really went through many appends.
    """
    catalog = Catalog(workdir / f"catalog_{tag}")
    catalog.create_series(
        "bench", metric="variable_threshold", H=_H, grid=_GRID,
        cache_min_sigma=1e-4, cache_max_sigma=1e4, cache_distance=0.01,
    )
    rng = np.random.default_rng(7)
    values = 20.0 + np.cumsum(rng.normal(0.0, 0.1, size=total_times + _H))
    for start in range(0, values.size, 1000):
        catalog.append("bench", values[start : start + 1000])
    return catalog


def bench_append_vs_total(workdir: Path) -> dict:
    """Latency of one 100-value append as the stored view grows."""
    out: dict = {}
    rng = np.random.default_rng(13)
    for total in _APPEND_TOTALS:
        catalog = _prefill(workdir, total, f"total_{total}")
        handle = catalog.series("bench")
        timings = []
        for _ in range(5):
            batch = 20.0 + rng.normal(0.0, 0.1, size=_BATCH)
            elapsed, _ = _time(lambda: handle.append(batch))
            timings.append(elapsed)
        out[str(total)] = {
            "stored_times": total,
            "stored_tuples": handle.tuple_count,
            "append_batch": _BATCH,
            "append_s": min(timings),
        }
        print(
            f"append batch={_BATCH} onto T={total:>7}: "
            f"{min(timings) * 1e3:6.2f} ms"
        )
    return out


def bench_append_vs_batch(workdir: Path) -> dict:
    """Latency of one append as the micro-batch itself grows."""
    out: dict = {}
    total = max(_APPEND_TOTALS)
    catalog = _prefill(workdir, total, "batchscale")
    handle = catalog.series("bench")
    rng = np.random.default_rng(17)
    for batch_size in _BATCH_SIZES:
        timings = []
        for _ in range(3):
            batch = 20.0 + rng.normal(0.0, 0.1, size=batch_size)
            elapsed, _ = _time(lambda: handle.append(batch))
            timings.append(elapsed)
        out[str(batch_size)] = {"append_s": min(timings)}
        print(
            f"append batch={batch_size:>5} onto T={total}: "
            f"{min(timings) * 1e3:6.2f} ms"
        )
    return out


def run_benchmark() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        results = {
            "quick": _QUICK,
            "grid": {"delta": _GRID.delta, "n": _GRID.n},
            "H": _H,
            "python": platform.python_version(),
            "roundtrip": bench_roundtrips(workdir),
            "append_vs_total": bench_append_vs_total(workdir),
            "append_vs_batch": bench_append_vs_batch(workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    largest = str(max(_ROUNDTRIP_SIZES))
    results["headline"] = {
        "roundtrip_speedup_at_max_T":
            results["roundtrip"][largest]["roundtrip_speedup"],
        "append_latency_ratio_max_vs_min_T":
            results["append_vs_total"][str(max(_APPEND_TOTALS))]["append_s"]
            / results["append_vs_total"][str(min(_APPEND_TOTALS))]["append_s"],
    }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {_OUTPUT}")
    return results


# ----------------------------------------------------------------------
# Pytest entry points (the acceptance floors).
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_benchmark()
    return _RESULTS


def test_binary_roundtrip_beats_csv():
    results = _results()
    largest = str(max(_ROUNDTRIP_SIZES))
    speedup = results["roundtrip"][largest]["roundtrip_speedup"]
    floor = 10.0 if not _QUICK else 3.0
    assert speedup >= floor, (
        f"binary round trip only {speedup:.1f}x faster than CSV at "
        f"T={largest} (floor {floor}x)"
    )


def test_append_cost_scales_with_batch_not_total():
    results = _results()
    ratio = results["headline"]["append_latency_ratio_max_vs_min_T"]
    # The stored view grows 100x (quick: 4x) across the sweep; an O(T)
    # append would blow far past this bound.
    assert ratio <= 5.0, (
        f"append latency grew {ratio:.1f}x while the stored view grew "
        f"{max(_APPEND_TOTALS) // min(_APPEND_TOTALS)}x"
    )


if __name__ == "__main__":
    run_benchmark()
