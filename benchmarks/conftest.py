"""Benchmark-suite plumbing.

Each bench runs one experiment from :mod:`repro.experiments`, records the
resulting table, and asserts the paper's qualitative shape.  Tables are
written to ``benchmarks/results/`` and replayed in the terminal summary, so
``pytest benchmarks/ --benchmark-only`` shows every reproduced figure even
with output capture enabled.

Set ``REPRO_SCALE`` (default 0.08) to trade fidelity for runtime;
``REPRO_SCALE=1`` runs the paper-sized workloads.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentTable

_RESULTS: list[ExperimentTable] = []
_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Record an :class:`ExperimentTable` for the terminal summary + disk."""

    def _record(table: ExperimentTable) -> ExperimentTable:
        _RESULTS.append(table)
        _RESULTS_DIR.mkdir(exist_ok=True)
        slug = (
            table.experiment_id.lower()
            .replace(".", "")
            .replace(" ", "_")
        )
        (_RESULTS_DIR / f"{slug}.txt").write_text(table.render() + "\n")
        return table

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced paper tables/figures")
    for table in _RESULTS:
        terminalreporter.write_line("")
        for line in table.render().splitlines():
            terminalreporter.write_line(line)
