"""Fig. 11 — per-inference cost of the four metrics."""

import numpy as np

from repro.experiments.fig11 import run_fig11


def test_fig11_metric_efficiency(benchmark, record_table):
    table = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    record_table(table)
    ut = np.array(table.column("UT"))
    vt = np.array(table.column("VT"))
    ag = np.array(table.column("ARMA-GARCH"))
    kg = np.array(table.column("Kalman-GARCH"))
    # Paper shape: Kalman-GARCH is the slowest metric (EM estimation);
    # the naive metrics are the cheapest.
    assert np.mean(kg) > np.mean(ag)
    assert np.mean(ut) < np.mean(ag)
    assert np.mean(vt) < np.mean(ag)
    # The Kalman-GARCH slowdown factor over ARMA-GARCH is material
    # (paper: 5.1-18.6x; the floor here is deliberately conservative).
    assert float(np.mean(kg) / np.mean(ag)) > 1.5
