"""Fig. 15 — ARCH-effect verification on both datasets."""

import numpy as np

from repro.experiments.fig15 import run_fig15


def test_fig15_time_varying_volatility(benchmark, record_table):
    table = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    record_table(table)
    by_dataset: dict[str, list[float]] = {}
    rejects: dict[str, list[bool]] = {}
    for row in table.rows:
        by_dataset.setdefault(row[0], []).append(row[5])
        rejects.setdefault(row[0], []).append(row[4])
    # Both datasets reject the i.i.d. null at small lags.
    assert rejects["campus-data"][0] and rejects["campus-data"][1]
    assert rejects["car-data"][0]
    # Campus-data shows a much stronger ARCH effect than car-data at every
    # lag (the paper's Fig. 15(a) vs 15(b) contrast).
    campus = np.array(by_dataset["campus-data"])
    car = np.array(by_dataset["car-data"])
    assert np.all(campus > car * 0.9)
    assert float(campus[0] / car[0]) > 2.0
