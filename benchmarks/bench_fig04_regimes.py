"""Fig. 4 — volatility regimes exist in both datasets."""

from repro.experiments.fig04 import run_fig04


def test_fig04_volatility_regimes(benchmark, record_table):
    table = benchmark.pedantic(run_fig04, rounds=1, iterations=1)
    record_table(table)
    assert all(table.column("regimes present"))
    ratios = table.column("volatile/quiet ratio")
    # Both datasets must show clearly separated regimes (Region A vs B).
    assert min(ratios) > 3.0
