"""Extension study: where does EWMA sit between the naive and GARCH metrics?

Not a paper figure — an extension experiment quantifying the cost/quality
trade-off the paper's metric ladder implies: UT/VT (no volatility model),
EWMA (fixed-parameter recursion), ARMA-GARCH (per-window MLE).
"""

import time


from repro.data.synthetic import make_dataset
from repro.evaluation.density_distance import density_distance
from repro.experiments.common import ExperimentTable, get_scale, steps_for
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.ewma import EWMAMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric


def _run_extension_study(scale=None, H=60, rng_seed=0):
    scale = get_scale(scale)
    series = make_dataset("campus", scale=scale, rng=rng_seed)
    budget = max(80, int(1200 * scale))
    step = steps_for(len(series) - H, budget)
    table = ExperimentTable(
        experiment_id="Ext. metrics",
        title="Metric ladder: quality vs cost (campus-data)",
        headers=["metric", "density distance", "ms/inference"],
        notes=f"H={H}, scale={scale:g}; EWMA = fixed-parameter GARCH limit",
    )
    for metric in (
        VariableThresholdingMetric(),
        EWMAMetric(),
        ARMAGARCHMetric(),
    ):
        start = time.perf_counter()
        forecasts = metric.run(series, H, step=step)
        elapsed = time.perf_counter() - start
        table.add_row(
            metric.name,
            round(density_distance(forecasts, series), 4),
            round(1000.0 * elapsed / len(forecasts), 3),
        )
    return table


def test_extension_metric_ladder(benchmark, record_table):
    table = benchmark.pedantic(_run_extension_study, rounds=1, iterations=1)
    record_table(table)
    rows = {row[0]: row for row in table.rows}
    # EWMA must be far cheaper than ARMA-GARCH...
    assert rows["ewma"][2] < rows["arma_garch"][2] / 3.0
    # ...and its adaptive variance must beat the raw-window VT baseline.
    assert rows["ewma"][1] < rows["variable_threshold"][1]
    # The full MLE stays competitive on quality (density distance has a
    # sampling noise floor of ~0.3 at this inference budget, so only a
    # coarse comparison is stable here; Fig. 10 carries the precise one).
    assert rows["arma_garch"][1] <= rows["ewma"][1] * 1.6
