"""Segment-synopsis benchmark: zone-map pruning and APPROX speedups.

Three claims back the synopsis design, recorded in ``BENCH_synopsis.json``
at the repo root:

1. **Pruning pays on selective queries**: a threshold query whose WHERE
   range touches one of each series' many segments scans only the
   surviving segments.  Over a 1000-series catalog (100 in quick mode)
   the pruned cold query beats the unpruned cold query by >= 10x.
2. **Pruned results are bit-identical**: for every benchmarked statement
   the pruned and unpruned runs serialize to the same canonical bytes
   (modulo the pruning-stats block).  Recorded as ``bit_identical`` and
   gated as a boolean.
3. **APPROX is sublinear and bounded**: ``SELECT APPROX`` answers from
   synopses alone — orders of magnitude faster than the exact scan — and
   every per-series interval contains the exact score (recorded as
   ``within_bound``, gated as a boolean).

Run directly (``python benchmarks/bench_synopsis.py``) or via pytest
(``pytest benchmarks/bench_synopsis.py``); the pytest entries assert the
floors.  Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) to shrink
the catalog 10x while keeping the same shape.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.server.protocol import canonical_dumps, serialize_result
from repro.service import CatalogQueryService
from repro.store import Catalog
from repro.view.omega import OmegaGrid

_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
_GRID = OmegaGrid(delta=0.5, n=4)
_H = 16
_SERIES_COUNT = 100 if _QUICK else 1000
_SEGMENTS_PER_SERIES = 24
_TIMES_PER_SEGMENT = 8
_CACHE_BUDGET = 512 << 20
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_synopsis.json"


def _time(function, *, repeat: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def build_catalog(workdir: Path) -> Catalog:
    """Many series, each split over many segments (one per micro-batch)."""
    catalog = Catalog(workdir / "catalog")
    rng = np.random.default_rng(42)
    total = _H + _SEGMENTS_PER_SERIES * _TIMES_PER_SEGMENT
    for index in range(_SERIES_COUNT):
        series_id = f"sensor-{index:04d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=_H, grid=_GRID
        )
        values = 20.0 + np.cumsum(rng.normal(0.0, 0.1, size=total))
        # Warm-up feed first, then one append per emitted segment.
        catalog.append(series_id, values[:_H])
        for start in range(_H, total, _TIMES_PER_SEGMENT):
            catalog.append(
                series_id, values[start : start + _TIMES_PER_SEGMENT]
            )
    return catalog


def _statements(catalog: Catalog) -> dict[str, str]:
    # Inference times start after the H-value warm-up and each append
    # lands as one segment of _TIMES_PER_SEGMENT consecutive times; the
    # selective WHERE range covers exactly the last segment.
    last_lo = _H + (_SEGMENTS_PER_SERIES - 1) * _TIMES_PER_SEGMENT
    last_hi = last_lo + _TIMES_PER_SEGMENT - 1
    return {
        "selective_threshold": (
            f"SELECT threshold(0.3) FROM CATALOG '{catalog.root}' "
            f"WHERE t BETWEEN {last_lo} AND {last_hi}"
        ),
        "full_exceedance": (
            f"SELECT exceedance(21.0) FROM CATALOG '{catalog.root}'"
        ),
        "windowed_expected_value": (
            f"SELECT expected_value FROM CATALOG '{catalog.root}' "
            f"WHERE t BETWEEN {last_lo} AND {last_hi}"
        ),
    }


def _canonical_sans_stats(result) -> str:
    payload = serialize_result(result)
    payload.pop("pruning", None)
    return canonical_dumps(payload)


def bench_pruning(catalog: Catalog) -> tuple[dict, bool]:
    """Cold pruned vs cold unpruned per statement, plus bit-identity."""
    out: dict = {}
    identical = True
    pruned_service = CatalogQueryService(
        catalog,
        backend="sequential",
        cache_budget_bytes=_CACHE_BUDGET,
        pruning=True,
    )
    full_service = CatalogQueryService(
        catalog,
        backend="sequential",
        cache_budget_bytes=_CACHE_BUDGET,
        pruning=False,
    )
    for name, statement in _statements(catalog).items():

        def pruned_run():
            pruned_service.cache.clear()
            return pruned_service.execute(statement)

        def full_run():
            full_service.cache.clear()
            return full_service.execute(statement)

        full_s, full_result = _time(full_run, repeat=3)
        pruned_s, pruned_result = _time(pruned_run, repeat=3)
        identical = identical and (
            _canonical_sans_stats(pruned_result)
            == _canonical_sans_stats(full_result)
        )
        stats = pruned_result.stats
        out[name] = {
            "unpruned_cold_s": full_s,
            "pruned_cold_s": pruned_s,
            "prune_speedup": full_s / pruned_s,
            "segments_total": stats.segments_total,
            "segments_pruned": stats.segments_pruned,
            "series_skipped": stats.series_skipped,
        }
        print(
            f"{name}: unpruned {full_s * 1e3:8.1f} ms, pruned "
            f"{pruned_s * 1e3:8.1f} ms ({out[name]['prune_speedup']:.1f}x; "
            f"{stats.segments_pruned}/{stats.segments_total} segments "
            f"pruned, {stats.series_skipped} series skipped)"
        )
    pruned_service.close()
    full_service.close()
    return out, identical


def bench_approx(catalog: Catalog) -> tuple[dict, bool]:
    """APPROX wall time vs the exact cold scan, plus bound containment."""
    out: dict = {}
    within = True
    service = CatalogQueryService(
        catalog, backend="sequential", cache_budget_bytes=_CACHE_BUDGET
    )
    for name, statement in _statements(catalog).items():
        approx_statement = statement.replace("SELECT ", "SELECT APPROX ", 1)

        def exact_run():
            service.cache.clear()
            return service.execute(statement)

        exact_s, exact_result = _time(exact_run, repeat=3)
        approx_s, approx_result = _time(
            lambda: service.execute(approx_statement), repeat=3
        )
        scores = exact_result.scores()
        for entry in approx_result.results:
            payload = entry.result
            score = scores[entry.series_id]
            within = within and (
                payload["lower"] - 1e-9 <= score <= payload["upper"] + 1e-9
            )
            within = within and (
                abs(score - payload["estimate"])
                <= payload["error_bound"] + 1e-9
            )
        out[name] = {
            "exact_cold_s": exact_s,
            "approx_s": approx_s,
            "approx_speedup": exact_s / approx_s,
        }
        print(
            f"{name}: exact {exact_s * 1e3:8.1f} ms, approx "
            f"{approx_s * 1e3:8.1f} ms "
            f"({out[name]['approx_speedup']:.1f}x)"
        )
    service.close()
    return out, within


def run_benchmark() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_synopsis_"))
    try:
        build_s, catalog = _time(lambda: build_catalog(workdir))
        print(
            f"built {_SERIES_COUNT} series x {_SEGMENTS_PER_SERIES} "
            f"segments in {build_s:.1f} s"
        )
        pruning, bit_identical = bench_pruning(catalog)
        approx, within_bound = bench_approx(catalog)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    results = {
        "quick": _QUICK,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "series_count": _SERIES_COUNT,
        "segments_per_series": _SEGMENTS_PER_SERIES,
        "times_per_segment": _TIMES_PER_SEGMENT,
        "grid": {"delta": _GRID.delta, "n": _GRID.n},
        "H": _H,
        "pruning": pruning,
        "approx": approx,
        "bit_identical": bit_identical,
        "within_bound": within_bound,
        "headline": {
            "prune_speedup": pruning["selective_threshold"]["prune_speedup"],
            "approx_speedup": approx["full_exceedance"]["approx_speedup"],
        },
    }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {_OUTPUT}")
    return results


# ----------------------------------------------------------------------
# Pytest entry points (the acceptance floors).
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_benchmark()
    return _RESULTS


def test_selective_query_prunes_10x():
    results = _results()
    speedup = results["headline"]["prune_speedup"]
    floor = 10.0
    assert speedup >= floor, (
        f"selective threshold query only {speedup:.1f}x faster with "
        f"pruning over {results['series_count']} series (floor {floor}x)"
    )


def test_pruned_results_bit_identical():
    results = _results()
    assert results["bit_identical"], (
        "pruned execution serialized differently from unpruned"
    )


def test_approx_beats_exact_scan():
    results = _results()
    speedup = results["headline"]["approx_speedup"]
    floor = 5.0
    assert speedup >= floor, (
        f"APPROX only {speedup:.1f}x faster than the exact cold scan "
        f"(floor {floor}x)"
    )


def test_approx_estimates_within_bounds():
    results = _results()
    assert results["within_bound"], (
        "an APPROX interval failed to contain its exact score"
    )


if __name__ == "__main__":
    run_benchmark()
