"""Columnar-engine throughput: view construction and query rows/sec.

Measures the batch data path (``build_matrix`` + ``from_matrix`` +
vectorised queries) against reference implementations of the seed
row-at-a-time path (one CDF call per forecast, one ``ProbTuple`` per
range, Python loops per query) for ``T`` in {1e3, 1e4, 1e5} inference
times, and records the trajectory in ``BENCH_columnar.json`` at the repo
root.

Run directly (``python benchmarks/bench_columnar_throughput.py``) or via
pytest (``pytest benchmarks/bench_columnar_throughput.py``); the pytest
entry also asserts the acceptance floors: >= 10x on Gaussian view
construction and >= 5x on threshold / expected-value queries at T=1e5.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.queries import expected_value_query, threshold_query
from repro.metrics.base import DensitySeries
from repro.view.builder import ViewBuilder
from repro.view.omega import OmegaGrid

_SIZES = (1_000, 10_000, 100_000)
_GRID = OmegaGrid(delta=0.5, n=8)
_TAU = 0.5
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_columnar.json"


def _forecasts(count: int) -> DensitySeries:
    rng = np.random.default_rng(count)
    means = 20.0 + np.cumsum(rng.normal(0.0, 0.25, size=count))
    sigmas = rng.uniform(0.5, 2.0, size=count)
    return DensitySeries.from_columns(
        np.arange(count, dtype=np.int64),
        means,
        sigmas,
        means - 3.0 * sigmas,
        means + 3.0 * sigmas,
        family="gaussian",
    )


def _time(function, *, repeat: int = 1):
    """Best-of-``repeat`` wall time and the last return value."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


# ----------------------------------------------------------------------
# Seed reference implementations (the pre-columnar code path).
# ----------------------------------------------------------------------
def _seed_build(forecasts: DensitySeries, builder: ViewBuilder) -> ProbabilisticView:
    tuples = []
    for forecast in forecasts:
        row = builder.build_row(forecast)
        for omega, probability in zip(_GRID.ranges_around(row.mean),
                                      row.probabilities):
            tuples.append(ProbTuple(
                t=row.t, low=omega.low, high=omega.high,
                probability=float(np.clip(probability, 0.0, 1.0)),
                label=omega.label,
            ))
    return ProbabilisticView("seed", tuples)


def _seed_threshold(view: ProbabilisticView, tau: float) -> list[ProbTuple]:
    return [tup for tup in view if tup.probability >= tau]


def _seed_expected_value(view: ProbabilisticView) -> dict[int, float]:
    out: dict[int, float] = {}
    for t in view.times:
        tuples = view.tuples_at(t)
        mass = sum(tup.probability for tup in tuples)
        out[t] = sum(
            tup.probability * 0.5 * (tup.low + tup.high) for tup in tuples
        ) / mass
    return out


# ----------------------------------------------------------------------
# The benchmark proper.
# ----------------------------------------------------------------------
def run_benchmark() -> dict:
    results: dict = {
        "grid": {"delta": _GRID.delta, "n": _GRID.n},
        "tau": _TAU,
        "python": platform.python_version(),
        "sizes": {},
    }
    for count in _SIZES:
        forecasts = _forecasts(count)
        builder = ViewBuilder(_GRID)

        columnar_s, columnar_view = _time(
            lambda: ProbabilisticView.from_matrix(
                "columnar", builder.build_matrix(forecasts), _GRID
            ),
            repeat=3,
        )
        seed_s, seed_view = _time(lambda: _seed_build(forecasts, builder))

        # Query timings: the seed loops run on the fully materialised seed
        # view, the vectorised queries on the columnar view.
        seed_thr_s, seed_hits = _time(lambda: _seed_threshold(seed_view, _TAU))
        col_thr_s, col_hits = _time(
            lambda: threshold_query(columnar_view, _TAU), repeat=3
        )
        assert len(seed_hits) == len(col_hits)

        seed_ev_s, seed_ev = _time(lambda: _seed_expected_value(seed_view))
        col_ev_s, col_ev = _time(
            lambda: expected_value_query(columnar_view), repeat=3
        )
        assert seed_ev.keys() == col_ev.keys()

        tuples = len(columnar_view)
        results["sizes"][str(count)] = {
            "tuples": tuples,
            "view_build": {
                "seed_s": seed_s,
                "columnar_s": columnar_s,
                "speedup": seed_s / columnar_s,
                "columnar_rows_per_s": tuples / columnar_s,
            },
            "threshold_query": {
                "seed_s": seed_thr_s,
                "columnar_s": col_thr_s,
                "speedup": seed_thr_s / col_thr_s,
                "columnar_rows_per_s": tuples / col_thr_s,
            },
            "expected_value_query": {
                "seed_s": seed_ev_s,
                "columnar_s": col_ev_s,
                "speedup": seed_ev_s / col_ev_s,
                "columnar_rows_per_s": tuples / col_ev_s,
            },
        }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def test_columnar_throughput():
    """Acceptance floors at T=1e5: 10x view build, 5x bulk queries."""
    results = run_benchmark()
    top = results["sizes"][str(_SIZES[-1])]
    assert top["view_build"]["speedup"] >= 10.0
    assert top["threshold_query"]["speedup"] >= 5.0
    assert top["expected_value_query"]["speedup"] >= 5.0


if __name__ == "__main__":
    report = run_benchmark()
    for count, entry in report["sizes"].items():
        print(f"T={count} ({entry['tuples']} tuples)")
        for key in ("view_build", "threshold_query", "expected_value_query"):
            data = entry[key]
            print(
                f"  {key:22s} seed {data['seed_s']*1e3:9.2f} ms   "
                f"columnar {data['columnar_s']*1e3:8.2f} ms   "
                f"{data['speedup']:8.1f}x   "
                f"{data['columnar_rows_per_s']:.3g} rows/s"
            )
    print(f"\nwrote {_OUTPUT}")
