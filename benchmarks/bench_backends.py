"""Executor-backend benchmark: thread vs process vs sequential.

The claim behind `repro.service.backends` (recorded in
``BENCH_backends.json`` at the repo root):

1. **Processes beat threads on CPU-bound catalog scans**: a cold
   catalog-wide SELECT pays segment decoding, columnar view construction,
   and the aggregate itself — work that holds the GIL for long stretches
   (small-array numpy, per-segment Python bookkeeping).  The thread
   backend therefore serialises on multi-core hosts, while the process
   backend runs truly parallel and (with the store's layout-v2 segments)
   memory-maps columns zero-copy, sharing page cache across workers
   instead of rehydrating per-worker copies.  The floor asserts the
   process backend clears **1.0x** thread throughput on hosts with >= 2
   cores (the stretch target of 2.0x is recorded ungated); single-core
   hosts record the sweep without asserting.
2. **Parity is bit-exact**: the canonical JSON serialisation of every
   statement's result is byte-identical across sequential, thread, and
   process execution — parallelism must never change an answer.  The
   same contract covers the process backend's two result transports:
   shared-memory descriptors and the plain-pickle fallback
   (``REPRO_SHM_TRANSPORT=0``) must produce identical canonical bytes,
   and the sweep records the transport counters
   (``shm_chunks``/``pickle_chunks``/``shm_fallbacks``/``shm_bytes``)
   for both modes.

Run directly (``python benchmarks/bench_backends.py``) or via pytest
(``pytest benchmarks/bench_backends.py``); the pytest entries assert the
floors.  Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) to shrink
the catalog while keeping the same shape.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.server.protocol import canonical_dumps, serialize_result
from repro.service import CatalogQueryService, shm_available
from repro.store import Catalog
from repro.view.omega import OmegaGrid

_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
_GRID = OmegaGrid(delta=0.5, n=8)
_H = 40
# Per-series work must dominate per-chunk IPC for the process backend's
# ratio to mean anything: short series measure pipe latency, not compute.
# Quick mode therefore shrinks the series *count*, never the per-series
# size — fixed IPC overhead does not shrink with the workload.
_SERIES_COUNT = 12 if _QUICK else 32
_TIMES_PER_SERIES = 1000
_COLD_REPEATS = 2 if _QUICK else 3
_WARM_REPEATS = 3 if _QUICK else 5
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_backends.json"

#: The throughput statement: time_above composes the exceedance vector,
#: a windowed reduction, and per-time dict materialisation — the
#: CPU-bound shape the process backend exists for.
_AGGREGATE = "time_above(21.0, 8)"


def build_catalog(workdir: Path) -> Catalog:
    """A many-series, layout-v2 catalog of independent random walks."""
    catalog = Catalog(workdir / "catalog", segment_layout="v2")
    rng = np.random.default_rng(42)
    for index in range(_SERIES_COUNT):
        series_id = f"sensor-{index:03d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=_H, grid=_GRID
        )
        values = 20.0 + np.cumsum(
            rng.normal(0.0, 0.1, size=_TIMES_PER_SERIES + _H)
        )
        catalog.append(series_id, values)
    return catalog


def _statement(catalog: Catalog, aggregate: str = _AGGREGATE) -> str:
    return f"SELECT {aggregate} FROM CATALOG '{catalog.root}'"


def _parity_statements(catalog: Catalog) -> list[str]:
    return [
        _statement(catalog, "expected_value"),
        _statement(catalog, "exceedance(21.0)"),
        f"SELECT threshold(0.2) FROM CATALOG '{catalog.root}' TOP 5",
        _statement(catalog),
    ]


def _service(catalog: Catalog, backend: str, *, budget: int) -> CatalogQueryService:
    workers = None if backend != "sequential" else 1
    return CatalogQueryService(
        catalog, backend=backend, max_workers=workers,
        cache_budget_bytes=budget,
    )


def bench_backend(catalog: Catalog, backend: str) -> dict:
    """Cold and warm wall times for one backend."""
    statement = _statement(catalog)
    out: dict = {}
    # Cold scans: a 1-byte cache budget makes every view oversize for the
    # cache (thread-shared and per-worker alike), so each execute pays
    # the full segment-decode + view-build + aggregate path.
    with _service(catalog, backend, budget=1) as service:
        service.execute(statement)  # Untimed: pool spawn / first touch.
        start = time.perf_counter()
        for _ in range(_COLD_REPEATS):
            service.execute(statement)
        out["cold_s"] = (time.perf_counter() - start) / _COLD_REPEATS
    # Warm scans: everything resident (shared cache for threads, one
    # private cache per worker process), pure aggregate throughput.
    with _service(catalog, backend, budget=512 << 20) as service:
        service.execute(statement)  # Untimed: populates the cache(s).
        start = time.perf_counter()
        for _ in range(_WARM_REPEATS):
            service.execute(statement)
        out["warm_s"] = (time.perf_counter() - start) / _WARM_REPEATS
    print(
        f"{backend:>10}: cold {out['cold_s'] * 1e3:7.1f} ms, "
        f"warm {out['warm_s'] * 1e3:7.1f} ms "
        f"({_SERIES_COUNT} series x {_TIMES_PER_SERIES} times)"
    )
    return out


def bench_parity(catalog: Catalog) -> bool:
    """Canonical result bytes must match across all three backends."""
    statements = _parity_statements(catalog)
    payloads: list[list[str]] = []
    for backend in ("sequential", "thread", "process"):
        with _service(catalog, backend, budget=512 << 20) as service:
            payloads.append(
                [
                    canonical_dumps(serialize_result(service.execute(s)))
                    for s in statements
                ]
            )
    identical = payloads[0] == payloads[1] == payloads[2]
    print(f"bit-identical across backends: {identical}")
    return identical


@contextlib.contextmanager
def _shm_disabled():
    """Force the process backend onto the plain-pickle transport."""
    previous = os.environ.get("REPRO_SHM_TRANSPORT")
    os.environ["REPRO_SHM_TRANSPORT"] = "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_SHM_TRANSPORT"]
        else:
            os.environ["REPRO_SHM_TRANSPORT"] = previous


def bench_shm_transport(catalog: Catalog) -> dict:
    """Shared-memory vs pickle result transport on the process backend.

    Runs the parity statement set twice through process services — once
    with the default (shared-memory where available) transport and once
    with ``REPRO_SHM_TRANSPORT=0`` — and records both transport counter
    blocks plus whether the canonical bytes matched.  The parity bit is
    gated (transports must never change an answer); the counters are
    recorded for the regression baseline's context.
    """
    statements = _parity_statements(catalog)
    out: dict = {"available": shm_available()}
    with _service(catalog, "process", budget=512 << 20) as service:
        default_payload = [
            canonical_dumps(serialize_result(service.execute(s)))
            for s in statements
        ]
        out["stats"] = service.backend.transport_stats()
    with _shm_disabled():
        with _service(catalog, "process", budget=512 << 20) as service:
            pickle_payload = [
                canonical_dumps(serialize_result(service.execute(s)))
                for s in statements
            ]
            out["pickle_stats"] = service.backend.transport_stats()
    out["pickle_parity"] = default_payload == pickle_payload
    print(
        f"shm transport: mode={out['stats']['mode']}, "
        f"shm_chunks={out['stats'].get('shm_chunks', 0)}, "
        f"shm_bytes={out['stats'].get('shm_bytes', 0)}, "
        f"fallbacks={out['stats'].get('shm_fallbacks', 0)}; "
        f"pickle parity: {out['pickle_parity']}"
    )
    return out


def run_benchmark() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_backends_"))
    try:
        catalog = build_catalog(workdir)
        backends = {
            name: bench_backend(catalog, name)
            for name in ("sequential", "thread", "process")
        }
        bit_identical = bench_parity(catalog)
        shm_transport = bench_shm_transport(catalog)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    results = {
        "quick": _QUICK,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "series_count": _SERIES_COUNT,
        "times_per_series": _TIMES_PER_SERIES,
        "grid": {"delta": _GRID.delta, "n": _GRID.n},
        "H": _H,
        "segment_layout": "v2",
        "statement": f"SELECT {_AGGREGATE} FROM CATALOG '<root>'",
        "backends": backends,
        "headline": {
            # Throughput ratios (higher = process wins).  Cold is the
            # gated, CPU-bound claim; warm is recorded for context.
            "process_vs_thread": (
                backends["thread"]["cold_s"] / backends["process"]["cold_s"]
            ),
            "process_vs_sequential": (
                backends["sequential"]["cold_s"]
                / backends["process"]["cold_s"]
            ),
            "warm_process_vs_thread": (
                backends["thread"]["warm_s"] / backends["process"]["warm_s"]
            ),
        },
        # The aspiration beyond the gated 1.0x floor: recorded on every
        # run, asserted nowhere — CI tracks the trend, not the target.
        "stretch": {
            "process_vs_thread_target": 2.0,
            "process_vs_thread_meets_target": (
                backends["thread"]["cold_s"] / backends["process"]["cold_s"]
                >= 2.0
            ),
        },
        "shm_transport": shm_transport,
        "bit_identical": bit_identical,
    }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {_OUTPUT}")
    return results


# ----------------------------------------------------------------------
# Pytest entry points (the acceptance floors).
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_benchmark()
    return _RESULTS


def test_backends_bit_identical():
    assert _results()["bit_identical"], (
        "sequential/thread/process produced different canonical bytes"
    )


def test_shm_and_pickle_transports_agree():
    # Gated on every host: the result transport must never change an
    # answer, whether shm is available or the pickle fallback ran.
    assert _results()["shm_transport"]["pickle_parity"], (
        "process backend produced different canonical bytes under the "
        "shm and pickle result transports"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="the process backend needs >= 2 cores to beat threads; "
           "single-core hosts record the numbers without asserting",
)
def test_process_beats_thread_on_multicore():
    results = _results()
    ratio = results["headline"]["process_vs_thread"]
    floor = 1.0
    assert ratio >= floor, (
        f"process backend only {ratio:.2f}x thread throughput on "
        f"{results['cpu_count']} cores (floor {floor}x; stretch target "
        "2.0x recorded ungated)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="warm throughput only favours processes with >= 2 cores",
)
def test_warm_process_holds_thread_parity_on_multicore():
    results = _results()
    ratio = results["headline"]["warm_process_vs_thread"]
    assert ratio >= 1.0, (
        f"warm process backend only {ratio:.2f}x thread throughput on "
        f"{results['cpu_count']} cores (floor 1.0x)"
    )


def test_process_overhead_bounded_on_any_host():
    # Even where processes cannot win (1 core), chunked IPC must keep the
    # machinery from collapsing: no order-of-magnitude faceplant.
    ratio = _results()["headline"]["process_vs_thread"]
    assert ratio >= 0.1, (
        f"process backend {ratio:.2f}x thread throughput — IPC overhead "
        "has grown pathological"
    )


if __name__ == "__main__":
    run_benchmark()
