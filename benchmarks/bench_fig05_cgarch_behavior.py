"""Fig. 5 — GARCH bound blow-up vs C-GARCH correction."""

from repro.experiments.fig05 import run_fig05


def test_fig05_garch_blowup_vs_cgarch(benchmark, record_table):
    table = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    record_table(table)
    rows = {row[0]: row for row in table.rows}
    garch_max = rows["ARMA-GARCH"][1]
    cgarch_max = rows["C-GARCH"][1]
    # The paper's Fig. 5(a) failure mode: plain GARCH bounds explode by
    # orders of magnitude; C-GARCH keeps them near the clean scale.
    assert garch_max > 3.0 * cgarch_max
    assert rows["C-GARCH"][4] > 0  # Errors were flagged and replaced.
