"""Possible-worlds benchmark: SIMULATE throughput and shared-scan savings.

Two claims back the worlds/plan-tree work, recorded in
``BENCH_worlds.json`` at the repo root:

1. **Seeded SIMULATE is bit-identical across backends**: the same
   ``SIMULATE n SEED s`` statement serialises to the same canonical JSON
   bytes on the sequential, thread, and process backends (deterministic
   per-series seeding).  Recorded as ``bit_identical`` and gated as a
   boolean; the sampling throughput (``worlds_per_s``) is recorded for
   the curious but never gated — it is machine-absolute.
2. **Multi-aggregate select lists share the scan**: one
   ``SELECT a, b, c`` statement beats running a, b, and c as three
   separate cold statements, because the per-series views are
   materialised once and reused by every kernel.  The result stays
   bit-identical to the three standalone runs (``multi_identical``,
   gated as a boolean) and the cold-vs-cold speedup is gated with a
   modest floor.

Run directly (``python benchmarks/bench_worlds.py``) or via pytest
(``pytest benchmarks/bench_worlds.py``); the pytest entries assert the
floors.  Set ``REPRO_BENCH_QUICK=1`` (the CI smoke job does) to shrink
the catalog while keeping the same shape.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.server.protocol import canonical_dumps, serialize_result
from repro.service import CatalogQueryService
from repro.store import Catalog
from repro.view.omega import OmegaGrid

_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
_GRID = OmegaGrid(delta=0.5, n=4)
_H = 16
_SERIES_COUNT = 12 if _QUICK else 60
_TIMES_PER_SERIES = 120
_N_WORLDS = 8 if _QUICK else 16
_SEED = 7
_CACHE_BUDGET = 256 << 20
_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_worlds.json"

_AGGREGATES = ("threshold(0.4)", "expected_value", "exceedance(21)")


def _time(function, *, repeat: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def build_catalog(workdir: Path) -> Catalog:
    catalog = Catalog(workdir / "catalog")
    rng = np.random.default_rng(42)
    total = _H + _TIMES_PER_SERIES
    for index in range(_SERIES_COUNT):
        series_id = f"sensor-{index:04d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=_H, grid=_GRID
        )
        values = 20.0 + np.cumsum(rng.normal(0.0, 0.1, size=total))
        catalog.append(series_id, values)
    return catalog


def bench_simulate(catalog: Catalog) -> tuple[dict, bool]:
    """SIMULATE wall time + worlds/sec, and cross-backend bit-identity."""
    statement = (
        f"SIMULATE {_N_WORLDS} SEED {_SEED} FROM CATALOG '{catalog.root}'"
    )
    wires: dict[str, str] = {}
    timings: dict[str, float] = {}
    for backend in ("sequential", "thread", "process"):
        with CatalogQueryService(
            catalog, backend=backend, cache_budget_bytes=_CACHE_BUDGET
        ) as service:
            service.execute(statement)  # warm the cache / worker pools

            elapsed, result = _time(
                lambda: service.execute(statement), repeat=3
            )
            timings[backend] = elapsed
            wires[backend] = canonical_dumps(serialize_result(result))
    identical = (
        wires["sequential"] == wires["thread"] == wires["process"]
    )
    total_worlds = _N_WORLDS * _SERIES_COUNT
    out = {
        "statement": statement,
        "n_worlds": _N_WORLDS,
        "series_count": _SERIES_COUNT,
        "times_per_series": _TIMES_PER_SERIES,
        "warm_s": timings,
        "worlds_per_s": {
            backend: total_worlds / elapsed
            for backend, elapsed in timings.items()
        },
    }
    for backend, elapsed in timings.items():
        print(
            f"simulate[{backend}]: {elapsed * 1e3:8.1f} ms warm "
            f"({total_worlds / elapsed:8.0f} worlds/s)"
        )
    print(f"simulate bit-identical across backends: {identical}")
    return out, identical


def bench_multi_aggregate(catalog: Catalog) -> tuple[dict, bool]:
    """One multi-aggregate statement vs N cold single statements."""
    multi_statement = (
        f"SELECT {', '.join(_AGGREGATES)} FROM CATALOG '{catalog.root}'"
    )
    singles = [
        f"SELECT {body} FROM CATALOG '{catalog.root}'"
        for body in _AGGREGATES
    ]
    with CatalogQueryService(
        catalog, backend="sequential", cache_budget_bytes=_CACHE_BUDGET
    ) as service:

        def multi_run():
            service.cache.clear()
            return service.execute(multi_statement)

        def singles_run():
            results = []
            for statement in singles:
                # Each single statement pays its own cold scan — the
                # one-shot-invocation shape the select list replaces.
                service.cache.clear()
                results.append(service.execute(statement))
            return results

        multi_s, multi_result = _time(multi_run, repeat=3)
        singles_s, single_results = _time(singles_run, repeat=3)
    multi_wires = [
        canonical_dumps(wire)
        for wire in serialize_result(multi_result)["statements"]
    ]
    single_wires = [
        canonical_dumps(serialize_result(result))
        for result in single_results
    ]
    identical = multi_wires == single_wires
    out = {
        "statement": multi_statement,
        "aggregates": list(_AGGREGATES),
        "multi_cold_s": multi_s,
        "singles_cold_s": singles_s,
        "shared_scan_speedup": singles_s / multi_s,
    }
    print(
        f"multi-aggregate: {multi_s * 1e3:8.1f} ms vs "
        f"{singles_s * 1e3:8.1f} ms as {len(_AGGREGATES)} singles "
        f"({out['shared_scan_speedup']:.2f}x); identical: {identical}"
    )
    return out, identical


def run_benchmark() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_worlds_"))
    try:
        build_s, catalog = _time(lambda: build_catalog(workdir))
        print(f"built {_SERIES_COUNT} series in {build_s:.1f} s")
        simulate, bit_identical = bench_simulate(catalog)
        multi, multi_identical = bench_multi_aggregate(catalog)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    results = {
        "quick": _QUICK,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "series_count": _SERIES_COUNT,
        "grid": {"delta": _GRID.delta, "n": _GRID.n},
        "H": _H,
        "simulate": simulate,
        "multi_aggregate": multi,
        "bit_identical": bit_identical,
        "multi_identical": multi_identical,
        "headline": {
            "simulate_worlds_per_s": simulate["worlds_per_s"]["thread"],
            "shared_scan_speedup": multi["shared_scan_speedup"],
        },
    }
    _OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {_OUTPUT}")
    return results


# ----------------------------------------------------------------------
# Pytest entry points (the acceptance floors).
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_benchmark()
    return _RESULTS


def test_simulate_bit_identical_across_backends():
    assert _results()["bit_identical"], (
        "seeded SIMULATE serialised differently across backends"
    )


def test_multi_aggregate_matches_single_statements():
    assert _results()["multi_identical"], (
        "multi-aggregate select list differs from standalone statements"
    )


def test_multi_aggregate_shares_the_scan():
    results = _results()
    speedup = results["headline"]["shared_scan_speedup"]
    floor = 1.1
    assert speedup >= floor, (
        f"multi-aggregate statement only {speedup:.2f}x faster than "
        f"{len(_AGGREGATES)} cold single statements (floor {floor}x)"
    )


if __name__ == "__main__":
    run_benchmark()
